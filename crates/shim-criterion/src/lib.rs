//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides a small wall-clock benchmark harness with criterion's
//! API shape: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`/`iter_batched`, and
//! `black_box`. It does real timing — warmup, then adaptively-sized
//! measurement batches — and prints mean/min per benchmark, so relative
//! comparisons (e.g. batch vs sequential extraction) are meaningful. It
//! performs no statistics, plotting, or result persistence.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value laundering to keep the optimizer honest.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; all variants behave identically
/// in this shim (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

/// Timing budget shared by every benchmark in a run.
#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    measure: Duration,
}

impl Default for Budget {
    fn default() -> Budget {
        // Keep `cargo bench` minutes-fast across the whole suite while
        // still averaging enough iterations for stable comparisons.
        Budget {
            warmup: Duration::from_millis(60),
            measure: Duration::from_millis(250),
        }
    }
}

/// Per-iteration timing callback handed to benchmark closures.
pub struct Bencher {
    budget: Budget,
    /// (iterations, total elapsed) accumulated by the routine.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(budget: Budget) -> Bencher {
        Bencher {
            budget,
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        let start = Instant::now();
        while start.elapsed() < self.budget.warmup {
            black_box(routine());
        }
        // Measurement: individual samples until the budget is spent.
        let start = Instant::now();
        while start.elapsed() < self.budget.measure {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.budget.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let start = Instant::now();
        while start.elapsed() < self.budget.measure {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<56} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<56} mean {:>12?}  min {:>12?}  ({} iters)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    budget: Budget,
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named group of benchmarks; prints under a shared heading.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Criterion API parity: sample count hints are ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion API parity: throughput annotations are ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not rendered).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            budget: Budget {
                warmup: Duration::from_millis(1),
                measure: Duration::from_millis(5),
            },
        }
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = tiny();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_roundtrip() {
        let mut c = tiny();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(3), |b| {
            b.iter_batched(|| vec![3u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| black_box(2) * 2));
        }
        criterion_group!(benches, target);
        // Do not run `benches()` here (it would use the default budget);
        // compiling the expansion is the point.
        let _ = benches;
        let _ = target;
    }
}
