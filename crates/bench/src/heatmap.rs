//! ASCII heatmap rendering for per-mat wear matrices.
//!
//! `rime-stats --wear` feeds `RimeDevice::wear_matrix()` (cumulative
//! write counts indexed `[chip][mat]`) through [`render`]: one row per
//! chip, one character per mat, shaded by [`bucket`] on a fixed ramp.
//! The bucket math is deliberately integer-only so the same matrix
//! always renders the same picture.

/// Shade ramp from cold to hot. Ten levels: index 0 is "never written".
pub const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Maps a write count onto `0..RAMP.len()` relative to the matrix
/// maximum: zero stays 0, any nonzero count lands in `1..=9`, and only
/// `value == max` reaches the hottest level 9 exactly when it fills the
/// range. Integer ceiling division — no floats, no rounding drift.
pub fn bucket(value: u64, max: u64) -> usize {
    if value == 0 || max == 0 {
        return 0;
    }
    let levels = (RAMP.len() - 1) as u128; // 9 shade steps above zero
    ((value as u128 * levels).div_ceil(max as u128)) as usize
}

/// Renders the wear matrix as one text block: a header with the maximum,
/// one `chip NN |....|` row per chip, and the ramp legend. Chips with no
/// mats render an empty cell row.
pub fn render(matrix: &[Vec<u64>]) -> String {
    let max = matrix
        .iter()
        .flat_map(|row| row.iter().copied())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "wear heatmap: {} chips, hottest mat = {} writes\n",
        matrix.len(),
        max
    ));
    for (chip, row) in matrix.iter().enumerate() {
        out.push_str(&format!("chip {chip:>3} |"));
        for &writes in row {
            out.push(RAMP[bucket(writes, max)]);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!("scale: '{}' = 0", RAMP[0]));
    for (i, c) in RAMP.iter().enumerate().skip(1) {
        out.push_str(&format!(", '{c}' ≤ {}/9 of max", i));
    }
    out.push('\n');
    out
}

/// The wear matrix as a JSON array of per-chip arrays, e.g.
/// `[[12,0,3],[0,0,0]]`.
pub fn to_json(matrix: &[Vec<u64>]) -> String {
    let rows: Vec<String> = matrix
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_pinned() {
        // Zero and empty matrices stay cold.
        assert_eq!(bucket(0, 100), 0);
        assert_eq!(bucket(0, 0), 0);
        assert_eq!(bucket(5, 0), 0);
        // Any nonzero count is visible (never rendered as blank).
        assert_eq!(bucket(1, 1_000_000), 1);
        // The maximum hits the hottest shade exactly.
        assert_eq!(bucket(100, 100), 9);
        assert_eq!(bucket(u64::MAX, u64::MAX), 9);
        // Interior values: ceil(v * 9 / max).
        assert_eq!(bucket(50, 100), 5); // ceil(4.5)
        assert_eq!(bucket(33, 100), 3); // ceil(2.97)
        assert_eq!(bucket(99, 100), 9); // ceil(8.91)
        assert_eq!(bucket(11, 100), 1); // ceil(0.99)
        assert_eq!(bucket(12, 100), 2); // ceil(1.08)
    }

    #[test]
    fn render_shows_every_chip_row() {
        let matrix = vec![vec![0, 5, 10], vec![10, 0, 0]];
        let text = render(&matrix);
        assert!(text.contains("chip   0 | +@|"), "{text}");
        assert!(text.contains("chip   1 |@  |"), "{text}");
        assert!(text.contains("hottest mat = 10"), "{text}");
    }

    #[test]
    fn json_matrix_is_plain_arrays() {
        assert_eq!(
            to_json(&[vec![12, 0, 3], vec![0, 0, 0]]),
            "[[12,0,3],[0,0,0]]"
        );
        assert_eq!(to_json(&[]), "[]");
    }
}
