//! # rime-bench
//!
//! The experiment harness: one binary per paper table/figure (run with
//! `cargo run -p rime-bench --bin figNN`) plus Criterion benches over the
//! functional models. This library holds the shared sweep configuration
//! and series-printing helpers so every figure binary reports the same
//! way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod csv;
pub mod heatmap;

use rime_memsim::SystemConfig;

/// The paper's data-size sweep: 0.5M–65M keys (Figs. 1–2, 15–18).
///
/// Override with `RIME_SIZES=0.5,8,65` (millions of keys).
pub fn size_sweep() -> Vec<u64> {
    if let Ok(spec) = std::env::var("RIME_SIZES") {
        let sizes: Vec<u64> = spec
            .split(',')
            .filter_map(|s| s.trim().parse::<f64>().ok())
            .map(|m| (m * 1e6) as u64)
            .filter(|&n| n > 0)
            .collect();
        if !sizes.is_empty() {
            return sizes;
        }
    }
    vec![
        500_000, 2_000_000, 8_000_000, 16_000_000, 32_000_000, 65_000_000,
    ]
}

/// The paper's core-count sweep (Fig. 1(b,c)).
pub fn core_sweep() -> Vec<u32> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// Default core count for data-size sweeps (Fig. 1(a) uses 16 cores).
pub const DEFAULT_CORES: u32 = 16;

/// The three baseline memory systems in figure order.
pub fn baseline_systems(cores: u32) -> [(&'static str, SystemConfig); 3] {
    [
        ("Unlimited", SystemConfig::unlimited(cores)),
        ("In-Package (HBM)", SystemConfig::in_package(cores)),
        ("Off-Chip (DDR4)", SystemConfig::off_chip(cores)),
    ]
}

use std::cell::RefCell;

thread_local! {
    static CURRENT_FIGURE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Prints a figure header and remembers the figure name for CSV export.
pub fn header(figure: &str, title: &str, y_axis: &str) {
    CURRENT_FIGURE.with(|f| *f.borrow_mut() = format!("{figure} {title}"));
    println!("==========================================================");
    println!("{figure}: {title}");
    println!("y-axis: {y_axis}");
    println!("==========================================================");
}

/// Prints one series table: rows = x values, columns = named series —
/// followed by an ASCII rendering of the curves (suppress with
/// `RIME_NO_CHART=1`).
pub fn print_series(x_name: &str, xs: &[u64], series: &[(String, Vec<f64>)]) {
    print!("{x_name:>14}");
    for (name, _) in series {
        print!(" {name:>18}");
    }
    println!();
    for (i, &x) in xs.iter().enumerate() {
        print!("{x:>14}");
        for (_, ys) in series {
            print!(" {:>18.2}", ys[i]);
        }
        println!();
    }
    println!();
    if chart::enabled() {
        print!("{}", chart::render(series, 12));
        println!();
    }
    CURRENT_FIGURE.with(|f| csv::export(&f.borrow(), x_name, xs, series));
}

/// Runs one fully instrumented (probes + metrics registry) pass of an
/// `init` + `rime_min_k(batch_k)` workload on a single chip of
/// `chip_geometry` under `policy`, and returns the device's *masked*
/// metrics snapshot as compact JSON.
///
/// The bench harnesses embed this in their `RIME_BENCH_JSON` output: the
/// pass runs *outside* the timed region (probes read the host clock, so
/// they stay off while measuring), and masking zeroes the wall-clock
/// metrics so the embedded snapshot is deterministic for a fixed
/// geometry/policy/batch — committed snapshots don't churn on re-runs.
pub fn instrumented_metrics_json(
    chip_geometry: rime_memristive::ChipGeometry,
    policy: rime_memristive::ParallelPolicy,
    batch_k: usize,
) -> String {
    instrumented_metrics_and_pool_stats(chip_geometry, policy, batch_k).0
}

/// One-pass variant of [`instrumented_metrics_json`] that also distills
/// the *unmasked* pool wall-clock metrics into a small side record:
/// `(masked_snapshot_json, pool_stats_json)`.
///
/// Masking rightly zeroes every nondeterministic series in the committed
/// snapshot — which is exactly how the pool-latency regression of PR 7
/// hid (all-zero `rime_pool_step_wall_ns`/worker-busy rows looked
/// plausible). The side record keeps the live evidence (counts and
/// totals, machine-specific by nature) without destabilizing the masked
/// snapshot's byte-identity.
pub fn instrumented_metrics_and_pool_stats(
    chip_geometry: rime_memristive::ChipGeometry,
    policy: rime_memristive::ParallelPolicy,
    batch_k: usize,
) -> (String, String) {
    use rime_core::{Direction, DriverConfig, KeyFormat, RimeConfig, RimeDevice};
    use rime_memristive::ArrayTiming;

    let config = RimeConfig {
        channels: 1,
        chips_per_channel: 1,
        chip_geometry,
        timing: ArrayTiming::table1(),
        driver: DriverConfig::default(),
    };
    let dev = RimeDevice::new(config);
    dev.enable_extraction_metrics();
    dev.set_parallel_policy(policy);
    let n = dev.capacity();
    let region = dev.alloc(n).expect("alloc metrics pass");
    let keys: Vec<u64> = (0..n)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    dev.write_raw(region, 0, &keys, KeyFormat::UNSIGNED64)
        .expect("store metrics pass");
    dev.init_raw(region, 0, n, KeyFormat::UNSIGNED64)
        .expect("init metrics pass");
    let _ = dev
        .next_extremes_raw(region, KeyFormat::UNSIGNED64, Direction::Min, batch_k)
        .expect("extract metrics pass");
    let snapshot = dev.metrics_snapshot();
    let pool_stats = pool_stats_json(&snapshot);
    (snapshot.masked().to_json(false), pool_stats)
}

/// Distills the pool's wall-clock evidence from an *unmasked* snapshot:
/// broadcast→fold latency count/sum, summed worker busy/park time, the
/// measured Auto crossover, and session counts.
fn pool_stats_json(snapshot: &rime_core::Snapshot) -> String {
    use rime_core::MetricValue;

    let (mut step_count, mut step_sum) = (0u64, 0u64);
    let (mut busy, mut park) = (0u64, 0u64);
    let (mut leases, mut crossover) = (0u64, 0i64);
    for m in &snapshot.metrics {
        match (m.name.as_str(), &m.value) {
            ("rime_pool_step_wall_ns", MetricValue::Histogram(h)) => {
                step_count += h.count;
                step_sum += h.sum;
            }
            ("rime_pool_worker_busy_ns_total", MetricValue::Counter(v)) => busy += v,
            ("rime_pool_worker_park_ns_total", MetricValue::Counter(v)) => park += v,
            ("rime_pool_leases_total", MetricValue::Counter(v)) => leases += v,
            ("rime_pool_crossover_mats", MetricValue::Gauge(v)) => crossover = crossover.max(*v),
            _ => {}
        }
    }
    format!(
        "{{\"step_latency_count\": {step_count}, \"step_latency_sum_ns\": {step_sum}, \
         \"worker_busy_ns\": {busy}, \"worker_park_ns\": {park}, \
         \"leases\": {leases}, \"crossover_mats\": {crossover}}}"
    )
}

/// Formats a ratio like the paper's "×" factors.
pub fn factor(over: f64, base: f64) -> String {
    if base <= 0.0 {
        "—".to_string()
    } else {
        format!("{:.1}×", over / base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_covers_paper_range() {
        std::env::remove_var("RIME_SIZES");
        let s = size_sweep();
        assert_eq!(*s.first().unwrap(), 500_000);
        assert_eq!(*s.last().unwrap(), 65_000_000);
    }

    #[test]
    fn core_sweep_reaches_64() {
        assert_eq!(core_sweep().last(), Some(&64));
    }

    #[test]
    fn factor_formats() {
        assert_eq!(factor(30.0, 10.0), "3.0×");
        assert_eq!(factor(1.0, 0.0), "—");
    }
}
