//! Regenerates Fig. 15: throughput of the four sorting kernels on the
//! off-chip DDR4 and in-package HBM baselines vs RIME, across data sizes.
//! Ends with the paper's headline average gains.

use rime_bench::{factor, header, print_series, size_sweep, DEFAULT_CORES};
use rime_core::RimePerfConfig;
use rime_kernels::{rime_sort, SortAlgorithm};
use rime_memsim::SystemConfig;

fn main() {
    let sizes = size_sweep();
    let perf = RimePerfConfig::table1();

    for (panel, sys) in [
        ("Off-Chip (DDR4)", SystemConfig::off_chip(DEFAULT_CORES)),
        ("In-Package (HBM)", SystemConfig::in_package(DEFAULT_CORES)),
    ] {
        header(
            "Fig. 15",
            &format!("sort throughput on {panel} vs RIME"),
            "throughput (MKps)",
        );
        let mut series: Vec<(String, Vec<f64>)> = SortAlgorithm::ALL
            .iter()
            .map(|alg| {
                (
                    alg.label().to_string(),
                    sizes
                        .iter()
                        .map(|&n| alg.throughput_mkps(n, &sys))
                        .collect(),
                )
            })
            .collect();
        series.push((
            "RIME".to_string(),
            sizes
                .iter()
                .map(|&n| rime_sort::throughput_mkps(n, &perf))
                .collect(),
        ));
        print_series("keys", &sizes, &series);
    }

    println!("Average RIME gains over the off-chip baseline (paper: M/S 30.2x,");
    println!("Q/S 12.4x, R/S 50.7x, H/S 26x):");
    let off = SystemConfig::off_chip(DEFAULT_CORES);
    for alg in SortAlgorithm::ALL {
        let mean_base: f64 = sizes
            .iter()
            .map(|&n| alg.throughput_mkps(n, &off))
            .sum::<f64>()
            / sizes.len() as f64;
        let mean_rime: f64 = sizes
            .iter()
            .map(|&n| rime_sort::throughput_mkps(n, &perf))
            .sum::<f64>()
            / sizes.len() as f64;
        println!("  {:>4}: {}", alg.label(), factor(mean_rime, mean_base));
    }
}
