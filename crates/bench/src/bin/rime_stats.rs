//! `rime-stats`: run a fixed instrumented workload and export the
//! device's metrics snapshot.
//!
//! The workload is a 64-mat `rime_min_k` ranking session on one chip
//! with full extraction/pool instrumentation enabled and the parallel
//! policy pinned to `Threads(4)`, so every *modeled* metric in the
//! snapshot is deterministic — run it twice and the masked exports are
//! byte-identical. Wall-clock metrics (spans, pool busy/park time) are
//! real host measurements and vary; `--masked` zeroes them.
//!
//! ```text
//! rime-stats [--format prom|json] [--pretty] [--masked]
//!            [--baseline <snapshot.json>] [--wear] [--selfcheck]
//! ```
//!
//! * `--format prom` (default) — Prometheus text exposition;
//! * `--format json` — JSON, round-trippable via `--baseline`;
//! * `--pretty` — indented JSON;
//! * `--masked` — zero nondeterministic (wall-clock) metrics;
//! * `--baseline FILE` — subtract a previous `--format json` snapshot
//!   (counters/histograms become deltas; gauges pass through);
//! * `--wear` — append the per-mat wear matrix (JSON) and its ASCII
//!   heatmap instead of the metrics export;
//! * `--selfcheck` — run the workload twice, validate the Prometheus
//!   exposition grammar and masked-snapshot determinism, exit nonzero on
//!   any failure (the CI smoke gate).

use std::process::ExitCode;

use rime_bench::heatmap;
use rime_core::metrics::validate_prometheus;
use rime_core::{DriverConfig, KeyFormat, ParallelPolicy, RimeConfig, RimeDevice, Snapshot};
use rime_energy::{EnergySink, PowerModel};
use rime_memristive::{ArrayTiming, ChipGeometry};

/// One chip of 64 mats (4×4×4), 64 slots per mat: 4096 keys total. Small
/// enough to run in milliseconds, big enough to exercise the mat pool
/// (64 mats ≫ the auto-parallel threshold) and the multi-step H-tree.
fn config() -> RimeConfig {
    RimeConfig {
        channels: 1,
        chips_per_channel: 1,
        chip_geometry: ChipGeometry {
            banks: 4,
            subbanks_per_bank: 4,
            mats_per_subbank: 4,
            arrays_per_mat: 4,
            rows: 16,
            cols: 64,
        },
        timing: ArrayTiming::table1(),
        driver: DriverConfig::default(),
    }
}

/// Runs the fixed workload and returns the device (with its populated
/// registry). Deterministic for modeled metrics: fixed keys, fixed
/// batch sizes, pinned `Threads(4)` policy.
fn run_workload() -> RimeDevice {
    let dev = RimeDevice::new(config());
    dev.enable_extraction_metrics();
    dev.set_parallel_policy(ParallelPolicy::Threads(4));
    let mut energy = EnergySink::new(PowerModel::table1());
    energy.bind_metrics(dev.metrics());
    dev.attach_telemetry(rime_core::telemetry::shared(energy));

    let n = dev.capacity();
    let region = dev.alloc(n).expect("alloc fixed workload");
    // A full permutation-ish spray: every mat holds keys, no duplicates
    // of the extremes, deterministic.
    let keys: Vec<u64> = (0..n).map(|i| (i * 2654435761) % 1_000_003).collect();
    dev.write_raw(region, 0, &keys, KeyFormat::UNSIGNED64)
        .expect("store keys");
    dev.init_raw(region, 0, n, KeyFormat::UNSIGNED64)
        .expect("init range");
    // Three batches exercise extract, rearm-between-batches, and the
    // FIFO drain; one failing probe exercises the error counters.
    for k in [16, 64, 8] {
        let hits = dev
            .next_extremes_raw(region, KeyFormat::UNSIGNED64, rime_core::Direction::Min, k)
            .expect("batch extraction");
        assert_eq!(hits.len(), k, "range is large enough for every batch");
    }
    let _ = dev.fifo_next_raw(region).expect("fifo drain");
    let _ = dev.next_extreme_raw(region, KeyFormat::FLOAT64, rime_core::Direction::Min);
    dev.free(region).expect("free region");
    dev
}

fn selfcheck() -> Result<(), String> {
    let first = run_workload().metrics_snapshot();
    let second = run_workload().metrics_snapshot();
    let samples = validate_prometheus(&first.to_prometheus())
        .map_err(|(line, err)| format!("prometheus exposition invalid at line {line}: {err}"))?;
    if samples == 0 {
        return Err("prometheus exposition contains no samples".to_string());
    }
    let a = first.masked().to_json(false);
    let b = second.masked().to_json(false);
    if a != b {
        return Err("masked snapshots differ between identical runs".to_string());
    }
    // The JSON exporter must round-trip its own output.
    let back = Snapshot::from_json(&a).map_err(|e| format!("json roundtrip failed: {e}"))?;
    if back != first.masked() {
        return Err("json roundtrip changed the snapshot".to_string());
    }
    println!("selfcheck ok: {samples} prometheus samples, masked snapshots identical");
    Ok(())
}

fn main() -> ExitCode {
    let mut format = "prom".to_string();
    let mut pretty = false;
    let mut masked = false;
    let mut wear = false;
    let mut run_selfcheck = false;
    let mut baseline: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "prom" || f == "json" => format = f,
                other => {
                    eprintln!("--format expects 'prom' or 'json', got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--pretty" => pretty = true,
            "--masked" => masked = true,
            "--wear" => wear = true,
            "--selfcheck" => run_selfcheck = true,
            "--baseline" => match args.next() {
                Some(path) => baseline = Some(path),
                None => {
                    eprintln!("--baseline expects a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: rime-stats [--format prom|json] [--pretty] [--masked] \
                     [--baseline FILE] [--wear] [--selfcheck]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if run_selfcheck {
        return match selfcheck() {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("selfcheck failed: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let dev = run_workload();

    if wear {
        let matrix = dev.wear_matrix();
        println!("{}", heatmap::to_json(&matrix));
        print!("{}", heatmap::render(&matrix));
        return ExitCode::SUCCESS;
    }

    let mut snapshot = dev.metrics_snapshot();
    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read baseline {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let base = match Snapshot::from_json(&text) {
            Ok(base) => base,
            Err(err) => {
                eprintln!("cannot parse baseline {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        snapshot = snapshot.diff(&base);
    }
    if masked {
        snapshot = snapshot.masked();
    }
    match format.as_str() {
        "json" => print!("{}", snapshot.to_json(pretty)),
        _ => print!("{}", snapshot.to_prometheus()),
    }
    ExitCode::SUCCESS
}
