//! Runs every figure/table binary in sequence — the one-shot full
//! reproduction. Equivalent to running `table1`, `fig01`, `fig02`,
//! `fig15`–`fig19`, and `lifetime` by hand.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "fig01", "fig02", "fig15", "fig16", "fig17", "fig18", "fig19", "lifetime",
        "ablation",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory");
    for bin in bins {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
}
