//! Regenerates Fig. 16: GroupBy and MergeJoin throughput for the
//! off-chip, in-package, and RIME systems across data sizes.

use rime_apps::{groupby, mergejoin};
use rime_bench::{factor, header, print_series, size_sweep, DEFAULT_CORES};
use rime_core::RimePerfConfig;
use rime_memsim::SystemConfig;

fn main() {
    let sizes = size_sweep();
    let perf = RimePerfConfig::table1();
    let off = SystemConfig::off_chip(DEFAULT_CORES);
    let hbm = SystemConfig::in_package(DEFAULT_CORES);

    header(
        "Fig. 16 (GroupBy)",
        "key-value GroupBy throughput",
        "throughput (MKps)",
    );
    let series = vec![
        (
            "Off-Chip".to_string(),
            sizes
                .iter()
                .map(|&n| groupby::baseline_throughput_mkps(n, &off))
                .collect(),
        ),
        (
            "In-Package".to_string(),
            sizes
                .iter()
                .map(|&n| groupby::baseline_throughput_mkps(n, &hbm))
                .collect(),
        ),
        (
            "RIME".to_string(),
            sizes
                .iter()
                .map(|&n| groupby::rime_throughput_mkps(n, &perf))
                .collect(),
        ),
    ];
    print_series("rows", &sizes, &series);

    header(
        "Fig. 16 (MergeJoin)",
        "sort-merge join throughput",
        "throughput (MKps)",
    );
    let series = vec![
        (
            "Off-Chip".to_string(),
            sizes
                .iter()
                .map(|&n| mergejoin::baseline_throughput_mkps(n / 2, &off))
                .collect(),
        ),
        (
            "In-Package".to_string(),
            sizes
                .iter()
                .map(|&n| mergejoin::baseline_throughput_mkps(n / 2, &hbm))
                .collect(),
        ),
        (
            "RIME".to_string(),
            sizes
                .iter()
                .map(|&n| mergejoin::rime_throughput_mkps(n / 2, &perf))
                .collect(),
        ),
    ];
    print_series("rows", &sizes, &series);

    let n = *sizes.last().unwrap();
    println!(
        "Gains at {}M rows (paper: GroupBy RIME 5.4-23.1x, HBM 1.1-2x;",
        n / 1_000_000
    );
    println!("MergeJoin RIME 5.6-24.1x, HBM 1.1-2x):");
    println!(
        "  GroupBy  : HBM {}, RIME {}",
        factor(
            groupby::baseline_throughput_mkps(n, &hbm),
            groupby::baseline_throughput_mkps(n, &off)
        ),
        factor(
            groupby::rime_throughput_mkps(n, &perf),
            groupby::baseline_throughput_mkps(n, &off)
        ),
    );
    println!(
        "  MergeJoin: HBM {}, RIME {}",
        factor(
            mergejoin::baseline_throughput_mkps(n / 2, &hbm),
            mergejoin::baseline_throughput_mkps(n / 2, &off)
        ),
        factor(
            mergejoin::rime_throughput_mkps(n / 2, &perf),
            mergejoin::baseline_throughput_mkps(n / 2, &off)
        ),
    );
}
