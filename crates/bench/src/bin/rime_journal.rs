//! `rime-journal` — inspect and self-check the command journal.
//!
//! Two modes:
//!
//! * `--selfcheck` runs a deterministic journaled workload against an
//!   in-memory store, recovers a second device from the bytes, and
//!   verifies the rebuild is bit-identical (chip states, allocation
//!   map, op counters). It then tears the final record — the signature
//!   of a crash mid-append — recovers again, and verifies the torn
//!   tail is detected, the interrupted command reported, and the
//!   resubmitted command converges on the same state. Exits nonzero on
//!   any divergence; CI gates on it (see `.github/workflows/ci.yml`).
//! * `--inspect <file>` scans a journal file and prints a summary:
//!   record counts by kind, the committed ordinal, and whether the
//!   tail is torn. Interior corruption is a typed error and a nonzero
//!   exit.
//!
//! The wire format and recovery protocol are specified in DESIGN.md
//! §12.

use std::process::ExitCode;

use rime_core::journal::{self, JournalConfig, JournalRecord, MemJournalStore};
use rime_core::{OpCounters, RimeConfig, RimeDevice, RimeError};
use rime_memristive::ChipState;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mode = match args.next() {
        Some(mode) => mode,
        None => {
            eprintln!("usage: rime-journal --selfcheck | --inspect <file>");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match mode.as_str() {
        "--selfcheck" => selfcheck(),
        "--inspect" | "inspect" => match args.next() {
            Some(path) => inspect(&path),
            None => Err("--inspect needs a journal file path".to_string()),
        },
        other => Err(format!(
            "unknown argument `{other}` (expected --selfcheck or --inspect <file>)"
        )),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("rime-journal: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Everything recovery must reproduce bit-identically.
#[derive(PartialEq)]
struct Fingerprint {
    chip_states: Vec<ChipState>,
    allocation_map: (u64, Vec<(u64, u64)>),
    counters: OpCounters,
    per_chip: Vec<OpCounters>,
    transfers: u64,
}

fn fingerprint(device: &RimeDevice) -> Fingerprint {
    Fingerprint {
        chip_states: device.chip_states(),
        allocation_map: device.allocation_map(),
        counters: device.counters(),
        per_chip: device.per_chip_counters(),
        transfers: device.interface_transfers(),
    }
}

fn check(ok: bool, what: &str) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(format!("selfcheck failed: {what}"))
    }
}

fn rime(result: Result<(), RimeError>, what: &str) -> Result<(), String> {
    result.map_err(|e| format!("selfcheck failed: {what}: {e}"))
}

fn selfcheck() -> Result<(), String> {
    let config = RimeConfig::small();
    let store = MemJournalStore::new();
    let jconfig = JournalConfig {
        checkpoint_every: 3,
    };

    // A deterministic workload: enough commands to cross periodic
    // checkpoints, a forced checkpoint, and a final extraction whose
    // outcome is the last record on the wire.
    let device = RimeDevice::new(config);
    rime(
        device.attach_journal(Box::new(store.clone()), jconfig),
        "attach_journal",
    )?;
    let keys: Vec<u32> = (0..64u32).map(|i| (i * 37) % 251 + 1).collect();
    let region = device
        .alloc(keys.len() as u64)
        .map_err(|e| format!("selfcheck failed: alloc: {e}"))?;
    rime(device.write(region, 0, &keys), "write")?;
    rime(device.init::<u32>(region, 0, keys.len() as u64), "init")?;
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let eight = device
        .rime_min_k::<u32>(region, 8)
        .map_err(|e| format!("selfcheck failed: rime_min_k: {e}"))?;
    let got: Vec<u32> = eight.iter().map(|&(_, key)| key).collect();
    check(got == sorted[..8], "rime_min_k returned the wrong keys")?;
    match device.checkpoint_now() {
        Ok(true) => {}
        Ok(false) => return Err("selfcheck failed: checkpoint_now had no journal".to_string()),
        Err(e) => return Err(format!("selfcheck failed: checkpoint_now: {e}")),
    }
    let ninth = device
        .rime_min::<u32>(region)
        .map_err(|e| format!("selfcheck failed: rime_min: {e}"))?;
    check(
        ninth.map(|(_, key)| key) == Some(sorted[8]),
        "rime_min returned the wrong key",
    )?;

    let reference = fingerprint(&device);
    let committed = device
        .journal_committed()
        .ok_or("selfcheck failed: no journal attached")?;
    let bytes = store.snapshot();

    // Clean recovery: the rebuilt device must be bit-identical.
    let (recovered, report) = RimeDevice::recover(
        config,
        Box::new(MemJournalStore::from_bytes(bytes.clone())),
        jconfig,
    )
    .map_err(|e| format!("selfcheck failed: recover: {e}"))?;
    check(
        report.committed == committed,
        "clean recovery lost commands",
    )?;
    check(!report.torn_tail, "clean recovery reported a torn tail")?;
    check(
        report.from_checkpoint,
        "clean recovery ignored the checkpoint",
    )?;
    check(
        fingerprint(&recovered) == reference,
        "clean recovery is not bit-identical",
    )?;

    // Torn tail: cut into the final record (a crash mid-append),
    // recover, and resubmit the interrupted command.
    let torn = MemJournalStore::from_bytes(bytes[..bytes.len() - 3].to_vec());
    let (resumed, report) = RimeDevice::recover(config, Box::new(torn), jconfig)
        .map_err(|e| format!("selfcheck failed: torn recover: {e}"))?;
    check(report.torn_tail, "torn tail went undetected")?;
    check(
        report.committed == committed - 1,
        "torn recovery miscounted committed commands",
    )?;
    check(
        report.interrupted == Some(committed - 1),
        "interrupted command not reported",
    )?;
    let rehydrated = resumed.regions();
    check(
        rehydrated == vec![region],
        "rehydrated region handles diverged",
    )?;
    let retried = resumed
        .rime_min::<u32>(rehydrated[0])
        .map_err(|e| format!("selfcheck failed: resubmission: {e}"))?;
    check(retried == ninth, "resubmitted command diverged")?;
    check(
        fingerprint(&resumed) == reference,
        "torn recovery is not bit-identical after resubmission",
    )?;
    check(
        resumed.journal_committed() == Some(committed),
        "resubmission did not re-commit",
    )?;

    println!(
        "selfcheck OK: {committed} commands journaled ({} bytes), clean and torn-tail \
         recovery both bit-identical",
        bytes.len()
    );
    Ok(())
}

fn inspect(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let report = journal::scan(&bytes).map_err(|e| format!("`{path}`: {e}"))?;

    let (mut intents, mut outcomes, mut checkpoints) = (0u64, 0u64, 0u64);
    let mut committed = 0u64;
    for (_, record) in &report.records {
        match record {
            JournalRecord::Intent { .. } => intents += 1,
            JournalRecord::Outcome { ordinal, .. } => {
                outcomes += 1;
                committed = committed.max(ordinal + 1);
            }
            JournalRecord::Checkpoint {
                committed: at_checkpoint,
                ..
            } => {
                checkpoints += 1;
                committed = committed.max(*at_checkpoint);
            }
        }
    }

    println!(
        "{path}: {} bytes, {} records",
        bytes.len(),
        report.records.len()
    );
    println!("  intents:     {intents}");
    println!("  outcomes:    {outcomes}");
    println!("  checkpoints: {checkpoints}");
    println!("  committed:   {committed}");
    println!("  valid_len:   {}", report.valid_len);
    if report.torn_tail {
        println!(
            "  torn tail:   {} trailing bytes are a torn final record (crash mid-append); \
             recovery will truncate them",
            bytes.len() as u64 - report.valid_len
        );
    } else {
        println!("  torn tail:   none");
    }
    if intents > outcomes {
        println!("  in doubt:    an intent without an outcome — the journal records an interrupted command");
    }
    Ok(())
}
