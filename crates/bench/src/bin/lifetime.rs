//! Regenerates the §VII-C lifetime study.
//!
//! Paper methodology: track writes per memory block during each
//! application's execution, find the block with the highest write
//! frequency, and assume it keeps absorbing writes at that rate until it
//! hits the endurance limit (10⁸ writes).
//!
//! RIME never rewrites cells while ranking (no data swaps; select and
//! exclusion state live in CMOS latches), so wear comes only from
//! loading/updating data:
//!
//! * sort-dominated apps write each key slot **once per execution**;
//! * the priority-queue apps rewrite slots, but the FIFO free-slot
//!   recycling in [`rime_apps::RimePriorityQueue`] spreads those writes
//!   over the whole queue region.
//!
//! The functional device confirms the write counts; the modeled
//! execution times convert them into rates.

use rime_apps::{groupby, spq};
use rime_core::{Placement, RimeConfig, RimeDevice, RimePerfConfig};
use rime_memristive::EnduranceTracker;
use rime_memsim::SystemConfig;
use rime_workloads::{KvTable, PacketStream};

const N: u64 = 65_000_000;

fn report(name: &str, hottest_writes_per_exec: f64, exec_seconds: f64) -> f64 {
    let mut tracker = EnduranceTracker::new(EnduranceTracker::PAPER_ENDURANCE);
    // Steady state: executions repeat back to back forever.
    tracker.record_hottest_block(hottest_writes_per_exec.ceil() as u64, exec_seconds);
    let years = tracker.lifetime_years().unwrap();
    println!(
        "{name:>12}: hottest block {hottest_writes_per_exec:>8.1} writes / {exec_seconds:>7.2} s \
         -> {years:>10.0} years"
    );
    years
}

fn main() {
    println!("§VII-C lifetime study (endurance = 1e8 writes per cell)\n");

    // --- Functional confirmation: ranking induces no array writes. -----
    let mut dev = RimeDevice::new(RimeConfig::small());
    let table = KvTable::grouped(2_000, 16, 1);
    groupby::groupby_rime(&mut dev, &table).expect("groupby");
    let c = dev.counters();
    println!(
        "functional check: {} keys loaded -> {} row writes, {} extractions,",
        table.len(),
        c.row_writes,
        c.extractions
    );
    println!(
        "max per-slot wear = {} (one write per load; sorting adds none)\n",
        dev.max_wear()
    );
    assert_eq!(dev.max_wear(), 1, "ranking must not wear cells");

    // --- Paper-scale projection per application. -----------------------
    let perf = RimePerfConfig::table1();
    let sys = SystemConfig::off_chip(16);
    let mut worst = f64::INFINITY;

    // Sort-dominated apps: each slot written once per execution.
    let sort_secs =
        perf.load_seconds(N, 8, Placement::Striped) + perf.stream_seconds(N, N, Placement::Striped);
    for name in [
        "Kruskal",
        "GroupBy",
        "MergeJoin",
        "Dijkstra",
        "Prim",
        "A*-Search",
    ] {
        // Application phases (graph scans, aggregation, CPU merges) extend
        // the period between rewrites; use each app's modeled runtime.
        let secs = match name {
            "Kruskal" => rime_apps::kruskal::rime_seconds(N, &perf, &sys),
            "Dijkstra" => rime_apps::dijkstra::rime_seconds(N / 8, N, &perf, &sys),
            "Prim" => rime_apps::prim::rime_seconds(N / 8, N, &perf, &sys),
            "A*-Search" => rime_apps::astar::rime_seconds(N, &perf, &sys),
            "GroupBy" => groupby::rime_seconds(N, &perf),
            _ => sort_secs.max(rime_apps::mergejoin::rime_seconds(N / 2, &perf)),
        };
        worst = worst.min(report(name, 1.0, secs));
    }

    // Priority queue: FIFO slot recycling spreads `removes` rewrites over
    // the buffer, so the hottest slot sees removes/buffer writes per run.
    let removes = 10_000_000u64;
    for r in [1u32, 5] {
        let buffer = N;
        let thr = spq::rime_throughput_mkps(buffer, removes, r, &perf) * 1e6;
        let secs = removes as f64 / thr;
        let hottest = removes as f64 / buffer as f64;
        worst = worst.min(report(
            Box::leak(format!("SPQ (R={r})").into_boxed_str()),
            hottest.max(1.0 / 64.0), // at least the initial load amortized
            secs,
        ));
    }

    // Functional wear-leveling check for the PQ.
    let dev = RimeDevice::new(RimeConfig::small());
    let stream = PacketStream::generate(512, 2_000, 1, 9);
    spq::spq_rime(&dev, &stream).expect("spq");
    let max_wear = dev.max_wear() as f64;
    let mean_wear = 2.0 * (stream.adds() + stream.initial.len()) as f64 / 4096.0;
    println!(
        "\nPQ wear-leveling check: hottest slot {max_wear} writes vs {mean_wear:.1} mean \
         (FIFO recycling keeps the ratio small)"
    );

    println!("\npessimistic bound (continuous back-to-back reloads): {worst:.0} years");

    // The paper's >=376-year result corresponds to each block being
    // rewritten no more often than once per ~119 s — i.e. the write-once /
    // rank-many duty cycle its own Fig. 12 use case implies (load 2 GB,
    // then serve ranking queries). Report lifetime vs reload period.
    println!("\nlifetime vs dataset-reload period (write-once / rank-many serving):");
    for period_s in [2.0f64, 30.0, 119.0, 600.0] {
        let mut t = EnduranceTracker::new(EnduranceTracker::PAPER_ENDURANCE);
        t.record_hottest_block(1, period_s);
        println!(
            "  reload every {period_s:>5.0} s -> {:>6.0} years",
            t.lifetime_years().unwrap()
        );
    }
    println!("\npaper reports >= 376 years; that matches a >=119 s reload period.");
    println!("Our pessimistic continuous-resort bound is the floor, not the");
    println!("paper's operating point — see EXPERIMENTS.md.");
}
