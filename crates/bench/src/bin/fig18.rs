//! Regenerates Fig. 18: strict-priority-queue remove throughput for
//! packet add:remove ratios R = 1..5, on the off-chip, in-package, and
//! RIME systems, vs initial buffer size.

use rime_apps::spq;
use rime_bench::{factor, header, print_series, size_sweep, DEFAULT_CORES};
use rime_core::RimePerfConfig;
use rime_memsim::SystemConfig;

const REMOVES: u64 = 1_000_000;

fn main() {
    let sizes = size_sweep();
    let perf = RimePerfConfig::table1();

    for (name, sys) in [
        (
            "Off-Chip (DDR4)",
            Some(SystemConfig::off_chip(DEFAULT_CORES)),
        ),
        (
            "In-Package (HBM)",
            Some(SystemConfig::in_package(DEFAULT_CORES)),
        ),
        ("RIME", None),
    ] {
        header(
            &format!("Fig. 18 ({name})"),
            "strict priority queue remove throughput",
            "throughput (MKps removed)",
        );
        let series: Vec<(String, Vec<f64>)> = (1u32..=5)
            .map(|r| {
                (
                    format!("R={r}"),
                    sizes
                        .iter()
                        .map(|&n| match &sys {
                            Some(sys) => spq::baseline_throughput_mkps(n, REMOVES, r, sys),
                            None => spq::rime_throughput_mkps(n, REMOVES, r, &perf),
                        })
                        .collect(),
                )
            })
            .collect();
        print_series("buffer", &sizes, &series);
    }

    let n = *sizes.last().unwrap();
    let off = SystemConfig::off_chip(DEFAULT_CORES);
    let worst = spq::baseline_throughput_mkps(n, REMOVES, 5, &off);
    let best = spq::baseline_throughput_mkps(*sizes.first().unwrap(), REMOVES, 1, &off);
    let rime = spq::rime_throughput_mkps(n, REMOVES, 5, &perf);
    println!(
        "RIME gain range over DDR4 across sizes/ratios: {} to {}",
        factor(rime, best),
        factor(rime, worst)
    );
    println!("(paper: 6.1-43.6x; RIME flat across buffer sizes and R)");
}
