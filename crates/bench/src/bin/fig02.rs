//! Regenerates Fig. 2: impact of available bandwidth on sort
//! performance — throughput of M/S, Q/S, R/S on (a) unlimited-bandwidth,
//! (b) in-package HBM, and (c) off-chip DDR4 memory, vs data size.

use rime_bench::{baseline_systems, header, print_series, size_sweep, DEFAULT_CORES};
use rime_kernels::SortAlgorithm;

const ALGS: [SortAlgorithm; 3] = [
    SortAlgorithm::Merge,
    SortAlgorithm::Quick,
    SortAlgorithm::Radix,
];

fn main() {
    let sizes = size_sweep();
    for (panel, (name, sys)) in ["(a)", "(b)", "(c)"]
        .iter()
        .zip(baseline_systems(DEFAULT_CORES))
    {
        header(
            &format!("Fig. 2{panel}"),
            &format!("sort throughput on {name} ({DEFAULT_CORES} cores)"),
            "throughput (MKps)",
        );
        let series: Vec<(String, Vec<f64>)> = ALGS
            .iter()
            .map(|alg| {
                (
                    alg.label().to_string(),
                    sizes
                        .iter()
                        .map(|&n| alg.throughput_mkps(n, &sys))
                        .collect(),
                )
            })
            .collect();
        print_series("keys", &sizes, &series);
    }
    println!("Expected shape: R/S leads with unlimited bandwidth; Q/S takes");
    println!("over once bandwidth is limited (in-package and off-chip).");
}
