//! Regenerates Table I: the simulation parameters of every modelled
//! component, read back from the configuration structs the simulator
//! actually runs with.

use rime_core::RimeConfig;
use rime_memristive::timing::AreaOverheads;
use rime_memsim::{CacheConfig, CoreConfig, DramConfig};

fn main() {
    println!("TABLE I — SIMULATION PARAMETERS (as configured in code)\n");

    let core = CoreConfig::table1(64);
    println!(
        "Core Type        {} {}-issue cores, {} GHz, {} ROB entries",
        core.cores, core.issue_width, core.clock_ghz, core.rob_entries
    );

    let l1i = CacheConfig::l1i_table1();
    println!(
        "Instruction L1   {}KB, direct-mapped, {}B block, hit/miss: {}/{}",
        l1i.size_bytes / 1024,
        l1i.block_bytes,
        l1i.hit_cycles,
        l1i.miss_cycles
    );
    let l1d = CacheConfig::l1d_table1();
    println!(
        "Data L1          {}KB, {}-way, LRU, {}B block, hit/miss: {}/{}",
        l1d.size_bytes / 1024,
        l1d.ways,
        l1d.block_bytes,
        l1d.hit_cycles,
        l1d.miss_cycles
    );
    let l2 = CacheConfig::l2_table1();
    println!(
        "Shared L2        {}MB, {}-way, LRU, {}B block, hit/miss: {}/{}\n",
        l2.size_bytes / (1024 * 1024),
        l2.ways,
        l2.block_bytes,
        l2.hit_cycles,
        l2.miss_cycles
    );

    for (label, cfg) in [
        ("Main Memory (off-chip DDR4)", DramConfig::ddr4_offchip()),
        ("HBM (in-package)", DramConfig::hbm_in_package()),
    ] {
        println!("{label}");
        println!(
            "  {}B row buffer, Channels/Ranks/Banks: {}/{}/{}",
            cfg.row_buffer_bytes, cfg.channels, cfg.ranks, cfg.banks
        );
        println!(
            "  tRCD:{} tCAS:{} tCCD:{} tWTR:{} tWR:{} tRTP:{} tBL:{}",
            cfg.t_rcd, cfg.t_cas, cfg.t_ccd, cfg.t_wtr, cfg.t_wr, cfg.t_rtp, cfg.t_bl
        );
        println!(
            "  tCWD:{} tRP:{} tRRD:{} tRAS:{} tRC:{} tFAW:{}  (CPU cycles @2GHz)",
            cfg.t_cwd, cfg.t_rp, cfg.t_rrd, cfg.t_ras, cfg.t_rc, cfg.t_faw
        );
        println!(
            "  peak bandwidth: {:.1} GB/s\n",
            cfg.peak_bandwidth_gbps(2.0)
        );
    }

    let rime = RimeConfig::table1();
    let g = rime.chip_geometry;
    let t = rime.timing;
    println!("RIME Memory");
    println!(
        "  Channels/Chips/Banks/Subbanks: {}/{}/{}/{}, {} Gb chips, {}x{} SLC subarrays",
        rime.channels,
        rime.chips_per_channel,
        g.banks,
        g.banks as u32 * g.subbanks_per_bank as u32,
        g.capacity_bits() >> 30,
        g.rows,
        g.cols
    );
    println!(
        "  die area: {} mm² (+{:.0}% RIME periphery)",
        t.die_area_mm2,
        AreaOverheads::table1().total_per_die * 100.0
    );
    println!(
        "  tRead: {} ns, tWrite: {} ns, tCompute: {} ns",
        t.t_read_ns, t.t_write_ns, t.t_compute_ns
    );
    println!(
        "  vRead: {} V, vWrite: {} V, vCompute: {} V",
        t.v_read, t.v_write, t.v_compute
    );
    println!("  compute energy/chip: {} nJ", t.e_compute_per_chip_nj);
    println!(
        "  key-slot capacity: {} per chip, {} total",
        rime.chip_slots(),
        rime.total_slots()
    );
}
