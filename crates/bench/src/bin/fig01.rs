//! Regenerates Fig. 1: bandwidth requirements of the sort algorithms.
//!
//! (a) below-cache memory accesses vs data size (16 cores);
//! (b) below-cache memory accesses vs core count (65M keys);
//! (c) sustained memory bandwidth vs core count (65M keys, DDR4).

use rime_bench::{core_sweep, header, print_series, size_sweep, DEFAULT_CORES};
use rime_kernels::SortAlgorithm;
use rime_memsim::SystemConfig;

const ALGS: [SortAlgorithm; 3] = [
    SortAlgorithm::Merge,
    SortAlgorithm::Quick,
    SortAlgorithm::Radix,
];

fn main() {
    let sizes = size_sweep();
    let full = *sizes.last().unwrap();

    header(
        "Fig. 1(a)",
        &format!("memory accesses vs data size ({DEFAULT_CORES} cores)"),
        "accesses below the on-die cache (millions of 64B lines)",
    );
    let sys = SystemConfig::off_chip(DEFAULT_CORES);
    let series: Vec<(String, Vec<f64>)> = ALGS
        .iter()
        .map(|alg| {
            (
                alg.label().to_string(),
                sizes
                    .iter()
                    .map(|&n| alg.mem_accesses_millions(n, &sys))
                    .collect(),
            )
        })
        .collect();
    print_series("keys", &sizes, &series);

    header(
        "Fig. 1(b)",
        &format!("memory accesses vs cores ({}M keys)", full / 1_000_000),
        "accesses below the on-die cache (millions of 64B lines)",
    );
    let cores = core_sweep();
    let xs: Vec<u64> = cores.iter().map(|&c| c as u64).collect();
    let series: Vec<(String, Vec<f64>)> = ALGS
        .iter()
        .map(|alg| {
            (
                alg.label().to_string(),
                cores
                    .iter()
                    .map(|&c| alg.mem_accesses_millions(full, &SystemConfig::off_chip(c)))
                    .collect(),
            )
        })
        .collect();
    print_series("cores", &xs, &series);

    header(
        "Fig. 1(c)",
        &format!(
            "sustained memory bandwidth vs cores ({}M keys, DDR4)",
            full / 1_000_000
        ),
        "MB/s",
    );
    let series: Vec<(String, Vec<f64>)> = ALGS
        .iter()
        .map(|alg| {
            (
                alg.label().to_string(),
                cores
                    .iter()
                    .map(|&c| alg.sustained_bandwidth_mbps(full, &SystemConfig::off_chip(c)))
                    .collect(),
            )
        })
        .collect();
    print_series("cores", &xs, &series);
}
