//! Model-level ablation studies of the design choices DESIGN.md calls
//! out: how much each RIME architectural decision contributes to the
//! headline throughput.
//!
//! * channel/chip scaling — the concurrency that makes RIME fast;
//! * placement policy — striped (Fig. 12 explicit addresses) vs one
//!   contiguous region;
//! * interface cost — sensitivity to the strong-uncacheable access
//!   latency (§V's in-order UC design point);
//! * key width — 32- vs 64-bit search depth;
//! * §VII-B power budget — throughput under a cap on concurrently
//!   computing chips.

use rime_bench::header;
use rime_core::{Placement, RimePerfConfig};

const N: u64 = 65_000_000;

fn main() {
    header(
        "Ablation",
        "RIME design-choice sensitivity (65M-key sort)",
        "MKps",
    );

    println!("channels × chips/channel:");
    for channels in [1u32, 2, 4, 8] {
        for chips in [4u32, 8] {
            let cfg = RimePerfConfig {
                channels,
                chips_per_channel: chips,
                ..RimePerfConfig::table1()
            };
            println!(
                "  {channels} ch × {chips} chips: {:>7.1} MKps",
                cfg.sort_throughput_mkps(N, Placement::Striped)
            );
        }
    }

    println!("\nplacement policy:");
    let cfg = RimePerfConfig::table1();
    for (name, placement) in [
        ("striped", Placement::Striped),
        ("contiguous", Placement::Contiguous),
    ] {
        for n in [500_000u64, 8_000_000, N] {
            println!(
                "  {name:>10} @ {:>4.1}M keys: {:>7.1} MKps",
                n as f64 / 1e6,
                cfg.sort_throughput_mkps(n, placement)
            );
        }
    }

    println!("\nuncacheable interface access latency:");
    for uc in [35.0f64, 70.0, 140.0, 280.0] {
        let cfg = RimePerfConfig {
            uc_access_ns: uc,
            ..RimePerfConfig::table1()
        };
        println!(
            "  {uc:>5.0} ns/access: {:>7.1} MKps",
            cfg.sort_throughput_mkps(N, Placement::Striped)
        );
    }

    println!("\nkey width (column-search steps per extraction):");
    for bits in [16u16, 32, 64] {
        let cfg = RimePerfConfig {
            key_bits: bits,
            ..RimePerfConfig::table1()
        };
        println!(
            "  k = {bits:>2}: extraction {:>6.1} ns, {:>7.1} MKps",
            cfg.extract_ns(),
            cfg.sort_throughput_mkps(N, Placement::Striped)
        );
    }

    println!("\n§VII-B power budget (cap on concurrently computing chips):");
    let base = RimePerfConfig::table1();
    let chip_w = base.chip_compute_power_w();
    for budget_w in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let max_chips = ((budget_w / chip_w).floor() as u32).max(1);
        let cfg = RimePerfConfig {
            chips_per_channel: max_chips.div_ceil(base.channels).max(1),
            ..base
        };
        let capped = cfg
            .sort_throughput_mkps(N, Placement::Striped)
            .min(base.sort_throughput_mkps(N, Placement::Striped));
        println!("  {budget_w:>4.1} W -> <= {max_chips:>2} chips computing: {capped:>7.1} MKps");
    }
    println!("\n(one computing chip draws {chip_w:.2} W in the Table I model)");
}
