//! Regenerates Fig. 17: throughput of the graph workloads — Kruskal,
//! Dijkstra, Prim, A*-Search — on the off-chip, in-package, and RIME
//! systems across data sizes (elements = edges or grid cells).

use rime_apps::{astar, dijkstra, kruskal, prim};
use rime_bench::{factor, header, print_series, size_sweep, DEFAULT_CORES};
use rime_core::RimePerfConfig;
use rime_memsim::SystemConfig;

fn main() {
    let sizes = size_sweep();
    let perf = RimePerfConfig::table1();
    let off = SystemConfig::off_chip(DEFAULT_CORES);
    let hbm = SystemConfig::in_package(DEFAULT_CORES);
    // Graph workloads: |V| = |E| / 8 (a typical power-law-ish density).
    let vertices = |e: u64| (e / 8).max(2);

    type Fns = (
        &'static str,
        Box<dyn Fn(u64, &SystemConfig) -> f64>,
        Box<dyn Fn(u64) -> f64>,
        (f64, f64), // paper RIME gain range
    );
    let perf2 = perf;
    let off2 = off;
    let apps: Vec<Fns> = vec![
        (
            "Kruskal",
            Box::new(kruskal::baseline_throughput_mkps),
            Box::new(move |n| kruskal::rime_throughput_mkps(n, &perf2, &off2)),
            (8.5, 20.9),
        ),
        (
            "Dijkstra",
            Box::new(move |n, sys| dijkstra::baseline_throughput_mkps(vertices(n), n, sys)),
            Box::new(move |n| dijkstra::rime_throughput_mkps(vertices(n), n, &perf2, &off2)),
            (7.5, 17.2),
        ),
        (
            "Prim",
            Box::new(move |n, sys| prim::baseline_throughput_mkps(vertices(n), n, sys)),
            Box::new(move |n| prim::rime_throughput_mkps(vertices(n), n, &perf2, &off2)),
            (6.3, 14.3),
        ),
        (
            "A*-Search",
            Box::new(astar::baseline_throughput_mkps),
            Box::new(move |n| astar::rime_throughput_mkps(n, &perf2, &off2)),
            (2.3, 23.0),
        ),
    ];

    for (name, baseline, rime, (lo, hi)) in &apps {
        header(
            &format!("Fig. 17 ({name})"),
            &format!("{name} throughput"),
            "throughput (MKps, processed elements)",
        );
        let series = vec![
            (
                "Off-Chip".to_string(),
                sizes.iter().map(|&n| baseline(n, &off)).collect(),
            ),
            (
                "In-Package".to_string(),
                sizes.iter().map(|&n| baseline(n, &hbm)).collect(),
            ),
            ("RIME".to_string(), sizes.iter().map(|&n| rime(n)).collect()),
        ];
        print_series("elements", &sizes, &series);
        let n = *sizes.last().unwrap();
        println!(
            "  at {}M: HBM {}, RIME {}   (paper RIME range {lo}-{hi}x)\n",
            n / 1_000_000,
            factor(baseline(n, &hbm), baseline(n, &off)),
            factor(rime(n), baseline(n, &off)),
        );
    }
}
