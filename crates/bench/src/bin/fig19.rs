//! Regenerates Fig. 19: system energy of every evaluated application at
//! 65M keys, for the in-package (HBM) and RIME systems, normalized to
//! the off-chip DRAM baseline.

use rime_apps::{astar, dijkstra, groupby, kruskal, mergejoin, prim, spq};
use rime_bench::DEFAULT_CORES;
use rime_core::RimePerfConfig;
use rime_energy::{baseline_energy, rime_energy, PowerModel, SystemKind};
use rime_memsim::perf::Workload;
use rime_memsim::SystemConfig;

const N: u64 = 65_000_000;

struct AppRow {
    name: &'static str,
    baseline: Box<dyn Fn(&SystemConfig) -> Workload>,
    /// (seconds, extractions, transfers) of the RIME run.
    rime: Box<dyn Fn() -> (f64, u64, u64)>,
    paper_reduction_pct: f64,
}

fn main() {
    let off_sys = SystemConfig::off_chip(DEFAULT_CORES);
    let hbm_sys = SystemConfig::in_package(DEFAULT_CORES);
    let model = PowerModel::table1();
    let perf = RimePerfConfig::table1();
    let v = N / 8;

    let mut rows: Vec<AppRow> = vec![
        AppRow {
            name: "Kruskal",
            baseline: Box::new(|sys| kruskal::baseline_workload(N, sys)),
            rime: Box::new(move || {
                (
                    kruskal::rime_seconds(N, &perf, &SystemConfig::off_chip(DEFAULT_CORES)),
                    N,
                    2 * N,
                )
            }),
            paper_reduction_pct: 94.0,
        },
        AppRow {
            name: "Dijkstra",
            baseline: Box::new(move |sys| dijkstra::baseline_workload(v, N, sys)),
            rime: Box::new(move || {
                (
                    dijkstra::rime_seconds(v, N, &perf, &SystemConfig::off_chip(DEFAULT_CORES)),
                    v + N / 4,
                    N + v,
                )
            }),
            paper_reduction_pct: 92.0,
        },
        AppRow {
            name: "Prim",
            baseline: Box::new(move |sys| prim::baseline_workload(v, N, sys)),
            rime: Box::new(move || {
                (
                    prim::rime_seconds(v, N, &perf, &SystemConfig::off_chip(DEFAULT_CORES)),
                    v + N / 3,
                    2 * N + v,
                )
            }),
            paper_reduction_pct: 91.0,
        },
        AppRow {
            name: "GroupBy",
            baseline: Box::new(|sys| groupby::baseline_workload(N, sys)),
            rime: Box::new(move || (groupby::rime_seconds(N, &perf), N, 2 * N)),
            paper_reduction_pct: 95.0,
        },
        AppRow {
            name: "MergeJoin",
            baseline: Box::new(|sys| mergejoin::baseline_workload(N / 2, sys)),
            rime: Box::new(move || (mergejoin::rime_seconds(N / 2, &perf), N, 2 * N)),
            paper_reduction_pct: 95.0,
        },
        AppRow {
            name: "A*-Search",
            baseline: Box::new(|sys| astar::baseline_workload(N, sys)),
            rime: Box::new(move || {
                (
                    astar::rime_seconds(N, &perf, &SystemConfig::off_chip(DEFAULT_CORES)),
                    3 * N / 5,
                    2 * N,
                )
            }),
            paper_reduction_pct: 94.0,
        },
    ];
    for r in 1u32..=5 {
        rows.push(AppRow {
            name: Box::leak(format!("SPQ (R={r})").into_boxed_str()),
            baseline: Box::new(move |sys| spq::baseline_workload(N, 1_000_000, r, sys)),
            rime: Box::new(move || {
                let thr = spq::rime_throughput_mkps(N, 1_000_000, r, &perf) * 1e6;
                let secs = 1_000_000.0 / thr;
                (secs, 1_000_000, 1_000_000 * (1 + r as u64))
            }),
            paper_reduction_pct: 96.0,
        });
    }

    println!("Fig. 19 — system energy normalized to the off-chip baseline");
    println!("(65M keys; paper: HBM ±, RIME >=90% reduction)\n");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>16}   breakdown of RIME J (cpu/dram/rime)",
        "app", "Off-Chip", "HBM", "RIME", "paper RIME"
    );

    for row in &rows {
        let off_exec = (row.baseline)(&off_sys).execute(&off_sys);
        let hbm_exec = (row.baseline)(&hbm_sys).execute(&hbm_sys);
        let off_j =
            baseline_energy(&model, SystemKind::OffChip, &off_exec, DEFAULT_CORES, 2.0).total_j();
        let hbm_j =
            baseline_energy(&model, SystemKind::InPackage, &hbm_exec, DEFAULT_CORES, 2.0).total_j();
        let (secs, extractions, transfers) = (row.rime)();
        let rime = rime_energy(
            &model,
            secs,
            secs * 2.0,
            extractions,
            transfers,
            DEFAULT_CORES,
        );
        println!(
            "{:>12} {:>10.2} {:>10.2} {:>10.2} {:>15.0}%   {:>6.2} / {:>5.2} / {:>5.2} J",
            row.name,
            1.0,
            hbm_j / off_j,
            rime.total_j() / off_j,
            row.paper_reduction_pct,
            rime.cpu_j,
            rime.dram_j,
            rime.rime_j,
        );
    }
    println!("\n(RIME column: fraction of off-chip energy; paper column: the");
    println!("reduction the paper reports, i.e. RIME fraction ≈ 1 − paper%.)");
}
