//! Minimal ASCII line charts for the figure binaries.
//!
//! Every `fig*` binary prints its numeric series as a table; this module
//! adds a terminal rendering so the *shape* the paper's figure shows —
//! who is on top, where lines cross, what stays flat — is visible at a
//! glance. Set `RIME_NO_CHART=1` to suppress the charts.

/// Renders `series` (name, y-values) over shared x-positions into an
/// ASCII grid of `height` rows. Each series plots with its own symbol;
/// collisions show the later series' symbol.
pub fn render(series: &[(String, Vec<f64>)], height: usize) -> String {
    const SYMBOLS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let width = series.iter().map(|(_, ys)| ys.len()).max().unwrap_or(0);
    if width == 0 || height < 2 {
        return String::new();
    }
    let max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(f64::NAN, f64::max);
    let max = if max.is_finite() && max > 0.0 {
        max
    } else {
        1.0
    };

    let cols_per_point = 3usize;
    let mut grid = vec![vec![' '; width * cols_per_point]; height];
    for (sidx, (_, ys)) in series.iter().enumerate() {
        let symbol = SYMBOLS[sidx % SYMBOLS.len()];
        for (x, &y) in ys.iter().enumerate() {
            if !y.is_finite() {
                continue;
            }
            let level = ((y / max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - level.min(height - 1);
            grid[row][x * cols_per_point + 1] = symbol;
        }
    }

    let mut out = String::new();
    for (ridx, row) in grid.iter().enumerate() {
        let label = if ridx == 0 {
            format!("{max:>9.1} |")
        } else if ridx == height - 1 {
            format!("{:>9.1} |", 0.0)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n",
        "",
        "-".repeat(width * cols_per_point)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(idx, (name, _))| format!("{} {}", SYMBOLS[idx % SYMBOLS.len()], name))
        .collect();
    out.push_str(&format!("{:>11}{}\n", "", legend.join("   ")));
    out
}

/// Whether chart rendering is enabled (default yes).
pub fn enabled() -> bool {
    std::env::var("RIME_NO_CHART").is_err()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<(String, Vec<f64>)> {
        vec![
            ("up".to_string(), vec![1.0, 2.0, 3.0, 4.0]),
            ("flat".to_string(), vec![2.0, 2.0, 2.0, 2.0]),
        ]
    }

    #[test]
    fn renders_all_points() {
        let chart = render(&series(), 8);
        // "up" loses one cell to "flat" where the curves collide at y=2.
        assert_eq!(chart.matches('*').count(), 3 + 1); // points + legend
        assert_eq!(chart.matches('o').count(), 4 + 1);
        assert!(chart.contains("up"));
        assert!(chart.contains("flat"));
    }

    #[test]
    fn top_row_holds_the_maximum() {
        let chart = render(&series(), 6);
        let first_line = chart.lines().next().unwrap();
        assert!(first_line.contains("4.0"), "{first_line}");
        assert!(first_line.contains('*'), "max point sits on the top row");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(render(&[], 8), "");
        assert_eq!(render(&[("x".into(), vec![])], 8), "");
        assert_eq!(render(&series(), 1), "");
        // Non-finite and zero-only data must not panic.
        let weird = vec![("w".to_string(), vec![f64::NAN, 0.0, f64::INFINITY])];
        let _ = render(&weird, 4);
    }

    #[test]
    fn many_series_cycle_symbols() {
        let many: Vec<(String, Vec<f64>)> = (0..10)
            .map(|i| (format!("s{i}"), vec![i as f64 + 1.0]))
            .collect();
        let chart = render(&many, 5);
        assert!(chart.contains('%') && chart.contains('@'));
    }
}
