//! CSV export of figure series.
//!
//! Every `fig*` binary prints its series as a table and a chart; set
//! `RIME_CSV_DIR=<dir>` to also write each series as a CSV file (one per
//! figure section) for external plotting. Files are named after the
//! figure header, sanitized to `[a-z0-9_-]`.

use std::io::Write as _;
use std::path::PathBuf;

/// Destination directory, if CSV export is enabled.
pub fn csv_dir() -> Option<PathBuf> {
    std::env::var_os("RIME_CSV_DIR").map(PathBuf::from)
}

/// Sanitizes a figure title into a file stem.
pub fn file_stem(title: &str) -> String {
    let mut out = String::with_capacity(title.len());
    for ch in title.chars() {
        match ch {
            'a'..='z' | '0'..='9' | '-' | '_' => out.push(ch),
            'A'..='Z' => out.push(ch.to_ascii_lowercase()),
            ' ' | '.' | '(' | ')' | '/' if !out.ends_with('_') => out.push('_'),
            ' ' | '.' | '(' | ')' | '/' => {}
            _ => {}
        }
    }
    out.trim_matches('_').to_string()
}

/// Renders one series table as CSV text.
pub fn to_csv(x_name: &str, xs: &[u64], series: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(x_name);
    for (name, _) in series {
        out.push(',');
        // Quote names containing commas.
        if name.contains(',') {
            out.push('"');
            out.push_str(name);
            out.push('"');
        } else {
            out.push_str(name);
        }
    }
    out.push('\n');
    for (i, &x) in xs.iter().enumerate() {
        out.push_str(&x.to_string());
        for (_, ys) in series {
            out.push(',');
            out.push_str(&format!("{:.6}", ys[i]));
        }
        out.push('\n');
    }
    out
}

/// Writes the series to `$RIME_CSV_DIR/<stem>.csv` when export is
/// enabled; silently does nothing otherwise. IO errors are reported to
/// stderr rather than aborting a figure run.
pub fn export(title: &str, x_name: &str, xs: &[u64], series: &[(String, Vec<f64>)]) {
    let Some(dir) = csv_dir() else { return };
    let path = dir.join(format!("{}.csv", file_stem(title)));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let mut file = std::fs::File::create(&path)?;
        file.write_all(to_csv(x_name, xs, series).as_bytes())
    };
    if let Err(e) = write() {
        eprintln!("csv export to {} failed: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stems_are_filesystem_safe() {
        assert_eq!(file_stem("Fig. 15 (Off-Chip/DDR4)"), "fig_15_off-chip_ddr4");
        assert_eq!(file_stem("GroupBy"), "groupby");
        assert_eq!(file_stem("__x__"), "x");
    }

    #[test]
    fn csv_layout() {
        let csv = to_csv(
            "keys",
            &[1, 2],
            &[
                ("A".to_string(), vec![0.5, 1.5]),
                ("B".to_string(), vec![2.0, 3.0]),
            ],
        );
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("keys,A,B"));
        assert_eq!(lines.next(), Some("1,0.500000,2.000000"));
        assert_eq!(lines.next(), Some("2,1.500000,3.000000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn comma_names_are_quoted() {
        let csv = to_csv("x", &[1], &[("a,b".to_string(), vec![1.0])]);
        assert!(csv.starts_with("x,\"a,b\""));
    }

    #[test]
    fn export_writes_when_enabled() {
        let dir = std::env::temp_dir().join("rime_csv_test");
        std::env::set_var("RIME_CSV_DIR", &dir);
        export(
            "Unit Test Series",
            "x",
            &[7],
            &[("y".to_string(), vec![9.0])],
        );
        let path = dir.join("unit_test_series.csv");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("7,9.000000"));
        std::env::remove_var("RIME_CSV_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
