//! Parallel scaling benchmark: persistent mat-shard pool vs the legacy
//! per-step `thread::scope` fan-out, plus chip-parallel executor
//! dispatch.
//!
//! **Mat level** (8 and 64 mats): batched extraction throughput under
//! `Sequential` (inline walk), `SpawnPerStep(T)` (the retired default —
//! a fresh thread scope per column-search step), and `Threads(T)` (the
//! persistent pool, one lease per batch with epoch-tagged step
//! broadcasts). `T` is fixed at 4 so the protocols are compared at the
//! same fan-out on any host; the interesting ratio is pool vs spawn —
//! the same work scheduled with standing workers instead of ~2 spawns
//! per key bit.
//!
//! **Chip level** (1/2/4 chips): full-device batched drain through the
//! executor, whose multi-chip prefill dispatches independent chips on
//! scoped threads with a deterministic chip-order merge. Reported as
//! keys/sec against the chip count (chips are per-command scoped
//! threads — one spawn per *chip batch*, not per step, so the spawn
//! cost is already amortized there).
//!
//! Prints a table; with `RIME_BENCH_JSON=<path>` writes a
//! machine-readable snapshot (see `BENCH_parallel_scaling.json` at the
//! repo root). Pass `--quick` for a CI-sized smoke run.

use rime_core::{RimeConfig, RimeDevice};
use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat, ParallelPolicy};
use std::time::{Duration, Instant};

/// Fixed fan-out width for the spawn-vs-pool comparison.
const FANOUT: usize = 4;

/// Slots per mat = 4 arrays × rows.
fn geometry(mats: u16, rows: u32) -> ChipGeometry {
    ChipGeometry {
        banks: 1,
        subbanks_per_bank: 1,
        mats_per_subbank: mats,
        arrays_per_mat: 4,
        rows,
        cols: 64,
    }
}

fn loaded_chip(mats: u16, rows: u32, policy: ParallelPolicy) -> (Chip, u64) {
    let geo = geometry(mats, rows);
    let n = geo.capacity_slots();
    let mut chip = Chip::new(geo);
    chip.set_parallel_policy(policy);
    let keys: Vec<u64> = (0..n)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
    (chip, n)
}

/// Best-of-`reps` wall time for `f`, which receives a fresh clone of
/// `chip` each repetition (clone/setup — including pool spin-up, which
/// clones do not inherit — excluded from the measurement only insofar
/// as it happens before `init_range`; the first lease is part of the
/// measured session, as it would be in real use).
fn best_of(reps: usize, chip: &Chip, mut f: impl FnMut(Chip)) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let fresh = chip.clone();
        let t = Instant::now();
        f(fresh);
        best = best.min(t.elapsed());
    }
    best
}

fn keys_per_sec(extracted: u64, elapsed: Duration) -> f64 {
    extracted as f64 / elapsed.as_secs_f64()
}

struct MatResult {
    mats: u16,
    keys: u64,
    seq_kps: f64,
    spawn_kps: f64,
    pool_kps: f64,
}

impl MatResult {
    fn pool_vs_spawn(&self) -> f64 {
        self.pool_kps / self.spawn_kps
    }
    fn pool_vs_seq(&self) -> f64 {
        self.pool_kps / self.seq_kps
    }
}

fn run_mat_config(mats: u16, rows: u32, batch_k: usize, reps: usize) -> MatResult {
    let mut kps = [0.0f64; 3];
    let mut keys = 0;
    let policies = [
        ParallelPolicy::Sequential,
        ParallelPolicy::SpawnPerStep(FANOUT),
        ParallelPolicy::Threads(FANOUT),
    ];
    for (idx, policy) in policies.into_iter().enumerate() {
        let (chip, n) = loaded_chip(mats, rows, policy);
        keys = n;
        let elapsed = best_of(reps, &chip, |mut chip| {
            chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
            std::hint::black_box(chip.extract_batch(Direction::Min, batch_k).unwrap());
        });
        kps[idx] = keys_per_sec(batch_k as u64, elapsed);
    }
    MatResult {
        mats,
        keys,
        seq_kps: kps[0],
        spawn_kps: kps[1],
        pool_kps: kps[2],
    }
}

struct ChipResult {
    chips: u32,
    keys: u64,
    kps: f64,
}

fn run_chip_config(chips: u32, rows: u32, batch_k: usize, reps: usize) -> ChipResult {
    let config = RimeConfig {
        channels: chips,
        chips_per_channel: 1,
        chip_geometry: geometry(8, rows),
        ..RimeConfig::small()
    };
    let total = config.total_slots();
    let keys: Vec<u64> = (0..total)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    // One batch of `batch_k` prefills every chip's candidate buffer to
    // that depth concurrently — the executor-level fan-out under test —
    // so the chip-side work grows with the chip count while the
    // measured command stays the same size.
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let dev = RimeDevice::new(config);
        dev.set_parallel_policy(ParallelPolicy::Sequential);
        let region = dev.alloc(total).unwrap();
        dev.write(region, 0, &keys).unwrap();
        let t = Instant::now();
        dev.init_all::<u64>(region).unwrap();
        std::hint::black_box(dev.rime_min_k::<u64>(region, batch_k).unwrap());
        best = best.min(t.elapsed());
    }
    ChipResult {
        chips,
        keys: total,
        kps: keys_per_sec(batch_k as u64 * u64::from(chips), best),
    }
}

fn write_json(
    path: &str,
    mode: &str,
    mat: &[MatResult],
    chip: &[ChipResult],
    rows: u32,
    batch_k: usize,
) {
    let mut out = String::from("{\n  \"bench\": \"parallel_scaling\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{mode}\",\n  \"fanout_threads\": {FANOUT},\n  \"mat_level\": [\n"
    ));
    for (i, r) in mat.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mats\": {}, \"keys\": {}, \"seq_kps\": {:.0}, \
             \"spawn_kps\": {:.0}, \"pool_kps\": {:.0}, \
             \"pool_vs_spawn\": {:.2}, \"pool_vs_seq\": {:.2}}}{}\n",
            r.mats,
            r.keys,
            r.seq_kps,
            r.spawn_kps,
            r.pool_kps,
            r.pool_vs_spawn(),
            r.pool_vs_seq(),
            if i + 1 < mat.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"chip_level\": [\n");
    for (i, r) in chip.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"chips\": {}, \"keys\": {}, \"kps\": {:.0}}}{}\n",
            r.chips,
            r.keys,
            r.kps,
            if i + 1 < chip.len() { "," } else { "" },
        ));
    }
    // One extra fully instrumented pass of the pool configuration,
    // outside any timed region, whose masked (deterministic) metrics
    // snapshot rides along in the committed file.
    let metrics = rime_bench::instrumented_metrics_json(
        geometry(64, rows),
        ParallelPolicy::Threads(FANOUT),
        batch_k,
    );
    out.push_str(&format!("  ],\n  \"metrics\": {metrics}\n}}\n"));
    std::fs::write(path, out).expect("write bench snapshot");
    println!("snapshot written to {path}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let (rows, batch_k, reps) = if quick {
        (64u32, 64usize, 2usize)
    } else {
        (512, 256, 3)
    };

    println!(
        "parallel scaling: persistent pool vs per-step spawns ({} mode, fan-out {})",
        if quick { "quick" } else { "full" },
        FANOUT,
    );
    println!(
        "{:>5} {:>8} | {:>12} {:>12} {:>12} | {:>10} {:>10}",
        "mats", "keys", "seq k/s", "spawn k/s", "pool k/s", "pool/spawn", "pool/seq"
    );
    let mut mat_results = Vec::new();
    for mats in [8u16, 64] {
        let r = run_mat_config(mats, rows, batch_k, reps);
        println!(
            "{:>5} {:>8} | {:>12.0} {:>12.0} {:>12.0} | {:>9.2}x {:>9.2}x",
            r.mats,
            r.keys,
            r.seq_kps,
            r.spawn_kps,
            r.pool_kps,
            r.pool_vs_spawn(),
            r.pool_vs_seq(),
        );
        mat_results.push(r);
    }

    println!();
    println!("chip-parallel executor dispatch (8 mats per chip)");
    println!("{:>5} {:>8} | {:>14}", "chips", "keys", "extracted k/s");
    let mut chip_results = Vec::new();
    for chips in [1u32, 2, 4] {
        let r = run_chip_config(chips, rows, batch_k, reps);
        println!("{:>5} {:>8} | {:>14.0}", r.chips, r.keys, r.kps);
        chip_results.push(r);
    }

    if let Ok(path) = std::env::var("RIME_BENCH_JSON") {
        let mode = if quick { "quick" } else { "full" };
        write_json(&path, mode, &mat_results, &chip_results, rows, batch_k);
    }
}
