//! Parallel scaling benchmark: persistent mat-shard pool vs the legacy
//! per-step `thread::scope` fan-out, plus chip-parallel executor
//! dispatch.
//!
//! **Mat level** (8/16/32/64/128 mats): batched extraction throughput
//! under `Sequential` (inline walk), `SpawnPerStep(T)` (the retired
//! default — a fresh thread scope per column-search step), and
//! `Threads(T)` (the persistent pool; since PR 7 a whole bit-serial
//! descent ships as *one* speculative broadcast→fold round trip).
//! `T` is fixed at 4 so the protocols are compared at the same fan-out
//! on any host. The sweep also reports the chip's *measured* Auto
//! crossover next to the empirically observed one (the narrowest swept
//! width where the pool beats sequential).
//!
//! Every pool run is cross-checked against the Sequential hit stream —
//! with `--assert-pool` the bench exits nonzero on any divergence or if
//! pool_vs_spawn drops below 2.0 anywhere (the CI perf-smoke gate).
//!
//! **Chip level** (1/2/4 chips): full-device batched drain through the
//! executor, whose multi-chip prefill dispatches independent chips on
//! scoped threads with a deterministic chip-order merge. Reported as
//! keys/sec against the chip count (chips are per-command scoped
//! threads — one spawn per *chip batch*, not per step, so the spawn
//! cost is already amortized there).
//!
//! Prints a table; with `RIME_BENCH_JSON=<path>` writes a
//! machine-readable snapshot (see `BENCH_parallel_scaling.json` at the
//! repo root). Pass `--quick` for a CI-sized smoke run.

use rime_core::{RimeConfig, RimeDevice};
use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat, ParallelPolicy};
use std::time::{Duration, Instant};

/// Fixed fan-out width for the spawn-vs-pool comparison.
const FANOUT: usize = 4;

/// Slots per mat = 4 arrays × rows.
fn geometry(mats: u16, rows: u32) -> ChipGeometry {
    ChipGeometry {
        banks: 1,
        subbanks_per_bank: 1,
        mats_per_subbank: mats,
        arrays_per_mat: 4,
        rows,
        cols: 64,
    }
}

fn loaded_chip(mats: u16, rows: u32, policy: ParallelPolicy) -> (Chip, u64) {
    let geo = geometry(mats, rows);
    let n = geo.capacity_slots();
    let mut chip = Chip::new(geo);
    chip.set_parallel_policy(policy);
    let keys: Vec<u64> = (0..n)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
    (chip, n)
}

/// Best-of-`reps` wall time for `f`, which receives a fresh clone of
/// `chip` each repetition (clone/setup — including pool spin-up, which
/// clones do not inherit — excluded from the measurement only insofar
/// as it happens before `init_range`; the first lease is part of the
/// measured session, as it would be in real use). The clone is dropped
/// *outside* the timed region: tearing a chip down joins its pool's
/// worker threads, which is shutdown cost, not extraction throughput —
/// and a cost the poolless Sequential clone never pays.
fn best_of(reps: usize, chip: &Chip, mut f: impl FnMut(&mut Chip)) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let mut fresh = chip.clone();
        let t = Instant::now();
        f(&mut fresh);
        best = best.min(t.elapsed());
        drop(fresh);
    }
    best
}

fn keys_per_sec(extracted: u64, elapsed: Duration) -> f64 {
    extracted as f64 / elapsed.as_secs_f64()
}

struct MatResult {
    mats: u16,
    keys: u64,
    seq_kps: f64,
    spawn_kps: f64,
    pool_kps: f64,
    /// The pool's hit stream (slots + raw bits) matched Sequential's.
    pool_matches_seq: bool,
}

impl MatResult {
    fn pool_vs_spawn(&self) -> f64 {
        self.pool_kps / self.spawn_kps
    }
    fn pool_vs_seq(&self) -> f64 {
        self.pool_kps / self.seq_kps
    }
}

fn run_mat_config(mats: u16, rows: u32, batch_k: usize, reps: usize) -> MatResult {
    let mut kps = [0.0f64; 3];
    let mut keys = 0;
    let mut hit_streams: Vec<Vec<rime_memristive::ExtractHit>> = Vec::new();
    let policies = [
        ParallelPolicy::Sequential,
        ParallelPolicy::SpawnPerStep(FANOUT),
        ParallelPolicy::Threads(FANOUT),
    ];
    for (idx, policy) in policies.into_iter().enumerate() {
        let (chip, n) = loaded_chip(mats, rows, policy);
        keys = n;
        let hits = std::cell::RefCell::new(Vec::new());
        let elapsed = best_of(reps, &chip, |chip| {
            chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
            *hits.borrow_mut() =
                std::hint::black_box(chip.extract_batch(Direction::Min, batch_k).unwrap());
        });
        hit_streams.push(hits.into_inner());
        kps[idx] = keys_per_sec(batch_k as u64, elapsed);
    }
    MatResult {
        mats,
        keys,
        seq_kps: kps[0],
        spawn_kps: kps[1],
        pool_kps: kps[2],
        pool_matches_seq: hit_streams[2] == hit_streams[0],
    }
}

struct ChipResult {
    chips: u32,
    keys: u64,
    kps: f64,
}

fn run_chip_config(chips: u32, rows: u32, batch_k: usize, reps: usize) -> ChipResult {
    let config = RimeConfig {
        channels: chips,
        chips_per_channel: 1,
        chip_geometry: geometry(8, rows),
        ..RimeConfig::small()
    };
    let total = config.total_slots();
    let keys: Vec<u64> = (0..total)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    // One batch of `batch_k` prefills every chip's candidate buffer to
    // that depth concurrently — the executor-level fan-out under test —
    // so the chip-side work grows with the chip count while the
    // measured command stays the same size.
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let dev = RimeDevice::new(config);
        dev.set_parallel_policy(ParallelPolicy::Sequential);
        let region = dev.alloc(total).unwrap();
        dev.write(region, 0, &keys).unwrap();
        let t = Instant::now();
        dev.init_all::<u64>(region).unwrap();
        std::hint::black_box(dev.rime_min_k::<u64>(region, batch_k).unwrap());
        best = best.min(t.elapsed());
    }
    ChipResult {
        chips,
        keys: total,
        kps: keys_per_sec(batch_k as u64 * u64::from(chips), best),
    }
}

/// The narrowest swept width where the pool actually beat sequential
/// (`None` if it never did) — the empirical twin of the calibrated
/// crossover.
fn observed_crossover(mat: &[MatResult]) -> Option<u16> {
    mat.iter()
        .filter(|r| r.pool_vs_seq() > 1.0)
        .map(|r| r.mats)
        .min()
}

fn write_json(
    path: &str,
    mode: &str,
    mat: &[MatResult],
    chip: &[ChipResult],
    rows: u32,
    batch_k: usize,
    measured_crossover: usize,
) {
    let mut out = String::from("{\n  \"bench\": \"parallel_scaling\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{mode}\",\n  \"fanout_threads\": {FANOUT},\n  \"mat_level\": [\n"
    ));
    for (i, r) in mat.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mats\": {}, \"keys\": {}, \"seq_kps\": {:.0}, \
             \"spawn_kps\": {:.0}, \"pool_kps\": {:.0}, \
             \"pool_vs_spawn\": {:.2}, \"pool_vs_seq\": {:.2}, \
             \"pool_matches_seq\": {}}}{}\n",
            r.mats,
            r.keys,
            r.seq_kps,
            r.spawn_kps,
            r.pool_kps,
            r.pool_vs_spawn(),
            r.pool_vs_seq(),
            r.pool_matches_seq,
            if i + 1 < mat.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"chip_level\": [\n");
    for (i, r) in chip.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"chips\": {}, \"keys\": {}, \"kps\": {:.0}}}{}\n",
            r.chips,
            r.keys,
            r.kps,
            if i + 1 < chip.len() { "," } else { "" },
        ));
    }
    // The one-shot calibration sample Auto's gate is derived from, plus
    // both crossovers (calibrated and empirically observed).
    let cal = rime_memristive::pool_calibration();
    out.push_str(&format!(
        "  ],\n  \"calibration\": {{\"round_trip_ns\": {}, \"word_picos\": {}, \
         \"crossover_mats\": {}, \"observed_crossover_mats\": {}}},\n",
        cal.round_trip_ns,
        cal.word_picos,
        measured_crossover,
        observed_crossover(mat).map_or(-1i64, i64::from),
    ));
    // One extra fully instrumented pass of the pool configuration,
    // outside any timed region: the masked (deterministic) snapshot
    // rides along for byte-stable diffs, while the unmasked pool
    // wall-clock evidence is distilled into "pool_metrics" so the
    // committed file proves the probes fired (PR-7 regression).
    let (metrics, pool_metrics) = rime_bench::instrumented_metrics_and_pool_stats(
        geometry(64, rows),
        ParallelPolicy::Threads(FANOUT),
        batch_k,
    );
    out.push_str(&format!("  \"pool_metrics\": {pool_metrics},\n"));
    out.push_str(&format!("  \"metrics\": {metrics}\n}}\n"));
    std::fs::write(path, out).expect("write bench snapshot");
    println!("snapshot written to {path}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let assert_pool = std::env::args().any(|a| a == "--assert-pool");
    let (rows, batch_k, reps) = if quick {
        (64u32, 64usize, 2usize)
    } else {
        (512, 256, 3)
    };

    println!(
        "parallel scaling: speculative pool descents vs per-step spawns ({} mode, fan-out {})",
        if quick { "quick" } else { "full" },
        FANOUT,
    );
    println!(
        "{:>5} {:>8} | {:>12} {:>12} {:>12} | {:>10} {:>10}",
        "mats", "keys", "seq k/s", "spawn k/s", "pool k/s", "pool/spawn", "pool/seq"
    );
    let mut mat_results = Vec::new();
    for mats in [8u16, 16, 32, 64, 128] {
        let r = run_mat_config(mats, rows, batch_k, reps);
        println!(
            "{:>5} {:>8} | {:>12.0} {:>12.0} {:>12.0} | {:>9.2}x {:>9.2}x{}",
            r.mats,
            r.keys,
            r.seq_kps,
            r.spawn_kps,
            r.pool_kps,
            r.pool_vs_spawn(),
            r.pool_vs_seq(),
            if r.pool_matches_seq { "" } else { "  DIVERGED" },
        );
        mat_results.push(r);
    }

    let measured_crossover = Chip::new(geometry(64, rows)).pool_crossover_mats();
    println!();
    match observed_crossover(&mat_results) {
        Some(m) => println!(
            "crossover: calibrated {measured_crossover} mats, pool first beats sequential at {m} mats"
        ),
        None => println!(
            "crossover: calibrated {measured_crossover} mats, pool never beat sequential in this sweep"
        ),
    }

    println!();
    println!("chip-parallel executor dispatch (8 mats per chip)");
    println!("{:>5} {:>8} | {:>14}", "chips", "keys", "extracted k/s");
    let mut chip_results = Vec::new();
    for chips in [1u32, 2, 4] {
        let r = run_chip_config(chips, rows, batch_k, reps);
        println!("{:>5} {:>8} | {:>14.0}", r.chips, r.keys, r.kps);
        chip_results.push(r);
    }

    if let Ok(path) = std::env::var("RIME_BENCH_JSON") {
        let mode = if quick { "quick" } else { "full" };
        write_json(
            &path,
            mode,
            &mat_results,
            &chip_results,
            rows,
            batch_k,
            measured_crossover,
        );
    }

    // CI perf-smoke gate: the batched-epoch protocol must keep the pool
    // comfortably ahead of per-step spawning at every swept width, and
    // its hit stream bit-identical to Sequential.
    if assert_pool {
        let mut failed = false;
        for r in &mat_results {
            if !r.pool_matches_seq {
                eprintln!(
                    "ASSERT: pool hit stream diverged from Sequential at {} mats",
                    r.mats
                );
                failed = true;
            }
            if r.pool_vs_spawn() < 2.0 {
                eprintln!(
                    "ASSERT: pool_vs_spawn {:.2} < 2.0 at {} mats",
                    r.pool_vs_spawn(),
                    r.mats
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("--assert-pool: all pool checks passed");
    }
}
