//! Criterion bench: batched top-k extraction (`extract_batch`) against a
//! sequential per-key `extract` loop on a multi-mat geometry, plus the
//! device-level `rime_min_k` path. The batch engine amortizes
//! select-vector setup and H-tree traversal across the whole batch, so it
//! should beat the loop wall-clock while producing identical results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rime_core::{ops, RimeConfig, RimeDevice};
use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat};
use std::hint::black_box;

fn loaded_chip(n: u64) -> Chip {
    let mut chip = Chip::new(ChipGeometry::small());
    let keys: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
    chip
}

fn bench_chip_batch_vs_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip_top_k");
    let n = 4096u64;
    let chip = loaded_chip(n);
    for k in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("extract_batch", k), &k, |b, &k| {
            b.iter_batched(
                || chip.clone(),
                |mut chip| {
                    chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
                    black_box(chip.extract_batch(Direction::Min, k).unwrap())
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("sequential_loop", k), &k, |b, &k| {
            b.iter_batched(
                || chip.clone(),
                |mut chip| {
                    chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
                    let mut out = Vec::with_capacity(k);
                    for _ in 0..k {
                        match chip.extract(Direction::Min).unwrap() {
                            Some(hit) => out.push(hit),
                            None => break,
                        }
                    }
                    black_box(out)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_device_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_top_k");
    let n = 4096u64;
    let dev = RimeDevice::new(RimeConfig::small());
    let region = dev.alloc(n).unwrap();
    let keys: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x2545F4914F6CDD1D)).collect();
    dev.write(region, 0, &keys).unwrap();
    for k in [64u64, 256] {
        group.bench_with_input(BenchmarkId::new("rime_min_k", k), &k, |b, &k| {
            b.iter(|| black_box(ops::smallest_k::<u64>(&dev, region, k).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("rime_min_loop", k), &k, |b, &k| {
            b.iter(|| {
                dev.init_all::<u64>(region).unwrap();
                let mut out = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    match dev.rime_min::<u64>(region).unwrap() {
                        Some((_, v)) => out.push(v),
                        None => break,
                    }
                }
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chip_batch_vs_loop, bench_device_batch);
criterion_main!(benches);
