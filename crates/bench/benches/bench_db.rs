//! Criterion bench: the database applications (Fig. 16's code paths),
//! baseline vs RIME functional implementations.

use criterion::{criterion_group, criterion_main, Criterion};
use rime_apps::{groupby, mergejoin};
use rime_core::{RimeConfig, RimeDevice};
use rime_workloads::{JoinTables, KvTable};
use std::hint::black_box;

fn bench_groupby(c: &mut Criterion) {
    let table = KvTable::grouped(4_000, 32, 11);
    let mut group = c.benchmark_group("groupby");
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(groupby::groupby_baseline(&table)))
    });
    group.bench_function("rime_functional", |b| {
        b.iter(|| {
            let mut dev = RimeDevice::new(RimeConfig::small());
            black_box(groupby::groupby_rime(&mut dev, &table).unwrap())
        })
    });
    group.finish();
}

fn bench_mergejoin(c: &mut Criterion) {
    let tables = JoinTables::with_overlap(2_000, 0.5, 12);
    let mut group = c.benchmark_group("mergejoin");
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(mergejoin::mergejoin_baseline(&tables)))
    });
    group.bench_function("rime_functional", |b| {
        b.iter(|| {
            let mut dev = RimeDevice::new(RimeConfig::small());
            black_box(mergejoin::mergejoin_rime(&mut dev, &tables).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_groupby, bench_mergejoin);
criterion_main!(benches);
