//! Criterion bench: strict priority queue (Fig. 18's code paths) —
//! binary heap vs the RIME-backed queue, across add:remove ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rime_apps::spq;
use rime_core::{RimeConfig, RimeDevice};
use rime_workloads::PacketStream;
use std::hint::black_box;

fn bench_spq(c: &mut Criterion) {
    let mut group = c.benchmark_group("spq");
    for ratio in [1u32, 3, 5] {
        let stream = PacketStream::generate(256, 128, ratio, 31 + ratio as u64);
        group.bench_with_input(BenchmarkId::new("heap", ratio), &stream, |b, s| {
            b.iter(|| black_box(spq::spq_baseline(s)))
        });
        group.bench_with_input(
            BenchmarkId::new("rime_functional", ratio),
            &stream,
            |b, s| {
                b.iter(|| {
                    let dev = RimeDevice::new(RimeConfig::small());
                    black_box(spq::spq_rime(&dev, s).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spq);
criterion_main!(benches);
