//! Criterion bench: the four baseline kernels and the RIME functional
//! sort, end to end (Fig. 15's code paths at simulator scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rime_kernels::exec::{heap_sort, merge_sort, quick_sort, radix_sort, TracedMemory};
use rime_kernels::rime_sort::sort_small;
use rime_workloads::keys::{generate_u64, KeyDistribution};
use std::hint::black_box;

const N: usize = 8_192;

fn bench_kernels(c: &mut Criterion) {
    let keys = generate_u64(N, KeyDistribution::Uniform, 7);
    let mut group = c.benchmark_group("baseline_kernels");
    group.bench_with_input(BenchmarkId::new("merge", N), &keys, |b, keys| {
        b.iter(|| {
            let mut mem = TracedMemory::untraced();
            let buf = mem.add_buf(keys.clone());
            let out = merge_sort(&mut mem, buf);
            black_box(mem.into_buf(out))
        })
    });
    group.bench_with_input(BenchmarkId::new("quick", N), &keys, |b, keys| {
        b.iter(|| {
            let mut mem = TracedMemory::untraced();
            let buf = mem.add_buf(keys.clone());
            quick_sort(&mut mem, buf);
            black_box(mem.into_buf(buf))
        })
    });
    group.bench_with_input(BenchmarkId::new("radix", N), &keys, |b, keys| {
        b.iter(|| {
            let mut mem = TracedMemory::untraced();
            let buf = mem.add_buf(keys.clone());
            let out = radix_sort(&mut mem, buf);
            black_box(mem.into_buf(out))
        })
    });
    group.bench_with_input(BenchmarkId::new("heap", N), &keys, |b, keys| {
        b.iter(|| {
            let mut mem = TracedMemory::untraced();
            let buf = mem.add_buf(keys.clone());
            heap_sort(&mut mem, buf);
            black_box(mem.into_buf(buf))
        })
    });
    group.finish();
}

fn bench_rime_functional(c: &mut Criterion) {
    // The functional chip model executes every column search, so keep the
    // benched size modest.
    let keys = generate_u64(512, KeyDistribution::Uniform, 8);
    c.bench_function("rime_functional_sort_512", |b| {
        b.iter(|| black_box(sort_small(&keys).unwrap()))
    });
}

criterion_group!(benches, bench_kernels, bench_rime_functional);
criterion_main!(benches);
