//! Criterion bench: the memory-system substrate — DRAM trace model and
//! cache hierarchy throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rime_memsim::cache::{CacheConfig, Hierarchy};
use rime_memsim::{DramConfig, DramModel};
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_trace");
    group.bench_function("sequential_10k", |b| {
        b.iter(|| {
            let mut m = DramModel::new(DramConfig::ddr4_offchip());
            for line in 0..10_000u64 {
                m.access(line * 64, false, 0);
            }
            black_box(m.last_completion)
        })
    });
    group.bench_function("random_10k", |b| {
        b.iter(|| {
            let mut m = DramModel::new(DramConfig::hbm_in_package());
            let mut addr = 99u64;
            for _ in 0..10_000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.access((addr % (1 << 33)) & !63, false, 0);
            }
            black_box(m.last_completion)
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("hierarchy_stream_64k_lines", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(4, CacheConfig::l1d_table1(), CacheConfig::l2_table1());
            for line in 0..65_536u64 {
                h.access((line % 4) as u32, line * 64, line % 3 == 0);
            }
            black_box(h.mem_accesses())
        })
    });
}

criterion_group!(benches, bench_dram, bench_cache);
criterion_main!(benches);
