//! Criterion bench: one in-situ min/max extraction on the functional
//! chip model, across key formats and set sizes. (Measures simulator
//! speed; device-time figures come from the `fig*` binaries.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat, SortableBits};
use std::hint::black_box;

fn loaded_chip<T: SortableBits>(keys: &[T]) -> Chip {
    let mut chip = Chip::new(ChipGeometry::small());
    let raw: Vec<u64> = keys.iter().map(|k| k.to_raw_bits()).collect();
    chip.store_keys(0, &raw, T::FORMAT).unwrap();
    chip
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip_extract_min");
    for n in [64u64, 512, 4096] {
        let keys: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let chip = loaded_chip(&keys);
        group.bench_with_input(BenchmarkId::new("u64", n), &n, |b, &n| {
            b.iter_batched(
                || chip.clone(),
                |mut chip| {
                    chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
                    black_box(chip.extract(Direction::Min).unwrap())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip_extract_formats");
    let n = 1024u64;

    let chip = loaded_chip(&(0..n).map(|i| i as u32 ^ 0xA5A5).collect::<Vec<u32>>());
    group.bench_function("u32", |b| {
        b.iter_batched(
            || chip.clone(),
            |mut chip| {
                chip.init_range(0, n, KeyFormat::UNSIGNED32).unwrap();
                black_box(chip.extract(Direction::Min).unwrap())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    let chip = loaded_chip(&(0..n).map(|i| i as i64 - 512).collect::<Vec<i64>>());
    group.bench_function("i64", |b| {
        b.iter_batched(
            || chip.clone(),
            |mut chip| {
                chip.init_range(0, n, KeyFormat::SIGNED64).unwrap();
                black_box(chip.extract(Direction::Min).unwrap())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    let chip = loaded_chip(
        &(0..n)
            .map(|i| (i as f32 - 512.0) * 1.5)
            .collect::<Vec<f32>>(),
    );
    group.bench_function("f32", |b| {
        b.iter_batched(
            || chip.clone(),
            |mut chip| {
                chip.init_range(0, n, KeyFormat::FLOAT32).unwrap();
                black_box(chip.extract(Direction::Max).unwrap())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_extract, bench_formats);
criterion_main!(benches);
