//! Criterion bench: ablations of the design choices DESIGN.md calls out.
//!
//! * **Early exit** (§IV-B.2 "till … only 1 selected value is left"):
//!   duplicate-heavy inputs converge in fewer column-search steps than
//!   uniform inputs, so functional extraction runs measurably faster.
//! * **Key width**: 32-bit searches take half the steps of 64-bit ones.
//! * **Striping** (Fig. 12 explicit placement): one region per chip vs a
//!   single contiguous region, through the full sort path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rime_core::{RimeConfig, RimeDevice};
use rime_kernels::rime_sort::sort_via_device;
use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat};
use rime_workloads::keys::{generate_u64, KeyDistribution};
use std::hint::black_box;

fn bench_early_exit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_early_exit");
    let n = 2048u64;
    for (name, dist) in [
        ("uniform", KeyDistribution::Uniform),
        ("8_distinct", KeyDistribution::FewDistinct { distinct: 8 }),
    ] {
        let keys = generate_u64(n as usize, dist, 5);
        let mut chip = Chip::new(ChipGeometry::small());
        chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
        group.bench_function(name, |b| {
            b.iter_batched(
                || chip.clone(),
                |mut chip| {
                    chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
                    black_box(chip.extract(Direction::Min).unwrap())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_key_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_key_width");
    let n = 2048u64;
    let keys = generate_u64(n as usize, KeyDistribution::Uniform, 6);
    for (name, format, mask) in [
        ("k32", KeyFormat::UNSIGNED32, u32::MAX as u64),
        ("k64", KeyFormat::UNSIGNED64, u64::MAX),
    ] {
        let mut chip = Chip::new(ChipGeometry::small());
        let masked: Vec<u64> = keys.iter().map(|&k| k & mask).collect();
        chip.store_keys(0, &masked, format).unwrap();
        group.bench_function(name, |b| {
            b.iter_batched(
                || chip.clone(),
                |mut chip| {
                    chip.init_range(0, n, format).unwrap();
                    black_box(chip.extract(Direction::Min).unwrap())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_striping(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_striping");
    let keys = generate_u64(1_024, KeyDistribution::Uniform, 7);
    for stripes in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(stripes), &stripes, |b, &s| {
            b.iter(|| {
                let mut dev = RimeDevice::new(RimeConfig::small());
                black_box(sort_via_device(&mut dev, &keys, s).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_early_exit, bench_key_width, bench_striping);
criterion_main!(benches);
