//! Column-search engine benchmark: bit-sliced column shadow vs the
//! row-major scalar oracle (feature `scalar-oracle`), at 1/8/64 mats.
//!
//! Measures keys/sec for single-key extraction (`extract` in a loop) and
//! batched extraction (`extract_batch`), both engines driven through the
//! identical chip controller so the difference is purely the
//! sense/match kernel. Prints a table with speedups; with
//! `RIME_BENCH_JSON=<path>` also writes a machine-readable snapshot
//! (see `BENCH_column_search.json` at the repo root for the committed
//! perf trajectory). Pass `--quick` for a CI-sized smoke run.

use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat, ParallelPolicy};
use std::time::{Duration, Instant};

/// Slots per mat = 4 arrays × rows.
fn geometry(mats: u16, rows: u32) -> ChipGeometry {
    ChipGeometry {
        banks: 1,
        subbanks_per_bank: 1,
        mats_per_subbank: mats,
        arrays_per_mat: 4,
        rows,
        cols: 64,
    }
}

fn loaded_chip(mats: u16, rows: u32, scalar: bool) -> (Chip, u64) {
    let geo = geometry(mats, rows);
    let n = geo.capacity_slots();
    let mut chip = Chip::new(geo);
    chip.set_scalar_oracle(scalar);
    // Sequential fan-out so the comparison isolates the sense/match
    // kernel rather than thread-scheduling effects.
    chip.set_parallel_policy(ParallelPolicy::Sequential);
    let keys: Vec<u64> = (0..n)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
    (chip, n)
}

/// Best-of-`reps` wall time for `f`, which receives a fresh clone of
/// `chip` each repetition (clone/setup excluded from the measurement).
fn best_of(reps: usize, chip: &Chip, mut f: impl FnMut(Chip)) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let fresh = chip.clone();
        let t = Instant::now();
        f(fresh);
        best = best.min(t.elapsed());
    }
    best
}

fn keys_per_sec(extracted: u64, elapsed: Duration) -> f64 {
    extracted as f64 / elapsed.as_secs_f64()
}

struct EngineResult {
    scalar_kps: f64,
    bitsliced_kps: f64,
}

impl EngineResult {
    fn speedup(&self) -> f64 {
        self.bitsliced_kps / self.scalar_kps
    }
}

struct ConfigResult {
    mats: u16,
    keys: u64,
    single: EngineResult,
    batch: EngineResult,
}

fn run_config(mats: u16, rows: u32, extracts: u64, batch_k: usize, reps: usize) -> ConfigResult {
    let mut single = [0.0f64; 2];
    let mut batch = [0.0f64; 2];
    let mut keys = 0;
    for (idx, scalar) in [(0usize, true), (1, false)] {
        let (chip, n) = loaded_chip(mats, rows, scalar);
        keys = n;

        let elapsed = best_of(reps, &chip, |mut chip| {
            chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
            for _ in 0..extracts {
                std::hint::black_box(chip.extract(Direction::Min).unwrap());
            }
        });
        single[idx] = keys_per_sec(extracts, elapsed);

        let elapsed = best_of(reps, &chip, |mut chip| {
            chip.init_range(0, n, KeyFormat::UNSIGNED64).unwrap();
            std::hint::black_box(chip.extract_batch(Direction::Min, batch_k).unwrap());
        });
        batch[idx] = keys_per_sec(batch_k as u64, elapsed);
    }
    ConfigResult {
        mats,
        keys,
        single: EngineResult {
            scalar_kps: single[0],
            bitsliced_kps: single[1],
        },
        batch: EngineResult {
            scalar_kps: batch[0],
            bitsliced_kps: batch[1],
        },
    }
}

fn write_json(path: &str, mode: &str, results: &[ConfigResult], rows: u32, batch_k: usize) {
    let mut out = String::from("{\n  \"bench\": \"column_search\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n  \"configs\": [\n"));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mats\": {}, \"keys\": {}, \
             \"single_scalar_kps\": {:.0}, \"single_bitsliced_kps\": {:.0}, \
             \"single_speedup\": {:.2}, \
             \"batch_scalar_kps\": {:.0}, \"batch_bitsliced_kps\": {:.0}, \
             \"batch_speedup\": {:.2}}}{}\n",
            r.mats,
            r.keys,
            r.single.scalar_kps,
            r.single.bitsliced_kps,
            r.single.speedup(),
            r.batch.scalar_kps,
            r.batch.bitsliced_kps,
            r.batch.speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    // One extra fully instrumented pass of the largest config, outside
    // any timed region, whose masked (deterministic) metrics snapshot
    // rides along in the committed file.
    let metrics = rime_bench::instrumented_metrics_json(
        geometry(64, rows),
        ParallelPolicy::Sequential,
        batch_k,
    );
    out.push_str(&format!("  ],\n  \"metrics\": {metrics}\n}}\n"));
    std::fs::write(path, out).expect("write bench snapshot");
    println!("snapshot written to {path}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    // Quick mode keeps all three mat counts but shrinks rows and the
    // extraction workload so the whole run stays CI-smoke-sized.
    let (rows, extracts, batch_k, reps) = if quick {
        (64u32, 8u64, 64usize, 2usize)
    } else {
        (512, 32, 256, 3)
    };

    println!(
        "column-search engine: bit-sliced shadow vs scalar oracle ({} mode)",
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:>5} {:>8} | {:>14} {:>14} {:>8} | {:>14} {:>14} {:>8}",
        "mats",
        "keys",
        "single scl/s",
        "single bit/s",
        "speedup",
        "batch scl/s",
        "batch bit/s",
        "speedup"
    );

    let mut results = Vec::new();
    for mats in [1u16, 8, 64] {
        let r = run_config(mats, rows, extracts, batch_k, reps);
        println!(
            "{:>5} {:>8} | {:>14.0} {:>14.0} {:>7.2}x | {:>14.0} {:>14.0} {:>7.2}x",
            r.mats,
            r.keys,
            r.single.scalar_kps,
            r.single.bitsliced_kps,
            r.single.speedup(),
            r.batch.scalar_kps,
            r.batch.bitsliced_kps,
            r.batch.speedup(),
        );
        results.push(r);
    }

    if let Ok(path) = std::env::var("RIME_BENCH_JSON") {
        let mode = if quick { "quick" } else { "full" };
        write_json(&path, mode, &results, rows, batch_k);
    }
}
