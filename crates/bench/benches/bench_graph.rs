//! Criterion bench: the graph applications (Fig. 17's code paths).

use criterion::{criterion_group, criterion_main, Criterion};
use rime_apps::{astar, dijkstra, kruskal, prim};
use rime_core::{RimeConfig, RimeDevice};
use rime_workloads::{Graph, ObstacleGrid};
use std::hint::black_box;

fn bench_mst(c: &mut Criterion) {
    let graph = Graph::random_connected(300, 2_000, 21);
    let mut group = c.benchmark_group("mst");
    group.bench_function("kruskal_baseline", |b| {
        b.iter(|| black_box(kruskal::kruskal_baseline(&graph)))
    });
    group.bench_function("prim_baseline", |b| {
        b.iter(|| black_box(prim::prim_baseline(&graph)))
    });
    group.bench_function("kruskal_rime_functional", |b| {
        b.iter(|| {
            let mut dev = RimeDevice::new(RimeConfig::small());
            black_box(kruskal::kruskal_rime(&mut dev, &graph).unwrap())
        })
    });
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    let graph = Graph::random_connected(400, 2_400, 22);
    let grid = ObstacleGrid::random(40, 40, 0.25, 23);
    let mut group = c.benchmark_group("paths");
    group.bench_function("dijkstra_baseline", |b| {
        b.iter(|| black_box(dijkstra::dijkstra_baseline(&graph, 0)))
    });
    group.bench_function("astar_baseline", |b| {
        b.iter(|| black_box(astar::astar_baseline(&grid)))
    });
    group.bench_function("astar_rime_functional", |b| {
        b.iter(|| {
            let mut dev = RimeDevice::new(RimeConfig::small());
            black_box(astar::astar_rime(&mut dev, &grid).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mst, bench_paths);
criterion_main!(benches);
