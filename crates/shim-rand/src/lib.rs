//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the small slice of the `rand 0.8` API the repo actually
//! uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over
//! integer and float `Range`s, and `Rng::gen_bool`. The generator is a
//! SplitMix64-based PRNG — deterministic per seed, statistically solid
//! for workload generation, and *not* a drop-in bit-for-bit replacement
//! for upstream `StdRng` (seeded sequences differ, which only matters if
//! a test hard-codes upstream values; none do).

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce uniformly from raw bits.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `gen_range` can produce, with their uniform-sampling logic.
///
/// Mirrors upstream `rand`'s `SampleUniform`. The single blanket
/// `SampleRange` impl below (rather than one impl per concrete range
/// type) is what lets inference flow from the call site into untyped
/// range literals: in `center + rng.gen_range(0..500)` the blanket impl
/// unifies the literal's type with `T` immediately, so `T = u64`.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift keeps the bias below 2^-64 per draw —
                // indistinguishable for workload generation.
                let wide = rng.next_u64() as u128 * span;
                (lo as i128 + (wide >> 64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + (hi - lo) * f64::sample(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        lo + (hi - lo) * f32::sample(rng)
    }
}

/// Ranges (and other domains) that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: SplitMix64 state update with a
    /// finalizing mix. Passes casual uniformity checks and is fully
    /// deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix the seed so small consecutive seeds diverge.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|_| rng.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|_| rng.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(43);
            (0..8).map(|_| rng.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
