//! Sort MergeJoin (§VI-C): join two key-value tables by sorting both and
//! merging, keeping only keys present in both (Fig. 6's join semantics).

use rime_core::{ops, Placement, RimeDevice, RimeError, RimePerfConfig};
use rime_kernels::SortAlgorithm;
use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;
use rime_workloads::JoinTables;

/// Baseline sort-merge join: returns the ascending multiset of matching
/// keys (pairwise duplicate semantics, as in [`ops::merge_join`]).
pub fn mergejoin_baseline(tables: &JoinTables) -> Vec<u64> {
    let mut left = tables.left.keys.clone();
    let mut right = tables.right.keys.clone();
    left.sort_unstable();
    right.sort_unstable();
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = Vec::new();
    while i < left.len() && j < right.len() {
        match left[i].cmp(&right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(left[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// RIME merge-join: both tables live in RIME regions; the join consumes
/// two ordered streams directly (no CPU-side sort at all).
///
/// # Errors
///
/// Propagates device errors.
pub fn mergejoin_rime(device: &mut RimeDevice, tables: &JoinTables) -> Result<Vec<u64>, RimeError> {
    if tables.left.is_empty() || tables.right.is_empty() {
        return Ok(Vec::new());
    }
    let left = device.alloc(tables.left.len() as u64)?;
    device.write(left, 0, &tables.left.keys)?;
    let right = device.alloc(tables.right.len() as u64)?;
    device.write(right, 0, &tables.right.keys)?;
    let joined = ops::merge_join::<u64>(device, left, right)?;
    device.free(left)?;
    device.free(right)?;
    Ok(joined)
}

/// Baseline decomposition: two quicksorts plus a streaming merge scan.
pub fn baseline_workload(rows_per_table: u64, system: &SystemConfig) -> Workload {
    let mut workload = SortAlgorithm::Quick.workload(rows_per_table, system);
    workload.extend(
        SortAlgorithm::Quick
            .workload(rows_per_table, system)
            .phases()
            .iter()
            .cloned(),
    );
    workload.push(Phase::streaming(
        "merge scan",
        2 * rows_per_table,
        20.0,
        2 * rows_per_table * 16,
    ));
    workload
}

/// Baseline throughput in million rows per second over `2 × rows`.
pub fn baseline_throughput_mkps(rows_per_table: u64, system: &SystemConfig) -> f64 {
    baseline_workload(rows_per_table, system)
        .execute(system)
        .throughput_mkps(2 * rows_per_table)
}

/// RIME seconds: load both tables, then stream `2 × rows` ordered values.
pub fn rime_seconds(rows_per_table: u64, perf: &RimePerfConfig) -> f64 {
    perf.load_seconds(2 * rows_per_table, 8, Placement::Striped)
        + perf.stream_seconds(2 * rows_per_table, 2 * rows_per_table, Placement::Striped)
}

/// RIME throughput in million rows per second over `2 × rows`.
pub fn rime_throughput_mkps(rows_per_table: u64, perf: &RimePerfConfig) -> f64 {
    2.0 * rows_per_table as f64 / rime_seconds(rows_per_table, perf) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;

    #[test]
    fn baseline_and_rime_agree() {
        let tables = JoinTables::with_overlap(600, 0.4, 31);
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(
            mergejoin_baseline(&tables),
            mergejoin_rime(&mut dev, &tables).unwrap()
        );
    }

    #[test]
    fn join_keeps_only_shared_keys() {
        use rime_workloads::KvTable;
        let tables = JoinTables {
            left: KvTable {
                keys: vec![1, 3, 5, 5, 9],
                values: vec![0; 5],
            },
            right: KvTable {
                keys: vec![5, 2, 9, 5],
                values: vec![0; 4],
            },
        };
        assert_eq!(mergejoin_baseline(&tables), vec![5, 5, 9]);
    }

    #[test]
    fn empty_join() {
        use rime_workloads::KvTable;
        let tables = JoinTables {
            left: KvTable {
                keys: vec![],
                values: vec![],
            },
            right: KvTable {
                keys: vec![1],
                values: vec![2],
            },
        };
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert!(mergejoin_rime(&mut dev, &tables).unwrap().is_empty());
    }

    #[test]
    fn fig16_shape() {
        // Fig. 16: RIME 5.6–24.1× over off-chip DDR4 for MergeJoin.
        let rows = 32_000_000u64;
        let off = baseline_throughput_mkps(rows, &SystemConfig::off_chip(16));
        let rime = rime_throughput_mkps(rows, &RimePerfConfig::table1());
        let gain = rime / off;
        assert!((4.0..40.0).contains(&gain), "gain {gain}");
    }
}
