//! Key-packing helpers shared by the applications.
//!
//! RIME ranks flat keys; applications that need (priority, payload)
//! records pack both into one 64-bit key with the priority in the high
//! bits — standard practice for radix/PIM-friendly data layouts. For
//! `f32` priorities the usual order-preserving bit transform is applied
//! so unsigned key order equals float order.

/// Maps an `f32` onto a `u32` whose unsigned order matches
/// [`f32::total_cmp`] order.
pub fn f32_to_ordered_u32(x: f32) -> u32 {
    let bits = x.to_bits();
    if bits & 0x8000_0000 == 0 {
        bits | 0x8000_0000
    } else {
        !bits
    }
}

/// Inverse of [`f32_to_ordered_u32`].
pub fn ordered_u32_to_f32(key: u32) -> f32 {
    if key & 0x8000_0000 != 0 {
        f32::from_bits(key & 0x7FFF_FFFF)
    } else {
        f32::from_bits(!key)
    }
}

/// Packs an `f32` priority and a 32-bit payload into one unsigned key
/// whose order is (priority, payload).
pub fn pack_f32_key(priority: f32, payload: u32) -> u64 {
    (f32_to_ordered_u32(priority) as u64) << 32 | payload as u64
}

/// Unpacks a key produced by [`pack_f32_key`].
pub fn unpack_f32_key(key: u64) -> (f32, u32) {
    (ordered_u32_to_f32((key >> 32) as u32), key as u32)
}

/// Packs a `u32` priority and payload (order: priority, payload).
pub fn pack_u32_key(priority: u32, payload: u32) -> u64 {
    (priority as u64) << 32 | payload as u64
}

/// Unpacks a key produced by [`pack_u32_key`].
pub fn unpack_u32_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_transform_is_order_preserving() {
        let vals = [-1.0e9f32, -3.5, -0.0, 0.0, 1e-20, 2.5, 7.0e8];
        for w in vals.windows(2) {
            assert!(
                f32_to_ordered_u32(w[0]) < f32_to_ordered_u32(w[1]),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn f32_transform_roundtrips() {
        for v in [-123.25f32, 0.0, 5.5, -0.0, f32::MAX, f32::MIN_POSITIVE] {
            let rt = ordered_u32_to_f32(f32_to_ordered_u32(v));
            assert_eq!(rt.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn packed_keys_order_by_priority_first() {
        let a = pack_f32_key(1.5, 999);
        let b = pack_f32_key(2.0, 0);
        assert!(a < b);
        let (p, id) = unpack_f32_key(a);
        assert_eq!(p, 1.5);
        assert_eq!(id, 999);
    }

    #[test]
    fn u32_pack_roundtrip() {
        let k = pack_u32_key(7, 42);
        assert_eq!(unpack_u32_key(k), (7, 42));
        assert!(pack_u32_key(1, u32::MAX) < pack_u32_key(2, 0));
    }
}
