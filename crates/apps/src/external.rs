//! External sorting: datasets larger than the RIME capacity.
//!
//! §V supports multiple DIMMs, but a dataset can still exceed the
//! installed RIME capacity. The classic external-sort structure maps
//! directly onto the device: RIME-sort capacity-sized *runs* one after
//! another (each run is a load → ordered stream → drain cycle), keep the
//! sorted runs in conventional storage, and k-way-merge them on the CPU.
//! Bandwidth complexity stays O(N) per pass — one RIME pass plus one
//! merge pass for any N up to (capacity × fan-in).

use rime_core::{ops, RimeDevice, RimeError};

/// Sorts `keys` of any length using at most `run_slots` device slots at
/// a time.
///
/// # Errors
///
/// Propagates device errors. `run_slots` is clamped to at least 1.
///
/// # Example
///
/// ```
/// use rime_apps::external::external_sort;
/// use rime_core::{RimeConfig, RimeDevice};
///
/// # fn main() -> Result<(), rime_core::RimeError> {
/// let dev = RimeDevice::new(RimeConfig::small());
/// let keys = vec![5u64, 3, 9, 1, 7, 2, 8, 4];
/// // Pretend the device only fits 3 keys at a time.
/// let sorted = external_sort(&dev, &keys, 3)?;
/// assert_eq!(sorted, vec![1, 2, 3, 4, 5, 7, 8, 9]);
/// # Ok(())
/// # }
/// ```
pub fn external_sort(
    device: &RimeDevice,
    keys: &[u64],
    run_slots: usize,
) -> Result<Vec<u64>, RimeError> {
    if keys.is_empty() {
        return Ok(Vec::new());
    }
    let run_slots = run_slots.max(1);
    // Phase 1: produce sorted runs through the device, one at a time.
    let mut runs: Vec<Vec<u64>> = Vec::with_capacity(keys.len().div_ceil(run_slots));
    for chunk in keys.chunks(run_slots) {
        let region = device.alloc(chunk.len() as u64)?;
        device.write(region, 0, chunk)?;
        runs.push(ops::sort_into_vec::<u64>(device, region)?);
        device.free(region)?;
    }
    // Phase 2: CPU k-way merge over the runs (loser-tree via BinaryHeap).
    let mut heap = std::collections::BinaryHeap::new();
    let mut cursors: Vec<usize> = vec![0; runs.len()];
    for (idx, run) in runs.iter().enumerate() {
        if let Some(&head) = run.first() {
            heap.push(std::cmp::Reverse((head, idx)));
        }
    }
    let mut out = Vec::with_capacity(keys.len());
    while let Some(std::cmp::Reverse((value, idx))) = heap.pop() {
        out.push(value);
        cursors[idx] += 1;
        if let Some(&next) = runs[idx].get(cursors[idx]) {
            heap.push(std::cmp::Reverse((next, idx)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;
    use rime_workloads::keys::{generate_u64, KeyDistribution};

    fn check(keys: Vec<u64>, run_slots: usize) {
        let mut want = keys.clone();
        want.sort_unstable();
        let dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(external_sort(&dev, &keys, run_slots).unwrap(), want);
    }

    #[test]
    fn sorts_with_tiny_runs() {
        check(generate_u64(500, KeyDistribution::Uniform, 77), 7);
    }

    #[test]
    fn sorts_with_one_big_run() {
        check(generate_u64(200, KeyDistribution::Uniform, 78), 10_000);
    }

    #[test]
    fn run_size_one_degenerates_to_merge_only() {
        check(vec![4, 2, 9, 1], 1);
    }

    #[test]
    fn duplicates_and_empty() {
        check(
            generate_u64(300, KeyDistribution::FewDistinct { distinct: 4 }, 79),
            16,
        );
        check(vec![], 8);
    }

    #[test]
    fn larger_than_device_capacity() {
        // Force more data through than the device holds at once.
        let dev = RimeDevice::new(RimeConfig::small());
        let cap = dev.capacity() as usize;
        let keys = generate_u64(cap / 16, KeyDistribution::Uniform, 80);
        let run = cap / 64;
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(external_sort(&dev, &keys, run).unwrap(), want);
        assert_eq!(dev.largest_free(), dev.capacity(), "all runs freed");
    }
}
