//! GroupBy (§VI-C): split a table into groups by key, then aggregate.
//!
//! "Sorting is at the heart of modern large-scale GroupBy functions"; the
//! paper's baseline uses quicksort for the highest throughput, and the
//! RIME version replaces the sort with an ordered stream out of memory.
//! The aggregation here is SUM per group (any fold works identically).

use rime_core::{ops, RimeDevice, RimeError};
use rime_core::{Placement, RimePerfConfig};
use rime_kernels::SortAlgorithm;
use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;
use rime_workloads::KvTable;

use crate::util::{pack_u32_key, unpack_u32_key};

/// Aggregated output: one `(group key, sum of payload low bits)` row per
/// group, ordered by key.
pub type Groups = Vec<(u32, u64)>;

fn aggregate_sorted(rows: impl Iterator<Item = (u32, u32)>) -> Groups {
    let mut out: Groups = Vec::new();
    for (key, value) in rows {
        match out.last_mut() {
            Some((k, sum)) if *k == key => *sum += value as u64,
            _ => out.push((key, value as u64)),
        }
    }
    out
}

/// Baseline GroupBy: sort (key, value) records on the CPU, then scan.
pub fn groupby_baseline(table: &KvTable) -> Groups {
    let mut packed: Vec<u64> = table
        .keys
        .iter()
        .zip(&table.values)
        .map(|(&k, &v)| pack_u32_key(k as u32, v as u32))
        .collect();
    packed.sort_unstable();
    aggregate_sorted(packed.into_iter().map(unpack_u32_key))
}

/// RIME GroupBy: store packed records in a region, stream them out in
/// order with repeated `rime_min`, aggregating on the fly.
///
/// # Errors
///
/// Propagates device errors.
pub fn groupby_rime(device: &mut RimeDevice, table: &KvTable) -> Result<Groups, RimeError> {
    if table.is_empty() {
        return Ok(Vec::new());
    }
    let packed: Vec<u64> = table
        .keys
        .iter()
        .zip(&table.values)
        .map(|(&k, &v)| pack_u32_key(k as u32, v as u32))
        .collect();
    let region = device.alloc(packed.len() as u64)?;
    device.write(region, 0, &packed)?;
    let mut stream = ops::sorted::<u64>(device, region)?;
    let mut rows = Vec::with_capacity(packed.len());
    while let Some(key) = stream.try_next()? {
        rows.push(unpack_u32_key(key));
    }
    device.free(region)?;
    Ok(aggregate_sorted(rows.into_iter()))
}

/// Baseline phase decomposition: a quicksort of `rows` records plus a
/// streaming aggregation pass.
pub fn baseline_workload(rows: u64, system: &SystemConfig) -> Workload {
    let mut workload = SortAlgorithm::Quick.workload(rows, system);
    workload.push(Phase::streaming("aggregate scan", rows, 25.0, rows * 16));
    workload
}

/// Baseline throughput in million rows per second (Fig. 16 y-axis).
pub fn baseline_throughput_mkps(rows: u64, system: &SystemConfig) -> f64 {
    baseline_workload(rows, system)
        .execute(system)
        .throughput_mkps(rows)
}

/// RIME GroupBy seconds: bulk-load the records, stream them back in
/// order (aggregation overlaps the stream on the CPU).
pub fn rime_seconds(rows: u64, perf: &RimePerfConfig) -> f64 {
    perf.load_seconds(rows, 8, Placement::Striped)
        + perf.stream_seconds(rows, rows, Placement::Striped)
}

/// RIME throughput in million rows per second.
pub fn rime_throughput_mkps(rows: u64, perf: &RimePerfConfig) -> f64 {
    rows as f64 / rime_seconds(rows, perf) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;

    #[test]
    fn baseline_and_rime_agree() {
        let table = KvTable::grouped(800, 12, 21);
        let mut dev = RimeDevice::new(RimeConfig::small());
        let base = groupby_baseline(&table);
        let rime = groupby_rime(&mut dev, &table).unwrap();
        assert_eq!(base, rime);
        assert!(base.len() <= 12);
    }

    #[test]
    fn aggregation_sums_by_group() {
        let table = KvTable {
            keys: vec![2, 1, 2, 1, 1],
            values: vec![10, 1, 30, 2, 4],
        };
        let got = groupby_baseline(&table);
        assert_eq!(got, vec![(1, 7), (2, 40)]);
    }

    #[test]
    fn empty_table() {
        let table = KvTable {
            keys: vec![],
            values: vec![],
        };
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert!(groupby_rime(&mut dev, &table).unwrap().is_empty());
        assert!(groupby_baseline(&table).is_empty());
    }

    #[test]
    fn fig16_shape_rime_beats_baselines() {
        // Fig. 16: RIME 5.4–23.1× over off-chip; HBM 1.1–2×.
        let rows = 65_000_000u64;
        let off = baseline_throughput_mkps(rows, &SystemConfig::off_chip(16));
        let hbm = baseline_throughput_mkps(rows, &SystemConfig::in_package(16));
        let rime = rime_throughput_mkps(rows, &RimePerfConfig::table1());
        assert!(hbm > off, "hbm {hbm} vs off {off}");
        assert!(rime > 4.0 * hbm, "rime {rime} vs hbm {hbm}");
        let gain = rime / off;
        assert!((4.0..40.0).contains(&gain), "gain {gain}");
    }
}
