//! 1-D k-medians clustering on RIME (§II-A: "Data clustering, an
//! important kernel in data mining applications, depends heavily on sort
//! and search operations"; the paper's own prior work accelerates
//! k-medians with in-situ median computation).
//!
//! Lloyd-style iteration over scalar points:
//!
//! 1. assign each point to its nearest center,
//! 2. recompute each center as the **median** of its cluster — an O(k)
//!    ranking access per cluster on RIME ([`ops::kth_smallest`] at
//!    k = size/2) instead of a sort,
//! 3. repeat until the centers stop moving.
//!
//! Medians (not means) make the inner step exactly the ranking primitive
//! RIME provides, and the result is robust to outliers.

use rime_core::{ops, RimeDevice, RimeError};

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Final cluster centers, ascending.
    pub centers: Vec<u64>,
    /// Per-point cluster assignment (index into `centers`).
    pub assignment: Vec<usize>,
    /// Lloyd iterations executed.
    pub iterations: u32,
}

fn nearest(centers: &[u64], point: u64) -> usize {
    let mut best = 0usize;
    let mut best_d = u64::MAX;
    for (idx, &c) in centers.iter().enumerate() {
        let d = c.abs_diff(point);
        if d < best_d {
            best_d = d;
            best = idx;
        }
    }
    best
}

fn assign(centers: &[u64], points: &[u64]) -> Vec<usize> {
    points.iter().map(|&p| nearest(centers, p)).collect()
}

fn median_cpu(cluster: &mut [u64]) -> Option<u64> {
    if cluster.is_empty() {
        return None;
    }
    let mid = (cluster.len() - 1) / 2;
    let (_, m, _) = cluster.select_nth_unstable(mid);
    Some(*m)
}

/// CPU baseline k-medians (select-nth per cluster).
pub fn kmedians_baseline(points: &[u64], k: usize, max_iters: u32) -> Clustering {
    run(points, k, max_iters, |cluster| {
        Ok::<_, RimeError>(median_cpu(&mut cluster.to_vec()))
    })
    .expect("CPU median cannot fail")
}

/// RIME k-medians: each cluster median is one ranking session
/// (`kth_smallest` at size/2).
///
/// # Errors
///
/// Propagates device errors.
pub fn kmedians_rime(
    device: &mut RimeDevice,
    points: &[u64],
    k: usize,
    max_iters: u32,
) -> Result<Clustering, RimeError> {
    run(points, k, max_iters, |cluster| {
        if cluster.is_empty() {
            return Ok(None);
        }
        let region = device.alloc(cluster.len() as u64)?;
        device.write(region, 0, cluster)?;
        let median = ops::kth_smallest::<u64>(device, region, (cluster.len() as u64 - 1) / 2)?;
        device.free(region)?;
        Ok(median)
    })
}

fn run<E>(
    points: &[u64],
    k: usize,
    max_iters: u32,
    mut median: impl FnMut(&[u64]) -> Result<Option<u64>, E>,
) -> Result<Clustering, E> {
    let k = k.clamp(1, points.len().max(1));
    if points.is_empty() {
        return Ok(Clustering {
            centers: Vec::new(),
            assignment: Vec::new(),
            iterations: 0,
        });
    }
    // Deterministic seeding: k evenly spaced order statistics spanning
    // the full value range (first and last included).
    let mut seeded = points.to_vec();
    seeded.sort_unstable();
    let mut centers: Vec<u64> = (0..k)
        .map(|i| {
            let pos = if k == 1 {
                (points.len() - 1) / 2
            } else {
                i * (points.len() - 1) / (k - 1)
            };
            seeded[pos]
        })
        .collect();
    centers.dedup();

    let mut iterations = 0u32;
    for _ in 0..max_iters {
        iterations += 1;
        let assignment = assign(&centers, points);
        let mut clusters: Vec<Vec<u64>> = vec![Vec::new(); centers.len()];
        for (&p, &a) in points.iter().zip(&assignment) {
            clusters[a].push(p);
        }
        let mut next = Vec::with_capacity(centers.len());
        for (idx, cluster) in clusters.iter().enumerate() {
            match median(cluster)? {
                Some(m) => next.push(m),
                None => next.push(centers[idx]), // empty cluster keeps its center
            }
        }
        next.sort_unstable();
        next.dedup();
        if next == centers {
            break;
        }
        centers = next;
    }
    let assignment = assign(&centers, points);
    Ok(Clustering {
        centers,
        assignment,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rime_core::RimeConfig;

    fn blobs(seed: u64) -> Vec<u64> {
        // Three well-separated 1-D blobs.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for center in [1_000u64, 50_000, 900_000] {
            for _ in 0..60 {
                pts.push(center + rng.gen_range(0..500));
            }
        }
        pts
    }

    #[test]
    fn baseline_and_rime_agree() {
        let points = blobs(1);
        let base = kmedians_baseline(&points, 3, 20);
        let mut dev = RimeDevice::new(RimeConfig::small());
        let rime = kmedians_rime(&mut dev, &points, 3, 20).unwrap();
        assert_eq!(base, rime);
    }

    #[test]
    fn finds_the_three_blobs() {
        let points = blobs(2);
        let c = kmedians_baseline(&points, 3, 20);
        assert_eq!(c.centers.len(), 3);
        assert!(c.centers[0] < 2_000);
        assert!((49_000..52_000).contains(&c.centers[1]));
        assert!(c.centers[2] > 899_000);
        // Every point lands in its own blob's cluster.
        for (&p, &a) in points.iter().zip(&c.assignment) {
            assert!(
                c.centers[a].abs_diff(p) < 5_000,
                "point {p} center {}",
                c.centers[a]
            );
        }
    }

    #[test]
    fn k_one_center_is_global_median() {
        let points = vec![1u64, 2, 3, 4, 100];
        let c = kmedians_baseline(&points, 1, 10);
        assert_eq!(c.centers, vec![3], "median, robust to the outlier");
    }

    #[test]
    fn degenerate_inputs() {
        let empty = kmedians_baseline(&[], 3, 10);
        assert!(empty.centers.is_empty());
        let single = kmedians_baseline(&[7], 3, 10);
        assert_eq!(single.centers, vec![7]);
        assert_eq!(single.assignment, vec![0]);
    }

    #[test]
    fn converges_before_iteration_cap() {
        let points = blobs(3);
        let c = kmedians_baseline(&points, 3, 100);
        assert!(c.iterations < 20, "iterations {}", c.iterations);
    }
}
