//! A strict priority queue backed by a RIME region (§VI-C).
//!
//! Inserts are ordinary memory writes into free slots; the minimum is
//! removed with one `rime_min` access — the structure §VII-A credits for
//! RIME's flat priority-queue throughput ("ordinary memory writes for
//! adding packets to the queue and low complexity accesses for removing
//! packets").
//!
//! Empty slots hold a `u64::MAX` sentinel so the whole region can always
//! be ranked; a popped slot is immediately re-written with the sentinel
//! and recycled by later pushes. Keys are therefore restricted to
//! `< u64::MAX`, which packed (priority, payload) keys satisfy.

use std::collections::VecDeque;

use rime_core::{Region, RimeDevice, RimeError};

/// A min-priority queue of `u64` keys stored in a RIME region.
#[derive(Debug)]
pub struct RimePriorityQueue {
    region: Region,
    /// Region-relative free slots, recycled FIFO so rewrites rotate over
    /// the whole region — cheap wear-leveling for the §VII-C endurance
    /// budget (a LIFO stack would hammer one row).
    free: VecDeque<u64>,
    len: u64,
}

/// Sentinel marking an empty slot (never a valid key).
pub const EMPTY: u64 = u64::MAX;

impl RimePriorityQueue {
    /// Creates a queue of at most `capacity` entries on `device`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn new(device: &RimeDevice, capacity: u64) -> Result<RimePriorityQueue, RimeError> {
        let region = device.alloc(capacity)?;
        device.write(region, 0, &vec![EMPTY; capacity as usize])?;
        Ok(RimePriorityQueue {
            region,
            free: (0..capacity).collect(),
            len: 0,
        })
    }

    /// Number of queued keys.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining capacity.
    pub fn spare(&self) -> u64 {
        self.free.len() as u64
    }

    /// Inserts a key (an ordinary memory write).
    ///
    /// # Errors
    ///
    /// [`RimeError::OutOfBounds`] when the queue is full (reported with
    /// the region length); propagates device errors.
    ///
    /// # Panics
    ///
    /// Panics if `key` is the reserved [`EMPTY`] sentinel.
    pub fn push(&mut self, device: &RimeDevice, key: u64) -> Result<(), RimeError> {
        assert_ne!(key, EMPTY, "u64::MAX is the empty-slot sentinel");
        let slot = self.free.pop_front().ok_or(RimeError::OutOfBounds {
            offset: self.region.len(),
            len: self.region.len(),
        })?;
        device.write(self.region, slot, &[key])?;
        self.len += 1;
        Ok(())
    }

    /// Removes and returns the minimum key (one `rime_min` access), or
    /// `None` when empty.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn pop_min(&mut self, device: &RimeDevice) -> Result<Option<u64>, RimeError> {
        if self.len == 0 {
            return Ok(None);
        }
        // Writes invalidate the ranking session, so (re-)initialize: the
        // hardware's select-vector walk is cheap (Fig. 11).
        device.init_all::<u64>(self.region)?;
        let (slot, key) = device
            .rime_min::<u64>(self.region)?
            .expect("non-empty queue yields a minimum");
        debug_assert_ne!(key, EMPTY, "sentinel must never win while len > 0");
        let local = slot - self.region.start();
        device.write(self.region, local, &[EMPTY])?;
        self.free.push_back(local);
        self.len -= 1;
        Ok(Some(key))
    }

    /// Removes and returns the `k` smallest keys, ascending, in one
    /// batched extraction (§VI-C with the top-k interface): a single
    /// `rime_min_k` access amortizes select-vector setup across all `k`
    /// removals before the freed slots are rewritten with the sentinel.
    ///
    /// Returns fewer than `k` keys when the queue holds fewer.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn pop_min_k(&mut self, device: &RimeDevice, k: u64) -> Result<Vec<u64>, RimeError> {
        let want = k.min(self.len);
        if want == 0 {
            return Ok(Vec::new());
        }
        device.init_all::<u64>(self.region)?;
        // All real keys rank below the sentinel, so the first `want`
        // results are exactly the queued minima.
        let hits = device.rime_min_k::<u64>(self.region, want as usize)?;
        let mut out = Vec::with_capacity(hits.len());
        for (slot, key) in hits {
            debug_assert_ne!(key, EMPTY, "sentinel must never win while len > 0");
            let local = slot - self.region.start();
            device.write(self.region, local, &[EMPTY])?;
            self.free.push_back(local);
            self.len -= 1;
            out.push(key);
        }
        Ok(out)
    }

    /// Releases the underlying region.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn destroy(self, device: &RimeDevice) -> Result<(), RimeError> {
        device.free(self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;

    fn device() -> RimeDevice {
        RimeDevice::new(RimeConfig::small())
    }

    #[test]
    fn pushes_and_pops_in_order() {
        let dev = device();
        let mut pq = RimePriorityQueue::new(&dev, 16).unwrap();
        for k in [5u64, 1, 9, 3] {
            pq.push(&dev, k).unwrap();
        }
        assert_eq!(pq.len(), 4);
        let mut out = Vec::new();
        while let Some(k) = pq.pop_min(&dev).unwrap() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 9]);
        assert!(pq.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let dev = device();
        let mut pq = RimePriorityQueue::new(&dev, 8).unwrap();
        pq.push(&dev, 10).unwrap();
        pq.push(&dev, 4).unwrap();
        assert_eq!(pq.pop_min(&dev).unwrap(), Some(4));
        pq.push(&dev, 2).unwrap();
        pq.push(&dev, 7).unwrap();
        assert_eq!(pq.pop_min(&dev).unwrap(), Some(2));
        assert_eq!(pq.pop_min(&dev).unwrap(), Some(7));
        assert_eq!(pq.pop_min(&dev).unwrap(), Some(10));
        assert_eq!(pq.pop_min(&dev).unwrap(), None);
    }

    #[test]
    fn slots_recycle() {
        let dev = device();
        let mut pq = RimePriorityQueue::new(&dev, 2).unwrap();
        for round in 0..5u64 {
            pq.push(&dev, round + 1).unwrap();
            pq.push(&dev, round + 100).unwrap();
            assert_eq!(pq.pop_min(&dev).unwrap(), Some(round + 1));
            assert_eq!(pq.pop_min(&dev).unwrap(), Some(round + 100));
        }
        assert_eq!(pq.spare(), 2);
    }

    #[test]
    fn overflow_reported() {
        let dev = device();
        let mut pq = RimePriorityQueue::new(&dev, 1).unwrap();
        pq.push(&dev, 1).unwrap();
        assert!(matches!(
            pq.push(&dev, 2),
            Err(RimeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn duplicates_pop_individually() {
        let dev = device();
        let mut pq = RimePriorityQueue::new(&dev, 4).unwrap();
        for _ in 0..3 {
            pq.push(&dev, 7).unwrap();
        }
        assert_eq!(pq.pop_min(&dev).unwrap(), Some(7));
        assert_eq!(pq.pop_min(&dev).unwrap(), Some(7));
        assert_eq!(pq.pop_min(&dev).unwrap(), Some(7));
        assert_eq!(pq.pop_min(&dev).unwrap(), None);
    }

    #[test]
    fn pop_min_k_drains_in_batches() {
        let dev = device();
        let mut pq = RimePriorityQueue::new(&dev, 16).unwrap();
        for k in [50u64, 20, 80, 10, 60, 30] {
            pq.push(&dev, k).unwrap();
        }
        assert_eq!(pq.pop_min_k(&dev, 3).unwrap(), vec![10, 20, 30]);
        assert_eq!(pq.len(), 3);
        // Freed slots recycle for new pushes, and over-asking drains.
        pq.push(&dev, 5).unwrap();
        assert_eq!(pq.pop_min_k(&dev, 99).unwrap(), vec![5, 50, 60, 80]);
        assert!(pq.is_empty());
        assert!(pq.pop_min_k(&dev, 4).unwrap().is_empty());
    }

    #[test]
    fn pop_min_k_matches_repeated_pop_min() {
        let dev = device();
        let mut a = RimePriorityQueue::new(&dev, 32).unwrap();
        let mut b = RimePriorityQueue::new(&dev, 32).unwrap();
        let keys: Vec<u64> = (0..20).map(|i| (i * 2654435761u64) % 1009).collect();
        for &k in &keys {
            a.push(&dev, k).unwrap();
            b.push(&dev, k).unwrap();
        }
        let batched = a.pop_min_k(&dev, 20).unwrap();
        let mut sequential = Vec::new();
        while let Some(k) = b.pop_min(&dev).unwrap() {
            sequential.push(k);
        }
        assert_eq!(batched, sequential);
    }

    #[test]
    fn destroy_frees_region() {
        let dev = device();
        let before = dev.largest_free();
        let pq = RimePriorityQueue::new(&dev, 64).unwrap();
        pq.destroy(&dev).unwrap();
        assert_eq!(dev.largest_free(), before);
    }
}
