//! # rime-apps
//!
//! The six applications of the paper's evaluation (§VI-C), each in two
//! versions — a conventional-CPU baseline and a RIME-accelerated one —
//! plus the analytic models that regenerate Figs. 16–19:
//!
//! | app | figure | module |
//! |-----|--------|--------|
//! | GroupBy | Fig. 16 | [`groupby`] |
//! | MergeJoin | Fig. 16 | [`mergejoin`] |
//! | Kruskal's MST | Fig. 17 | [`kruskal`] |
//! | Prim's MST | Fig. 17 | [`prim`] |
//! | Dijkstra's shortest paths | Fig. 17 | [`dijkstra`] |
//! | A*-Search | Fig. 17 | [`astar`] |
//! | Strict priority queue | Fig. 18 | [`spq`] |
//!
//! The functional versions are cross-validated against each other (and
//! against textbook implementations) on real data; the analytic models
//! reuse the same structural decompositions at paper scale.
//!
//! [`rimepq`] provides the RIME-backed strict priority queue the graph
//! applications and the packet workload share; [`query`] adds the
//! `ORDER BY … LIMIT` / scalar-aggregate / `DISTINCT` operators the
//! paper's introduction motivates, [`external`] sorts datasets larger
//! than the installed RIME capacity, and [`clustering`] is the
//! ranking-based k-medians kernel §II-A motivates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod clustering;
pub mod dijkstra;
pub mod external;
pub mod groupby;
pub mod kruskal;
pub mod mergejoin;
pub mod prim;
pub mod query;
pub mod rimepq;
pub mod spq;
pub mod util;

pub use rimepq::RimePriorityQueue;
