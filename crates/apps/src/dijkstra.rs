//! Dijkstra's single-source shortest paths (§VI-C): "iteratively finds a
//! vertex with the minimum distance from the source node", the
//! priority-queue-bound network-routing workload (IEEE-754 weights).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rime_core::{Placement, RimeDevice, RimeError, RimePerfConfig};
use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;
use rime_workloads::Graph;

use crate::rimepq::RimePriorityQueue;
use crate::util::{pack_f32_key, unpack_f32_key};

/// Shortest distance from `source` to every vertex (`f32::INFINITY` for
/// unreachable ones), via a binary heap with lazy deletion — the
/// baseline implementation.
pub fn dijkstra_baseline(graph: &Graph, source: u32) -> Vec<f32> {
    let mut dist = vec![f32::INFINITY; graph.vertices as usize];
    dist[source as usize] = 0.0;
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    heap.push(Reverse((pack_f32_key(0.0, source), source)));
    while let Some(Reverse((key, v))) = heap.pop() {
        let (d, _) = unpack_f32_key(key);
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for &(n, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[n as usize] {
                dist[n as usize] = nd;
                heap.push(Reverse((pack_f32_key(nd, n), n)));
            }
        }
    }
    dist
}

/// The same algorithm with the frontier kept in a [`RimePriorityQueue`]:
/// decrease-key becomes an ordinary memory write; extract-min one
/// `rime_min` access.
///
/// # Errors
///
/// Propagates device errors.
pub fn dijkstra_rime(
    device: &mut RimeDevice,
    graph: &Graph,
    source: u32,
) -> Result<Vec<f32>, RimeError> {
    let mut dist = vec![f32::INFINITY; graph.vertices as usize];
    dist[source as usize] = 0.0;
    // Lazy deletion bounds live entries by E + 1.
    let capacity = (graph.edge_count() as u64 + 1).max(4);
    let mut pq = RimePriorityQueue::new(device, capacity)?;
    pq.push(device, pack_f32_key(0.0, source))?;
    while let Some(key) = pq.pop_min(device)? {
        let (d, v) = unpack_f32_key(key);
        if d > dist[v as usize] {
            continue;
        }
        for &(n, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[n as usize] {
                dist[n as usize] = nd;
                pq.push(device, pack_f32_key(nd, n))?;
            }
        }
    }
    pq.destroy(device)?;
    Ok(dist)
}

/// Baseline decomposition for a graph of `vertices` and `edges`:
/// adjacency streaming plus heap maintenance whose below-cache depth
/// grows with the frontier.
pub fn baseline_workload(vertices: u64, edges: u64, system: &SystemConfig) -> Workload {
    let heap_levels = ((vertices.max(2) as f64).log2()
        - (system.l2_capacity_keys() as f64 / 64.0).log2().max(0.0))
    .max(1.0);
    let heap_lines = ((edges + vertices) as f64 * heap_levels) as u64;
    Workload::new(vec![
        Phase::streaming("adjacency scan", edges, 30.0, edges * 8),
        Phase::dependent("heap ops", edges + vertices, 80.0, heap_lines * 64),
    ])
}

/// Baseline throughput in million edges per second (Fig. 17's y-axis,
/// processed elements per second).
pub fn baseline_throughput_mkps(vertices: u64, edges: u64, system: &SystemConfig) -> f64 {
    baseline_workload(vertices, edges, system)
        .execute(system)
        .throughput_mkps(edges)
}

/// RIME seconds: adjacency streaming stays on the conventional memory;
/// pushes are ordinary writes; `vertices + stale` extract-mins stream at
/// the device rate.
pub fn rime_seconds(
    vertices: u64,
    edges: u64,
    perf: &RimePerfConfig,
    system: &SystemConfig,
) -> f64 {
    let scan = Workload::new(vec![Phase::streaming(
        "adjacency scan",
        edges,
        30.0,
        edges * 8,
    )])
    .execute(system)
    .total_seconds();
    // Lazy deletion pops ≈ pushes ≈ E in the worst case; live frontier
    // work is the dominant V extractions plus stale skips.
    let pops = vertices + edges / 4;
    let pq = perf.stream_seconds(edges.max(1), pops, Placement::Striped)
        + perf.load_seconds(edges, 8, Placement::Striped);
    scan + pq
}

/// RIME throughput in million edges per second.
pub fn rime_throughput_mkps(
    vertices: u64,
    edges: u64,
    perf: &RimePerfConfig,
    system: &SystemConfig,
) -> f64 {
    edges as f64 / rime_seconds(vertices, edges, perf, system) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;
    use rime_workloads::WeightedEdge;

    #[test]
    fn baseline_matches_known_graph() {
        let graph = Graph::from_edges(
            4,
            vec![
                WeightedEdge { u: 0, v: 1, w: 1.0 },
                WeightedEdge { u: 1, v: 2, w: 2.0 },
                WeightedEdge { u: 0, v: 2, w: 5.0 },
                WeightedEdge { u: 2, v: 3, w: 1.0 },
            ],
        );
        let d = dijkstra_baseline(&graph, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 4.0]);
    }

    #[test]
    fn baseline_and_rime_agree() {
        let graph = Graph::random_connected(80, 400, 51);
        let mut dev = RimeDevice::new(RimeConfig::small());
        let base = dijkstra_baseline(&graph, 0);
        let rime = dijkstra_rime(&mut dev, &graph, 0).unwrap();
        assert_eq!(base, rime);
        assert!(base.iter().all(|d| d.is_finite()), "connected graph");
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let graph = Graph::from_edges(3, vec![WeightedEdge { u: 0, v: 1, w: 1.0 }]);
        let d = dijkstra_baseline(&graph, 0);
        assert!(d[2].is_infinite());
        let mut dev = RimeDevice::new(RimeConfig::small());
        let r = dijkstra_rime(&mut dev, &graph, 0).unwrap();
        assert!(r[2].is_infinite());
    }

    #[test]
    fn fig17_shape_dijkstra() {
        // Fig. 17: HBM 1.2–2.2×, RIME 7.5–17.2× over off-chip.
        let (v, e) = (8_000_000u64, 65_000_000u64);
        let off_sys = SystemConfig::off_chip(16);
        let off = baseline_throughput_mkps(v, e, &off_sys);
        let hbm = baseline_throughput_mkps(v, e, &SystemConfig::in_package(16));
        let rime = rime_throughput_mkps(v, e, &RimePerfConfig::table1(), &off_sys);
        let hbm_gain = hbm / off;
        let rime_gain = rime / off;
        assert!((1.0..3.0).contains(&hbm_gain), "hbm {hbm_gain}");
        assert!((4.0..30.0).contains(&rime_gain), "rime {rime_gain}");
    }
}
