//! Database query operators built on ranking (§II-A): `ORDER BY … LIMIT`
//! (top-k), scalar aggregates (MIN/MAX without a scan), and duplicate
//! removal — the operations the paper's introduction motivates ("query
//! retrieval … OrderBy clause", "index creation, user-requested output
//! sorting, ranking, duplicate removal").
//!
//! These compose the `rime_min`/`rime_max` primitive exactly like the
//! Fig. 12 snippet: a `LIMIT k` query costs k accesses — bandwidth O(k),
//! not O(N log N).

use rime_core::{ops, RimeDevice, RimeError, SortableBits};

use crate::util::{pack_u32_key, unpack_u32_key};
use rime_workloads::KvTable;

/// Sort order of an `ORDER BY` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Smallest keys first.
    Ascending,
    /// Largest keys first.
    Descending,
}

/// `SELECT key, value FROM t ORDER BY key <order> LIMIT <k>` — the top-k
/// rows of a table, served straight out of the memory in O(k) accesses.
///
/// # Errors
///
/// Propagates device errors.
pub fn order_by_limit(
    device: &mut RimeDevice,
    table: &KvTable,
    order: Order,
    k: usize,
) -> Result<Vec<(u32, u32)>, RimeError> {
    if table.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let packed: Vec<u64> = table
        .keys
        .iter()
        .zip(&table.values)
        .map(|(&key, &v)| pack_u32_key(key as u32, v as u32))
        .collect();
    let region = device.alloc(packed.len() as u64)?;
    device.write(region, 0, &packed)?;
    device.init_all::<u64>(region)?;
    let mut rows = Vec::with_capacity(k.min(packed.len()));
    for _ in 0..k {
        let next = match order {
            Order::Ascending => device.rime_min::<u64>(region)?,
            Order::Descending => device.rime_max::<u64>(region)?,
        };
        match next {
            Some((_, key)) => rows.push(unpack_u32_key(key)),
            None => break,
        }
    }
    device.free(region)?;
    Ok(rows)
}

/// Scalar aggregate `SELECT MIN(key), MAX(key) FROM t`: two ranking
/// accesses, O(1) bandwidth.
///
/// # Errors
///
/// Propagates device errors.
pub fn min_max<T: SortableBits>(
    device: &mut RimeDevice,
    keys: &[T],
) -> Result<Option<(T, T)>, RimeError> {
    if keys.is_empty() {
        return Ok(None);
    }
    let region = device.alloc(keys.len() as u64)?;
    device.write(region, 0, keys)?;
    device.init_all::<T>(region)?;
    let min = device.rime_min::<T>(region)?.expect("non-empty").1;
    // Direction switch re-initializes internally.
    let max = device.rime_max::<T>(region)?.expect("non-empty").1;
    device.free(region)?;
    Ok(Some((min, max)))
}

/// `SELECT DISTINCT key FROM t ORDER BY key`: stream the order out and
/// drop equal neighbors — duplicate removal in one pass.
///
/// # Errors
///
/// Propagates device errors.
pub fn distinct_sorted(device: &mut RimeDevice, keys: &[u64]) -> Result<Vec<u64>, RimeError> {
    if keys.is_empty() {
        return Ok(Vec::new());
    }
    let region = device.alloc(keys.len() as u64)?;
    device.write(region, 0, keys)?;
    let mut stream = ops::sorted::<u64>(device, region)?;
    let mut out: Vec<u64> = Vec::new();
    while let Some(k) = stream.try_next()? {
        if out.last() != Some(&k) {
            out.push(k);
        }
    }
    device.free(region)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;

    fn device() -> RimeDevice {
        RimeDevice::new(RimeConfig::small())
    }

    fn table() -> KvTable {
        KvTable {
            keys: vec![30, 10, 20, 10, 40],
            values: vec![300, 100, 200, 101, 400],
        }
    }

    #[test]
    fn order_by_limit_ascending() {
        let mut dev = device();
        let rows = order_by_limit(&mut dev, &table(), Order::Ascending, 3).unwrap();
        assert_eq!(rows, vec![(10, 100), (10, 101), (20, 200)]);
    }

    #[test]
    fn order_by_limit_descending() {
        let mut dev = device();
        let rows = order_by_limit(&mut dev, &table(), Order::Descending, 2).unwrap();
        assert_eq!(rows, vec![(40, 400), (30, 300)]);
    }

    #[test]
    fn limit_larger_than_table_returns_all() {
        let mut dev = device();
        let rows = order_by_limit(&mut dev, &table(), Order::Ascending, 100).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn limit_zero_and_empty_table() {
        let mut dev = device();
        assert!(order_by_limit(&mut dev, &table(), Order::Ascending, 0)
            .unwrap()
            .is_empty());
        let empty = KvTable {
            keys: vec![],
            values: vec![],
        };
        assert!(order_by_limit(&mut dev, &empty, Order::Ascending, 5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scalar_min_max() {
        let mut dev = device();
        assert_eq!(
            min_max::<i32>(&mut dev, &[3, -7, 12, 0]).unwrap(),
            Some((-7, 12))
        );
        assert_eq!(
            min_max::<f32>(&mut dev, &[1.5, -2.25]).unwrap(),
            Some((-2.25, 1.5))
        );
        assert_eq!(min_max::<u32>(&mut dev, &[]).unwrap(), None);
    }

    #[test]
    fn distinct_removes_duplicates_in_order() {
        let mut dev = device();
        let got = distinct_sorted(&mut dev, &[5, 2, 5, 2, 2, 9, 5]).unwrap();
        assert_eq!(got, vec![2, 5, 9]);
        assert_eq!(distinct_sorted(&mut dev, &[]).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn repeated_queries_reuse_the_device() {
        let mut dev = device();
        for _ in 0..5 {
            let rows = order_by_limit(&mut dev, &table(), Order::Ascending, 1).unwrap();
            assert_eq!(rows, vec![(10, 100)]);
        }
        assert_eq!(dev.largest_free(), dev.capacity(), "no leaked regions");
    }
}
