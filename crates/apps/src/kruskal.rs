//! Kruskal's minimum spanning tree (§VI-C): sort all edges by weight,
//! then grow the MST with a union-find — the paper's canonical
//! sort-dominated graph workload (IEEE-754 weights).

use rime_core::{ops, Placement, RimeDevice, RimeError, RimePerfConfig};
use rime_kernels::SortAlgorithm;
use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;
use rime_workloads::Graph;

use crate::util::{pack_f32_key, unpack_f32_key};

/// Union-find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: u32) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n as usize],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Unites the sets of `a` and `b`; returns `false` if already united.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

fn mst_from_sorted(graph: &Graph, order: impl Iterator<Item = usize>) -> (f64, usize) {
    let mut uf = UnionFind::new(graph.vertices);
    let mut weight = 0.0f64;
    let mut picked = 0usize;
    for edge_idx in order {
        let e = graph.edges[edge_idx];
        if uf.union(e.u, e.v) {
            weight += e.w as f64;
            picked += 1;
            if picked as u32 == graph.vertices - 1 {
                break;
            }
        }
    }
    (weight, picked)
}

/// Baseline Kruskal: CPU sort of the edge list, then union-find.
/// Returns (MST weight, MST edge count).
pub fn kruskal_baseline(graph: &Graph) -> (f64, usize) {
    let mut order: Vec<usize> = (0..graph.edge_count()).collect();
    order.sort_unstable_by(|&a, &b| graph.edges[a].w.total_cmp(&graph.edges[b].w));
    mst_from_sorted(graph, order.into_iter())
}

/// RIME Kruskal: edges stored as packed `(weight, index)` keys; the sort
/// is an ordered stream out of memory.
///
/// # Errors
///
/// Propagates device errors.
pub fn kruskal_rime(device: &mut RimeDevice, graph: &Graph) -> Result<(f64, usize), RimeError> {
    let packed: Vec<u64> = graph
        .edges
        .iter()
        .enumerate()
        .map(|(idx, e)| pack_f32_key(e.w, idx as u32))
        .collect();
    let region = device.alloc(packed.len() as u64)?;
    device.write(region, 0, &packed)?;
    let sorted = ops::sort_into_vec::<u64>(device, region)?;
    device.free(region)?;
    Ok(mst_from_sorted(
        graph,
        sorted.into_iter().map(|k| unpack_f32_key(k).1 as usize),
    ))
}

/// Baseline decomposition: quicksort of `edges` keys plus a union-find
/// pass with dependent parent-array accesses.
pub fn baseline_workload(edges: u64, system: &SystemConfig) -> Workload {
    let mut workload = SortAlgorithm::Quick.workload(edges, system);
    // Each union-find operation chases ~2 parent pointers; the parent
    // array (4 B/vertex) misses for large graphs.
    workload.push(Phase::dependent("union-find", edges, 60.0, edges * 8));
    workload
}

/// Baseline throughput in million edges per second (Fig. 17 y-axis).
pub fn baseline_throughput_mkps(edges: u64, system: &SystemConfig) -> f64 {
    baseline_workload(edges, system)
        .execute(system)
        .throughput_mkps(edges)
}

/// RIME seconds: load packed edges, stream them in order, union-find on
/// the CPU (overlapped with the stream; charged as the dependent phase).
pub fn rime_seconds(edges: u64, perf: &RimePerfConfig, system: &SystemConfig) -> f64 {
    let stream = perf.load_seconds(edges, 8, Placement::Striped)
        + perf.stream_seconds(edges, edges, Placement::Striped);
    let uf = Workload::new(vec![Phase::dependent("union-find", edges, 60.0, edges * 8)])
        .execute(system)
        .total_seconds();
    stream.max(uf)
}

/// RIME throughput in million edges per second.
pub fn rime_throughput_mkps(edges: u64, perf: &RimePerfConfig, system: &SystemConfig) -> f64 {
    edges as f64 / rime_seconds(edges, perf, system) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_ne!(uf.find(0), uf.find(2));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
    }

    #[test]
    fn baseline_and_rime_agree() {
        let graph = Graph::random_connected(200, 1_500, 41);
        let mut dev = RimeDevice::new(RimeConfig::small());
        let (wb, nb) = kruskal_baseline(&graph);
        let (wr, nr) = kruskal_rime(&mut dev, &graph).unwrap();
        assert_eq!(nb, 199);
        assert_eq!(nb, nr);
        assert!((wb - wr).abs() < 1e-6 * wb.max(1.0), "{wb} vs {wr}");
    }

    #[test]
    fn mst_weight_is_minimal_on_known_graph() {
        use rime_workloads::WeightedEdge;
        // Triangle 0-1 (1.0), 1-2 (2.0), 0-2 (10.0): MST = 3.0.
        let graph = Graph::from_edges(
            3,
            vec![
                WeightedEdge { u: 0, v: 1, w: 1.0 },
                WeightedEdge { u: 1, v: 2, w: 2.0 },
                WeightedEdge {
                    u: 0,
                    v: 2,
                    w: 10.0,
                },
            ],
        );
        let (w, n) = kruskal_baseline(&graph);
        assert_eq!(n, 2);
        assert!((w - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig17_shape_kruskal() {
        // Fig. 17: HBM 2.8–3.7×, RIME 8.5–20.9× over off-chip.
        let edges = 65_000_000u64;
        let off_sys = SystemConfig::off_chip(16);
        let hbm_sys = SystemConfig::in_package(16);
        let off = baseline_throughput_mkps(edges, &off_sys);
        let hbm = baseline_throughput_mkps(edges, &hbm_sys);
        let rime = rime_throughput_mkps(edges, &RimePerfConfig::table1(), &off_sys);
        assert!(hbm / off > 1.3, "hbm gain {}", hbm / off);
        let gain = rime / off;
        assert!((5.0..40.0).contains(&gain), "rime gain {gain}");
    }
}
