//! Strict priority queuing (§VI-C, Fig. 18): a packet-processing
//! workload where adds and removes interleave at ratio R; every remove
//! takes the minimum-key packet. Baselines pay heap maintenance on both
//! operations; RIME adds with ordinary writes and removes with one
//! ranking access, which is why its throughput is flat across buffer
//! sizes and ratios (§VII-A).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rime_core::{Placement, RimeDevice, RimeError, RimePerfConfig};
use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;
use rime_workloads::{PacketEvent, PacketStream};

use crate::rimepq::RimePriorityQueue;

/// Runs the trace on a binary heap; returns the removed keys in order.
pub fn spq_baseline(stream: &PacketStream) -> Vec<u64> {
    let mut heap: BinaryHeap<Reverse<u64>> = stream.initial.iter().map(|&k| Reverse(k)).collect();
    let mut removed = Vec::with_capacity(stream.removes());
    for event in &stream.events {
        match event {
            PacketEvent::Add(k) => heap.push(Reverse(*k)),
            PacketEvent::Remove => {
                let Reverse(k) = heap.pop().expect("trace never underflows");
                removed.push(k);
            }
        }
    }
    removed
}

/// Runs the trace on a [`RimePriorityQueue`]; returns the removed keys.
///
/// Consecutive removes with no interleaved add are served by one batched
/// `pop_min_k` access, which amortizes select-vector setup across the
/// whole run and matches the per-remove semantics exactly (the queue is
/// untouched between the removes of a run).
///
/// # Errors
///
/// Propagates device errors.
pub fn spq_rime(device: &RimeDevice, stream: &PacketStream) -> Result<Vec<u64>, RimeError> {
    let capacity = (stream.initial.len() + stream.adds()) as u64 + 1;
    let mut pq = RimePriorityQueue::new(device, capacity.max(4))?;
    for &k in &stream.initial {
        pq.push(device, k)?;
    }
    let mut removed = Vec::with_capacity(stream.removes());
    let events = &stream.events;
    let mut idx = 0;
    while idx < events.len() {
        match events[idx] {
            PacketEvent::Add(k) => {
                pq.push(device, k)?;
                idx += 1;
            }
            PacketEvent::Remove => {
                let run = events[idx..]
                    .iter()
                    .take_while(|e| matches!(e, PacketEvent::Remove))
                    .count();
                let batch = pq.pop_min_k(device, run as u64)?;
                assert_eq!(batch.len(), run, "trace never underflows");
                removed.extend(batch);
                idx += run;
            }
        }
    }
    pq.destroy(device)?;
    Ok(removed)
}

/// Baseline decomposition: every remove does `1 + R` heap operations,
/// each touching the below-cache heap levels of a `buffer_size` heap.
pub fn baseline_workload(
    buffer_size: u64,
    removes: u64,
    ratio: u32,
    system: &SystemConfig,
) -> Workload {
    let total_levels = (buffer_size.max(2) as f64).log2();
    let cached_levels = (system.l2_capacity_keys() as f64 / 4.0).log2();
    let below = (total_levels - cached_levels).max(0.5);
    let ops = removes * (1 + ratio as u64);
    // §VI-C: the workload uses two threads (one adding, one removing), so
    // only 2 of the modelled cores do heap work; the per-op cost is folded
    // into the cycle count (≈300 serial cycles per heap op × 16/2).
    Workload::new(vec![Phase::dependent(
        "heap maintenance",
        ops,
        2400.0,
        (ops as f64 * below) as u64 * 64,
    )])
}

/// Baseline remove-throughput in million packets per second (Fig. 18).
pub fn baseline_throughput_mkps(
    buffer_size: u64,
    removes: u64,
    ratio: u32,
    system: &SystemConfig,
) -> f64 {
    baseline_workload(buffer_size, removes, ratio, system)
        .execute(system)
        .throughput_mkps(removes)
}

/// RIME remove-throughput (million packets per second): adds are plain
/// DDR4 writes (cheap, off the critical path with two threads); removes
/// stream at the device extraction rate regardless of buffer size or R.
pub fn rime_throughput_mkps(
    buffer_size: u64,
    removes: u64,
    ratio: u32,
    perf: &RimePerfConfig,
) -> f64 {
    let adds = removes * ratio as u64;
    let write_secs = perf.load_seconds(adds, 8, Placement::Striped);
    let extract_secs = perf.stream_seconds(buffer_size.max(1), removes, Placement::Striped);
    // Two threads (§VI-C): adds overlap removes; the slower side binds.
    removes as f64 / extract_secs.max(write_secs) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;

    #[test]
    fn baseline_and_rime_agree() {
        let stream = PacketStream::generate(64, 40, 2, 81);
        let dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(spq_baseline(&stream), spq_rime(&dev, &stream).unwrap());
    }

    #[test]
    fn removes_come_out_ascending_per_window() {
        // With R=1 and a pre-loaded buffer, each remove yields the current
        // global minimum, so removed keys trend upward.
        let stream = PacketStream::generate(256, 64, 1, 82);
        let removed = spq_baseline(&stream);
        assert_eq!(removed.len(), 64);
        let mut sorted = removed.clone();
        sorted.sort_unstable();
        // Not strictly sorted (new adds can be smaller), but the first
        // removal is the initial minimum.
        assert!(removed[0] <= *stream.initial.iter().min().unwrap());
        let _ = sorted;
    }

    #[test]
    fn fig18_shape_baseline_degrades_rime_flat() {
        // Fig. 18: baselines fall with buffer size and R; RIME stays flat
        // and 6.1–43.6× ahead.
        let sys = SystemConfig::off_chip(16);
        let perf = RimePerfConfig::table1();
        let removes = 1_000_000u64;

        let base_small = baseline_throughput_mkps(500_000, removes, 1, &sys);
        let base_big = baseline_throughput_mkps(65_000_000, removes, 1, &sys);
        assert!(base_big < base_small, "{base_big} vs {base_small}");

        let base_r1 = baseline_throughput_mkps(65_000_000, removes, 1, &sys);
        let base_r5 = baseline_throughput_mkps(65_000_000, removes, 5, &sys);
        assert!(base_r5 < base_r1);

        let rime_small = rime_throughput_mkps(500_000, removes, 1, &perf);
        let rime_big = rime_throughput_mkps(65_000_000, removes, 5, &perf);
        assert!(
            (rime_small - rime_big).abs() / rime_small < 0.15,
            "{rime_small} vs {rime_big}"
        );

        let gain = rime_big / base_r5;
        assert!(gain > 5.0, "gain {gain}");
    }
}
