//! Prim's minimum spanning tree (§VI-C): grow the tree from a vertex,
//! repeatedly taking the cheapest crossing edge — like Dijkstra but
//! producing an MST rather than a shortest-path tree.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rime_core::{Placement, RimeDevice, RimeError, RimePerfConfig};
use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;
use rime_workloads::Graph;

use crate::rimepq::RimePriorityQueue;
use crate::util::{pack_f32_key, unpack_f32_key};

/// Baseline lazy Prim with a binary heap. Returns (MST weight, edges).
pub fn prim_baseline(graph: &Graph) -> (f64, usize) {
    let mut in_tree = vec![false; graph.vertices as usize];
    let mut heap: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut weight = 0.0f64;
    let mut picked = 0usize;
    in_tree[0] = true;
    for &(n, w) in graph.neighbors(0) {
        heap.push(Reverse(pack_f32_key(w, n)));
    }
    while let Some(Reverse(key)) = heap.pop() {
        let (w, v) = unpack_f32_key(key);
        if in_tree[v as usize] {
            continue;
        }
        in_tree[v as usize] = true;
        weight += w as f64;
        picked += 1;
        for &(n, nw) in graph.neighbors(v) {
            if !in_tree[n as usize] {
                heap.push(Reverse(pack_f32_key(nw, n)));
            }
        }
    }
    (weight, picked)
}

/// RIME Prim: the crossing-edge frontier lives in a [`RimePriorityQueue`].
///
/// # Errors
///
/// Propagates device errors.
pub fn prim_rime(device: &mut RimeDevice, graph: &Graph) -> Result<(f64, usize), RimeError> {
    let mut in_tree = vec![false; graph.vertices as usize];
    let capacity = (2 * graph.edge_count() as u64 + 1).max(4);
    let mut pq = RimePriorityQueue::new(device, capacity)?;
    let mut weight = 0.0f64;
    let mut picked = 0usize;
    in_tree[0] = true;
    for &(n, w) in graph.neighbors(0) {
        pq.push(device, pack_f32_key(w, n))?;
    }
    while let Some(key) = pq.pop_min(device)? {
        let (w, v) = unpack_f32_key(key);
        if in_tree[v as usize] {
            continue;
        }
        in_tree[v as usize] = true;
        weight += w as f64;
        picked += 1;
        for &(n, nw) in graph.neighbors(v) {
            if !in_tree[n as usize] {
                pq.push(device, pack_f32_key(nw, n))?;
            }
        }
    }
    pq.destroy(device)?;
    Ok((weight, picked))
}

/// Baseline decomposition: adjacency streaming plus heap maintenance
/// (same structure as Dijkstra; Prim touches each edge up to twice).
pub fn baseline_workload(vertices: u64, edges: u64, system: &SystemConfig) -> Workload {
    let heap_levels = ((vertices.max(2) as f64).log2()
        - (system.l2_capacity_keys() as f64 / 64.0).log2().max(0.0))
    .max(1.0);
    let ops = 2 * edges + vertices;
    Workload::new(vec![
        Phase::streaming("adjacency scan", 2 * edges, 25.0, 2 * edges * 8),
        Phase::dependent(
            "heap ops",
            ops,
            70.0,
            (ops as f64 * heap_levels) as u64 * 64,
        ),
    ])
}

/// Baseline throughput in million edges per second.
pub fn baseline_throughput_mkps(vertices: u64, edges: u64, system: &SystemConfig) -> f64 {
    baseline_workload(vertices, edges, system)
        .execute(system)
        .throughput_mkps(edges)
}

/// RIME seconds (structure as in [`crate::dijkstra::rime_seconds`]).
pub fn rime_seconds(
    vertices: u64,
    edges: u64,
    perf: &RimePerfConfig,
    system: &SystemConfig,
) -> f64 {
    let scan = Workload::new(vec![Phase::streaming(
        "adjacency scan",
        2 * edges,
        25.0,
        2 * edges * 8,
    )])
    .execute(system)
    .total_seconds();
    let pops = vertices + edges / 3;
    scan + perf.load_seconds(2 * edges, 8, Placement::Striped)
        + perf.stream_seconds(edges.max(1), pops, Placement::Striped)
}

/// RIME throughput in million edges per second.
pub fn rime_throughput_mkps(
    vertices: u64,
    edges: u64,
    perf: &RimePerfConfig,
    system: &SystemConfig,
) -> f64 {
    edges as f64 / rime_seconds(vertices, edges, perf, system) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal_baseline;
    use rime_core::RimeConfig;

    #[test]
    fn prim_matches_kruskal_weight() {
        // Two MST algorithms must agree on total weight.
        let graph = Graph::random_connected(150, 900, 61);
        let (kw, kn) = kruskal_baseline(&graph);
        let (pw, pn) = prim_baseline(&graph);
        assert_eq!(kn, pn);
        assert!((kw - pw).abs() < 1e-3 * kw.max(1.0), "{kw} vs {pw}");
    }

    #[test]
    fn baseline_and_rime_agree() {
        let graph = Graph::random_connected(60, 240, 62);
        let mut dev = RimeDevice::new(RimeConfig::small());
        let (bw, bn) = prim_baseline(&graph);
        let (rw, rn) = prim_rime(&mut dev, &graph).unwrap();
        assert_eq!(bn, rn);
        assert!((bw - rw).abs() < 1e-6 * bw.max(1.0));
    }

    #[test]
    fn spanning_tree_covers_graph() {
        let graph = Graph::random_connected(100, 500, 63);
        let (_, n) = prim_baseline(&graph);
        assert_eq!(n, 99);
    }

    #[test]
    fn fig17_shape_prim() {
        // Fig. 17: HBM 2–4.4×, RIME 6.3–14.3× over off-chip.
        let (v, e) = (8_000_000u64, 65_000_000u64);
        let off_sys = SystemConfig::off_chip(16);
        let off = baseline_throughput_mkps(v, e, &off_sys);
        let rime = rime_throughput_mkps(v, e, &RimePerfConfig::table1(), &off_sys);
        let gain = rime / off;
        assert!((3.0..30.0).contains(&gain), "rime gain {gain}");
    }
}
