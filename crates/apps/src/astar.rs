//! A*-Search over an obstacle grid (§VI-C): shortest path from source to
//! destination through non-obstacle cells, with the Manhattan-distance
//! heuristic (admissible on a 4-connected unit-cost grid).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rime_core::{Placement, RimeDevice, RimeError, RimePerfConfig};
use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;
use rime_workloads::ObstacleGrid;

use crate::rimepq::RimePriorityQueue;
use crate::util::{pack_u32_key, unpack_u32_key};

fn manhattan(a: (u32, u32), b: (u32, u32)) -> u32 {
    a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
}

fn cell_id(grid: &ObstacleGrid, x: u32, y: u32) -> u32 {
    y * grid.width() + x
}

/// Baseline A*: binary-heap open set. Returns the shortest path length
/// in steps, or `None` when the destination is unreachable.
pub fn astar_baseline(grid: &ObstacleGrid) -> Option<u32> {
    let dest = grid.destination();
    let mut g = vec![u32::MAX; grid.cells()];
    let mut open: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    g[0] = 0;
    open.push(Reverse(pack_u32_key(manhattan((0, 0), dest), 0)));
    while let Some(Reverse(key)) = open.pop() {
        let (_, id) = unpack_u32_key(key);
        let (x, y) = (id % grid.width(), id / grid.width());
        let gv = g[id as usize];
        if (x, y) == dest {
            return Some(gv);
        }
        for (nx, ny) in grid.neighbors(x, y) {
            let nid = cell_id(grid, nx, ny);
            let ng = gv + 1;
            if ng < g[nid as usize] {
                g[nid as usize] = ng;
                let f = ng + manhattan((nx, ny), dest);
                open.push(Reverse(pack_u32_key(f, nid)));
            }
        }
    }
    None
}

/// RIME A*: the open set lives in a [`RimePriorityQueue`].
///
/// # Errors
///
/// Propagates device errors.
pub fn astar_rime(device: &mut RimeDevice, grid: &ObstacleGrid) -> Result<Option<u32>, RimeError> {
    let dest = grid.destination();
    let mut g = vec![u32::MAX; grid.cells()];
    let capacity = (4 * grid.cells() as u64 + 1).max(4);
    let mut open = RimePriorityQueue::new(device, capacity)?;
    g[0] = 0;
    open.push(device, pack_u32_key(manhattan((0, 0), dest), 0))?;
    let mut result = None;
    while let Some(key) = open.pop_min(device)? {
        let (_, id) = unpack_u32_key(key);
        let (x, y) = (id % grid.width(), id / grid.width());
        let gv = g[id as usize];
        if (x, y) == dest {
            result = Some(gv);
            break;
        }
        for (nx, ny) in grid.neighbors(x, y) {
            let nid = cell_id(grid, nx, ny);
            let ng = gv + 1;
            if ng < g[nid as usize] {
                g[nid as usize] = ng;
                let f = ng + manhattan((nx, ny), dest);
                open.push(device, pack_u32_key(f, nid))?;
            }
        }
    }
    open.destroy(device)?;
    Ok(result)
}

/// Baseline decomposition for a grid of `cells`: neighbor probes (grid
/// reads with poor locality) plus open-set heap maintenance. Roughly
/// 60 % of cells are expanded on the evaluated densities.
pub fn baseline_workload(cells: u64, system: &SystemConfig) -> Workload {
    let expansions = 3 * cells / 5;
    let heap_levels = ((expansions.max(2) as f64).log2()
        - (system.l2_capacity_keys() as f64 / 16.0).log2())
    .max(1.0);
    Workload::new(vec![
        Phase::dependent("neighbor probes", 4 * expansions, 20.0, 4 * expansions * 8),
        Phase::dependent(
            "open-set heap",
            2 * expansions,
            50.0,
            (2 * expansions) as f64 as u64 * heap_levels as u64 * 64,
        ),
    ])
}

/// Baseline throughput in million cells per second (Fig. 17's y-axis).
pub fn baseline_throughput_mkps(cells: u64, system: &SystemConfig) -> f64 {
    baseline_workload(cells, system)
        .execute(system)
        .throughput_mkps(cells)
}

/// RIME seconds: neighbor probes stay on conventional memory; the open
/// set's extract-mins run at the device stream rate.
pub fn rime_seconds(cells: u64, perf: &RimePerfConfig, system: &SystemConfig) -> f64 {
    let expansions = 3 * cells / 5;
    let probes = Workload::new(vec![Phase::dependent(
        "neighbor probes",
        4 * expansions,
        20.0,
        4 * expansions * 8,
    )])
    .execute(system)
    .total_seconds();
    probes
        + perf.load_seconds(2 * expansions, 8, Placement::Striped)
        + perf.stream_seconds(expansions.max(1), expansions, Placement::Striped)
}

/// RIME throughput in million cells per second.
pub fn rime_throughput_mkps(cells: u64, perf: &RimePerfConfig, system: &SystemConfig) -> f64 {
    cells as f64 / rime_seconds(cells, perf, system) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;

    #[test]
    fn open_grid_path_is_manhattan() {
        let grid = ObstacleGrid::random(8, 8, 0.0, 71);
        assert_eq!(astar_baseline(&grid), Some(14));
    }

    #[test]
    fn baseline_and_rime_agree() {
        for seed in 71..75 {
            let grid = ObstacleGrid::random(12, 12, 0.25, seed);
            let mut dev = RimeDevice::new(RimeConfig::small());
            assert_eq!(
                astar_baseline(&grid),
                astar_rime(&mut dev, &grid).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn blocked_grid_unreachable() {
        // Density 1.0 blocks everything except source/destination.
        let grid = ObstacleGrid::random(6, 6, 1.0, 72);
        assert_eq!(astar_baseline(&grid), None);
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(astar_rime(&mut dev, &grid).unwrap(), None);
    }

    #[test]
    fn fig17_shape_astar() {
        // Fig. 17: HBM only 1–1.1×, RIME 2.3–23× over off-chip.
        let cells = 65_000_000u64;
        let off_sys = SystemConfig::off_chip(16);
        let off = baseline_throughput_mkps(cells, &off_sys);
        let hbm = baseline_throughput_mkps(cells, &SystemConfig::in_package(16));
        let rime = rime_throughput_mkps(cells, &RimePerfConfig::table1(), &off_sys);
        let hbm_gain = hbm / off;
        assert!((0.95..1.5).contains(&hbm_gain), "hbm {hbm_gain}");
        let rime_gain = rime / off;
        assert!((1.5..25.0).contains(&rime_gain), "rime {rime_gain}");
    }
}
