//! Property-based tests for the workload generators: structural
//! invariants must hold for every parameterization.

use proptest::prelude::*;
use rime_workloads::keys::{generate_u64, generate_zipf, KeyDistribution};
use rime_workloads::{Graph, JoinTables, KvTable, ObstacleGrid, PacketEvent, PacketStream};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn graphs_are_always_connected(v in 2u32..120, extra in 0usize..400, seed in 0u64..100) {
        let g = Graph::random_connected(v, extra, seed);
        // BFS from 0 reaches everything.
        let mut seen = vec![false; v as usize];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1u32;
        while let Some(x) = stack.pop() {
            for &(n, _) in g.neighbors(x) {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        prop_assert_eq!(count, v);
        prop_assert!(g.edge_count() >= (v as usize).saturating_sub(1));
        prop_assert!(g.edges.iter().all(|e| e.u != e.v && e.w > 0.0));
    }

    #[test]
    fn grids_have_passable_endpoints(w in 1u32..40, h in 1u32..40, d in 0.0f64..1.0, seed in 0u64..50) {
        let g = ObstacleGrid::random(w, h, d, seed);
        prop_assert!(g.is_passable(0, 0));
        prop_assert!(g.is_passable(w as i64 - 1, h as i64 - 1));
        prop_assert_eq!(g.cells(), (w * h) as usize);
        // Neighbors are always in bounds and passable.
        for (x, y) in [(0u32, 0u32), (w - 1, h - 1)] {
            for (nx, ny) in g.neighbors(x, y) {
                prop_assert!(g.is_passable(nx as i64, ny as i64));
            }
        }
    }

    #[test]
    fn packet_traces_balance(initial in 0usize..64, removes in 1usize..64, r in 1u32..6, seed in 0u64..50) {
        let s = PacketStream::generate(initial, removes, r, seed);
        prop_assert_eq!(s.removes(), removes);
        prop_assert_eq!(s.adds(), removes * r as usize);
        // Running queue size never goes negative.
        let mut size = s.initial.len() as i64;
        for e in &s.events {
            match e {
                PacketEvent::Add(_) => size += 1,
                PacketEvent::Remove => size -= 1,
            }
            prop_assert!(size >= 0);
        }
    }

    #[test]
    fn distributions_produce_requested_counts(
        n in 0usize..500,
        dist in prop_oneof![
            Just(KeyDistribution::Uniform),
            Just(KeyDistribution::Sorted),
            Just(KeyDistribution::Reverse),
            Just(KeyDistribution::NearlySorted { fraction: 0.1 }),
            Just(KeyDistribution::FewDistinct { distinct: 5 }),
        ],
        seed in 0u64..20,
    ) {
        prop_assert_eq!(generate_u64(n, dist, seed).len(), n);
    }

    #[test]
    fn zipf_stays_in_domain(n in 1usize..300, domain in 1u64..5_000, s in 0.0f64..2.0, seed in 0u64..20) {
        let v = generate_zipf(n, domain, s, seed);
        prop_assert_eq!(v.len(), n);
        prop_assert!(v.iter().all(|&k| k < domain));
    }

    #[test]
    fn join_tables_share_a_domain(rows in 1usize..300, overlap in 0.05f64..1.0, seed in 0u64..20) {
        let j = JoinTables::with_overlap(rows, overlap, seed);
        prop_assert_eq!(j.left.len(), rows);
        prop_assert_eq!(j.right.len(), rows);
    }

    #[test]
    fn grouped_tables_bound_keys(rows in 0usize..300, groups in 1u64..64, seed in 0u64..20) {
        let t = KvTable::grouped(rows, groups, seed);
        prop_assert_eq!(t.len(), rows);
        prop_assert!(t.keys.iter().all(|&k| k < groups));
    }
}
