//! Obstacle grids for A*-Search (§VI-C): "a 2D binary matrix representing
//! the obstacles with 0 and non-obstacles with 1".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2D grid where cells are either passable or obstacles. The source is
/// the top-left corner and the destination the bottom-right; both are
/// always passable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObstacleGrid {
    width: u32,
    height: u32,
    passable: Vec<bool>,
}

impl ObstacleGrid {
    /// Generates a `width × height` grid with an approximate obstacle
    /// `density` (0.0–1.0).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn random(width: u32, height: u32, density: f64, seed: u64) -> ObstacleGrid {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let density = density.clamp(0.0, 1.0);
        let mut passable: Vec<bool> = (0..width as usize * height as usize)
            .map(|_| rng.gen_bool(1.0 - density))
            .collect();
        let last = passable.len() - 1;
        passable[0] = true;
        passable[last] = true;
        ObstacleGrid {
            width,
            height,
            passable,
        }
    }

    /// Grid width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total cells.
    pub fn cells(&self) -> usize {
        self.passable.len()
    }

    /// Whether `(x, y)` is inside the grid and passable.
    pub fn is_passable(&self, x: i64, y: i64) -> bool {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return false;
        }
        self.passable[y as usize * self.width as usize + x as usize]
    }

    /// The source cell (top-left).
    pub fn source(&self) -> (u32, u32) {
        (0, 0)
    }

    /// The destination cell (bottom-right).
    pub fn destination(&self) -> (u32, u32) {
        (self.width - 1, self.height - 1)
    }

    /// The 4-connected passable neighbors of `(x, y)`.
    pub fn neighbors(&self, x: u32, y: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(4);
        for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
            let (nx, ny) = (x as i64 + dx, y as i64 + dy);
            if self.is_passable(nx, ny) {
                out.push((nx as u32, ny as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_always_passable() {
        let g = ObstacleGrid::random(10, 10, 0.9, 1);
        assert!(g.is_passable(0, 0));
        assert!(g.is_passable(9, 9));
        assert_eq!(g.source(), (0, 0));
        assert_eq!(g.destination(), (9, 9));
    }

    #[test]
    fn density_respected_roughly() {
        let g = ObstacleGrid::random(100, 100, 0.3, 2);
        let blocked = (0..100i64)
            .flat_map(|y| (0..100i64).map(move |x| (x, y)))
            .filter(|&(x, y)| !g.is_passable(x, y))
            .count();
        let frac = blocked as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&frac), "{frac}");
    }

    #[test]
    fn out_of_bounds_is_impassable() {
        let g = ObstacleGrid::random(5, 5, 0.0, 3);
        assert!(!g.is_passable(-1, 0));
        assert!(!g.is_passable(0, 5));
    }

    #[test]
    fn neighbors_exclude_obstacles_and_bounds() {
        let g = ObstacleGrid::random(3, 3, 0.0, 4);
        assert_eq!(g.neighbors(0, 0).len(), 2);
        assert_eq!(g.neighbors(1, 1).len(), 4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            ObstacleGrid::random(20, 20, 0.25, 7),
            ObstacleGrid::random(20, 20, 0.25, 7)
        );
    }
}
