//! Key-value tables for the database workloads (GroupBy, MergeJoin —
//! §VI-C, Fig. 16).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A key-value table: `keys[i]` is row *i*'s grouping/join key and
/// `values[i]` its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvTable {
    /// Row keys.
    pub keys: Vec<u64>,
    /// Row payloads.
    pub values: Vec<u64>,
}

impl KvTable {
    /// Generates `rows` rows whose keys are drawn from `groups` distinct
    /// group identifiers — the GroupBy workload.
    pub fn grouped(rows: usize, groups: u64, seed: u64) -> KvTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = groups.max(1);
        KvTable {
            keys: (0..rows).map(|_| rng.gen_range(0..groups)).collect(),
            values: (0..rows).map(|_| rng.gen()).collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// A pair of tables with controlled key overlap — the MergeJoin workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTables {
    /// Left relation.
    pub left: KvTable,
    /// Right relation.
    pub right: KvTable,
}

impl JoinTables {
    /// Generates two tables of `rows` rows each over a shared key domain
    /// sized so that roughly `overlap` of keys appear in both.
    pub fn with_overlap(rows: usize, overlap: f64, seed: u64) -> JoinTables {
        let mut rng = StdRng::seed_from_u64(seed);
        let overlap = overlap.clamp(0.01, 1.0);
        // Birthday bound: domain ≈ rows / overlap makes a left key appear
        // in the right table with probability ≈ overlap.
        let domain = ((rows as f64 / overlap).ceil() as u64).max(1);
        let gen_table = |rng: &mut StdRng| KvTable {
            keys: (0..rows).map(|_| rng.gen_range(0..domain)).collect(),
            values: (0..rows).map(|_| rng.gen()).collect(),
        };
        JoinTables {
            left: gen_table(&mut rng),
            right: gen_table(&mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grouped_table_shape() {
        let t = KvTable::grouped(1_000, 16, 1);
        assert_eq!(t.len(), 1_000);
        assert!(!t.is_empty());
        assert!(t.keys.iter().all(|&k| k < 16));
        let distinct: HashSet<_> = t.keys.iter().collect();
        assert!(distinct.len() > 4);
    }

    #[test]
    fn join_overlap_is_roughly_controlled() {
        let j = JoinTables::with_overlap(5_000, 0.5, 2);
        let right: HashSet<_> = j.right.keys.iter().collect();
        let hits = j.left.keys.iter().filter(|k| right.contains(k)).count();
        let frac = hits as f64 / j.left.len() as f64;
        assert!((0.2..0.8).contains(&frac), "overlap {frac}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            KvTable::grouped(100, 4, 9).keys,
            KvTable::grouped(100, 4, 9).keys
        );
    }
}
