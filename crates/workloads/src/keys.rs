//! Key-array generators for the sorting kernels (Figs. 1, 2, 15).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated key array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Independent uniform keys — the figures' default workload.
    Uniform,
    /// Already sorted ascending (adversarial for quicksort pivots,
    /// trivial for adaptive algorithms).
    Sorted,
    /// Sorted descending.
    Reverse,
    /// Sorted with `fraction` of positions perturbed.
    NearlySorted {
        /// Fraction of keys displaced (0.0–1.0).
        fraction: f64,
    },
    /// Heavy duplication: keys drawn from a domain of `distinct` values.
    FewDistinct {
        /// Number of distinct key values.
        distinct: u64,
    },
}

/// Generates `n` 64-bit keys with the given distribution and seed.
///
/// # Example
///
/// ```
/// use rime_workloads::keys::{generate_u64, KeyDistribution};
///
/// let a = generate_u64(1000, KeyDistribution::Uniform, 7);
/// let b = generate_u64(1000, KeyDistribution::Uniform, 7);
/// assert_eq!(a, b, "seeded generation is deterministic");
/// ```
pub fn generate_u64(n: usize, dist: KeyDistribution, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dist {
        KeyDistribution::Uniform => (0..n).map(|_| rng.gen()).collect(),
        KeyDistribution::Sorted => {
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            v.sort_unstable();
            v
        }
        KeyDistribution::Reverse => {
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        }
        KeyDistribution::NearlySorted { fraction } => {
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            v.sort_unstable();
            let swaps = ((n as f64) * fraction.clamp(0.0, 1.0) / 2.0) as usize;
            for _ in 0..swaps {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                v.swap(i, j);
            }
            v
        }
        KeyDistribution::FewDistinct { distinct } => {
            let distinct = distinct.max(1);
            (0..n).map(|_| rng.gen_range(0..distinct)).collect()
        }
    }
}

/// Generates `n` positive uniform `f32` keys (graph weights and the like).
pub fn generate_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0f32..1.0e6)).collect()
}

/// Generates `n` uniform `f32` keys spanning negative and positive values.
pub fn generate_f32_signed(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0e6f32..1.0e6)).collect()
}

/// Generates `n` keys Zipf-distributed over `[0, domain)` with skew `s`
/// (s = 0 is uniform; s ≈ 1 is the classic web-like skew). Uses inverse
/// transform sampling over the precomputed CDF.
///
/// # Panics
///
/// Panics if `domain` is zero or `s` is negative.
pub fn generate_zipf(n: usize, domain: u64, s: f64, seed: u64) -> Vec<u64> {
    assert!(domain > 0, "domain must be positive");
    assert!(s >= 0.0, "skew must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = domain.min(1 << 22); // bound the CDF table
    let mut cdf = Vec::with_capacity(domain as usize);
    let mut acc = 0.0f64;
    for rank in 1..=domain {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            cdf.partition_point(|&c| c < u) as u64
        })
        .collect()
}

/// Generates `n` signed keys spanning negative and positive values.
pub fn generate_i64(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate_u64(100, KeyDistribution::Uniform, 1),
            generate_u64(100, KeyDistribution::Uniform, 1)
        );
        assert_ne!(
            generate_u64(100, KeyDistribution::Uniform, 1),
            generate_u64(100, KeyDistribution::Uniform, 2)
        );
    }

    #[test]
    fn sorted_is_sorted() {
        let v = generate_u64(500, KeyDistribution::Sorted, 3);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let r = generate_u64(500, KeyDistribution::Reverse, 3);
        assert!(r.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn nearly_sorted_is_mostly_sorted() {
        let v = generate_u64(10_000, KeyDistribution::NearlySorted { fraction: 0.05 }, 4);
        let inversions = v.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions > 0);
        assert!(inversions < 2_000, "{inversions}");
    }

    #[test]
    fn few_distinct_bounds_domain() {
        let v = generate_u64(1_000, KeyDistribution::FewDistinct { distinct: 8 }, 5);
        assert!(v.iter().all(|&k| k < 8));
        let uniq: std::collections::HashSet<_> = v.iter().collect();
        assert!(uniq.len() <= 8 && uniq.len() > 1);
    }

    #[test]
    fn float_keys_positive() {
        let v = generate_f32(100, 6);
        assert!(v.iter().all(|&x| (0.0..1.0e6).contains(&x)));
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let v = generate_zipf(20_000, 1_000, 1.1, 8);
        assert_eq!(v, generate_zipf(20_000, 1_000, 1.1, 8));
        assert!(v.iter().all(|&k| k < 1_000));
        // Rank 0 dominates under heavy skew.
        let zeros = v.iter().filter(|&&k| k == 0).count();
        assert!(zeros > v.len() / 20, "rank-0 count {zeros}");
        // Uniform (s = 0) does not.
        let u = generate_zipf(20_000, 1_000, 0.0, 8);
        let zeros_u = u.iter().filter(|&&k| k == 0).count();
        assert!(zeros_u < zeros / 4, "uniform rank-0 count {zeros_u}");
    }

    #[test]
    fn signed_keys_span_signs() {
        let v = generate_i64(1_000, 7);
        assert!(v.iter().any(|&x| x < 0));
        assert!(v.iter().any(|&x| x > 0));
    }
}
