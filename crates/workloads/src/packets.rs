//! Packet streams for the strict-priority-queue workload (§VI-C, Fig. 18).
//!
//! Two threads share a buffer: one adds packets, one removes the
//! minimum-key packet. The workload is parameterized by the initial
//! buffer size and the add-to-remove ratio `R` (Fig. 18 sweeps R = 1..5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One event in a packet-processing trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEvent {
    /// Enqueue a packet with the given priority key.
    Add(u64),
    /// Dequeue the packet with the minimum key.
    Remove,
}

/// A reproducible packet-processing trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketStream {
    /// Keys pre-loaded into the buffer before the trace starts.
    pub initial: Vec<u64>,
    /// Interleaved add/remove events (`adds : removes = R : 1`).
    pub events: Vec<PacketEvent>,
    /// The add-to-remove ratio R.
    pub ratio: u32,
}

impl PacketStream {
    /// Generates a trace with `initial_size` pre-loaded packets,
    /// `removes` remove operations, and `ratio` adds per remove.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    pub fn generate(initial_size: usize, removes: usize, ratio: u32, seed: u64) -> PacketStream {
        assert!(ratio > 0, "R is at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let initial: Vec<u64> = (0..initial_size).map(|_| rng.gen()).collect();
        let mut events = Vec::with_capacity(removes * (1 + ratio as usize));
        for _ in 0..removes {
            for _ in 0..ratio {
                events.push(PacketEvent::Add(rng.gen()));
            }
            events.push(PacketEvent::Remove);
        }
        PacketStream {
            initial,
            events,
            ratio,
        }
    }

    /// Number of remove operations in the trace.
    pub fn removes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, PacketEvent::Remove))
            .count()
    }

    /// Number of add operations in the trace.
    pub fn adds(&self) -> usize {
        self.events.len() - self.removes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_respected() {
        let s = PacketStream::generate(100, 50, 3, 1);
        assert_eq!(s.removes(), 50);
        assert_eq!(s.adds(), 150);
        assert_eq!(s.initial.len(), 100);
        assert_eq!(s.ratio, 3);
    }

    #[test]
    fn queue_never_underflows() {
        let s = PacketStream::generate(10, 100, 1, 2);
        let mut size = s.initial.len() as i64;
        let mut min_size = size;
        for e in &s.events {
            match e {
                PacketEvent::Add(_) => size += 1,
                PacketEvent::Remove => size -= 1,
            }
            min_size = min_size.min(size);
        }
        assert!(min_size >= 0, "buffer never goes negative (R ≥ 1)");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            PacketStream::generate(10, 10, 2, 9),
            PacketStream::generate(10, 10, 2, 9)
        );
    }

    #[test]
    #[should_panic(expected = "R is at least 1")]
    fn zero_ratio_rejected() {
        PacketStream::generate(10, 10, 0, 1);
    }
}
