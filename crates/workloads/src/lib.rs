//! # rime-workloads
//!
//! Deterministic, seeded generators for every dataset the evaluation uses
//! (§VI-C): key arrays for the sort kernels, key-value tables for GroupBy
//! and MergeJoin, weighted graphs for Kruskal/Prim/Dijkstra, obstacle
//! grids for A*-Search, and packet streams for the strict priority queue.
//!
//! Everything is reproducible from a seed so figure regeneration is
//! stable run to run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graphs;
pub mod grids;
pub mod keys;
pub mod packets;
pub mod tables;

pub use graphs::{Graph, WeightedEdge};
pub use grids::ObstacleGrid;
pub use keys::KeyDistribution;
pub use packets::{PacketEvent, PacketStream};
pub use tables::{JoinTables, KvTable};
