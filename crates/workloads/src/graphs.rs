//! Weighted-graph generators for Kruskal, Prim, and Dijkstra (§VI-C).
//!
//! Graphs are connected by construction (a random spanning backbone plus
//! uniform extra edges) with IEEE-754 `f32` weights, the format those
//! workloads use in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// Endpoint.
    pub u: u32,
    /// Endpoint.
    pub v: u32,
    /// Positive weight.
    pub w: f32,
}

/// An undirected weighted graph as an edge list plus adjacency index.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Number of vertices.
    pub vertices: u32,
    /// Edge list.
    pub edges: Vec<WeightedEdge>,
    adjacency: Vec<Vec<(u32, f32)>>,
}

impl Graph {
    /// Generates a connected random graph of `vertices` vertices and
    /// roughly `edges` edges (at least `vertices − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero.
    pub fn random_connected(vertices: u32, edges: usize, seed: u64) -> Graph {
        assert!(vertices > 0, "graph needs vertices");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut list = Vec::with_capacity(edges.max(vertices as usize - 1));
        // Spanning backbone: connect each vertex i>0 to a random earlier one.
        for v in 1..vertices {
            let u = rng.gen_range(0..v);
            list.push(WeightedEdge {
                u,
                v,
                w: rng.gen_range(0.001f32..1000.0),
            });
        }
        while list.len() < edges {
            let u = rng.gen_range(0..vertices);
            let v = rng.gen_range(0..vertices);
            if u != v {
                list.push(WeightedEdge {
                    u,
                    v,
                    w: rng.gen_range(0.001f32..1000.0),
                });
            }
        }
        let mut adjacency = vec![Vec::new(); vertices as usize];
        for e in &list {
            adjacency[e.u as usize].push((e.v, e.w));
            adjacency[e.v as usize].push((e.u, e.w));
        }
        Graph {
            vertices,
            edges: list,
            adjacency,
        }
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero or an edge endpoint is out of range.
    pub fn from_edges(vertices: u32, edges: Vec<WeightedEdge>) -> Graph {
        assert!(vertices > 0, "graph needs vertices");
        let mut adjacency = vec![Vec::new(); vertices as usize];
        for e in &edges {
            assert!(
                e.u < vertices && e.v < vertices,
                "edge endpoint out of range"
            );
            adjacency[e.u as usize].push((e.v, e.w));
            adjacency[e.v as usize].push((e.u, e.w));
        }
        Graph {
            vertices,
            edges,
            adjacency,
        }
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> &[(u32, f32)] {
        &self.adjacency[v as usize]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_connected(g: &Graph) -> bool {
        let mut seen = vec![false; g.vertices as usize];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(n, _) in g.neighbors(v) {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == g.vertices
    }

    #[test]
    fn generated_graph_is_connected() {
        let g = Graph::random_connected(500, 2_000, 11);
        assert!(is_connected(&g));
        assert_eq!(g.vertices, 500);
        assert!(g.edge_count() >= 2_000);
    }

    #[test]
    fn minimum_edges_for_connectivity() {
        let g = Graph::random_connected(10, 0, 3);
        assert_eq!(g.edge_count(), 9);
        assert!(is_connected(&g));
    }

    #[test]
    fn weights_positive_and_finite() {
        let g = Graph::random_connected(100, 500, 5);
        assert!(g.edges.iter().all(|e| e.w > 0.0 && e.w.is_finite()));
    }

    #[test]
    fn no_self_loops() {
        let g = Graph::random_connected(50, 300, 6);
        assert!(g.edges.iter().all(|e| e.u != e.v));
    }

    #[test]
    fn deterministic() {
        let a = Graph::random_connected(64, 256, 9);
        let b = Graph::random_connected(64, 256, 9);
        assert_eq!(a, b);
    }
}
