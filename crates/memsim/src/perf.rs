//! Phase-level performance model.
//!
//! A workload is a sequence of [`Phase`]s. Each phase processes some
//! number of keys with a calibrated CPU cost and generates some number of
//! below-cache line accesses with a given row-buffer locality and access
//! pattern. Executing a workload on a [`SystemConfig`] overlaps compute
//! with memory (out-of-order cores with deep ROBs hide whichever is
//! shorter) and charges the longer of the two — the standard roofline
//! treatment, which is what makes sort throughput *bandwidth-limited*
//! exactly as §II-C observes.
//!
//! The per-kernel phase decompositions (how many passes, how many lines
//! per pass) live in `rime-kernels`; they are validated against the exact
//! trace-driven [`crate::cache`] model in that crate's tests.

use crate::config::{MemorySystem, SystemConfig};
use crate::dram::LINE_BYTES;

/// Memory access pattern of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Independent accesses that pipeline freely (bandwidth-bound).
    Streaming,
    /// Serially dependent accesses, one chain per core (latency-bound).
    Dependent,
}

/// One phase of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Label for reports.
    pub name: &'static str,
    /// Work items processed (keys, edges, packets …).
    pub keys: u64,
    /// Calibrated CPU cycles per work item on one core.
    pub cpu_cycles_per_key: f64,
    /// Below-cache line accesses (64 B each), reads plus writebacks.
    pub mem_lines: u64,
    /// Row-buffer hit fraction of those accesses.
    pub row_hit: f64,
    /// Whether accesses pipeline or form dependent chains.
    pub pattern: AccessPattern,
    /// Whether the phase scales across cores.
    pub parallel: bool,
}

impl Phase {
    /// A parallel streaming phase touching `mem_bytes` below-cache bytes
    /// with sequential locality.
    pub fn streaming(
        name: &'static str,
        keys: u64,
        cpu_cycles_per_key: f64,
        mem_bytes: u64,
    ) -> Phase {
        Phase {
            name,
            keys,
            cpu_cycles_per_key,
            mem_lines: mem_bytes.div_ceil(LINE_BYTES),
            row_hit: 0.35,
            pattern: AccessPattern::Streaming,
            parallel: true,
        }
    }

    /// A parallel latency-bound phase of pointer-chasing accesses
    /// (heap traversals, graph adjacency walks).
    pub fn dependent(
        name: &'static str,
        keys: u64,
        cpu_cycles_per_key: f64,
        mem_bytes: u64,
    ) -> Phase {
        Phase {
            name,
            keys,
            cpu_cycles_per_key,
            mem_lines: mem_bytes.div_ceil(LINE_BYTES),
            row_hit: 0.10,
            pattern: AccessPattern::Dependent,
            parallel: true,
        }
    }

    /// Marks the phase as serial (single core).
    pub fn serial(mut self) -> Phase {
        self.parallel = false;
        self
    }

    /// Overrides the row-hit fraction.
    pub fn with_row_hit(mut self, row_hit: f64) -> Phase {
        self.row_hit = row_hit.clamp(0.0, 1.0);
        self
    }
}

/// Timing of one executed phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTime {
    /// CPU-side cycles (after dividing across cores).
    pub cpu_cycles: f64,
    /// Memory-side cycles.
    pub mem_cycles: f64,
    /// Charged cycles: `max(cpu, mem)`.
    pub cycles: f64,
}

/// A sequence of phases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    phases: Vec<Phase>,
}

impl Workload {
    /// Creates a workload from its phases.
    pub fn new(phases: Vec<Phase>) -> Workload {
        Workload { phases }
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Appends a phase.
    pub fn push(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// Total below-cache traffic in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.mem_lines * LINE_BYTES).sum()
    }

    /// Total below-cache line accesses (Fig. 1's y-axis).
    pub fn mem_lines(&self) -> u64 {
        self.phases.iter().map(|p| p.mem_lines).sum()
    }

    /// Executes the workload on a system, producing per-phase timings.
    pub fn execute(&self, system: &SystemConfig) -> Execution {
        let cores = system.core.cores.max(1);
        let dram = system.memory.dram_config();
        let mut phases = Vec::with_capacity(self.phases.len());
        let mut total = 0.0f64;
        let mut cpu_busy = 0.0f64;
        let mut mem_busy = 0.0f64;

        for phase in &self.phases {
            let eff_cores = if phase.parallel { cores } else { 1 };
            let cpu_cycles = phase.keys as f64 * phase.cpu_cycles_per_key / eff_cores as f64;
            let mem_cycles = match (&system.memory, dram) {
                (MemorySystem::Unlimited, _) | (_, None) => 0.0,
                (_, Some(cfg)) => match phase.pattern {
                    AccessPattern::Streaming => {
                        cfg.demand_streaming_cycles(phase.mem_lines, phase.row_hit)
                    }
                    AccessPattern::Dependent => {
                        cfg.demand_dependent_cycles(phase.mem_lines, eff_cores, phase.row_hit)
                    }
                },
            };
            let cycles = cpu_cycles.max(mem_cycles);
            total += cycles;
            cpu_busy += cpu_cycles;
            mem_busy += mem_cycles;
            phases.push(PhaseTime {
                cpu_cycles,
                mem_cycles,
                cycles,
            });
        }

        Execution {
            clock_ghz: system.core.clock_ghz,
            total_cycles: total,
            cpu_busy_cycles: cpu_busy,
            mem_busy_cycles: mem_busy,
            mem_bytes: self.mem_bytes(),
            phases,
        }
    }
}

impl FromIterator<Phase> for Workload {
    fn from_iter<I: IntoIterator<Item = Phase>>(iter: I) -> Workload {
        Workload::new(iter.into_iter().collect())
    }
}

impl Extend<Phase> for Workload {
    fn extend<I: IntoIterator<Item = Phase>>(&mut self, iter: I) {
        self.phases.extend(iter);
    }
}

/// The result of executing a [`Workload`] on a [`SystemConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    clock_ghz: f64,
    /// Charged cycles across all phases.
    pub total_cycles: f64,
    /// CPU-side busy cycles (for energy accounting).
    pub cpu_busy_cycles: f64,
    /// Memory-side busy cycles (for energy accounting).
    pub mem_busy_cycles: f64,
    /// Below-cache traffic in bytes.
    pub mem_bytes: u64,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseTime>,
}

impl Execution {
    /// Wall-clock seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles / (self.clock_ghz * 1e9)
    }

    /// Throughput in million keys per second for `keys` processed items —
    /// the unit of Figs. 2 and 15–18.
    pub fn throughput_mkps(&self, keys: u64) -> f64 {
        if self.total_cycles == 0.0 {
            return f64::INFINITY;
        }
        keys as f64 / self.total_seconds() / 1e6
    }

    /// Sustained memory bandwidth over the run, in MB/s (Fig. 1(c)).
    pub fn sustained_bandwidth_mbps(&self) -> f64 {
        let secs = self.total_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.mem_bytes as f64 / secs / 1e6
        }
    }

    /// Fraction of time the memory side was the bottleneck.
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.total_cycles == 0.0 {
            return 0.0;
        }
        let bound: f64 = self
            .phases
            .iter()
            .filter(|p| p.mem_cycles > p.cpu_cycles)
            .map(|p| p.cycles)
            .sum();
        bound / self.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn one_pass(n: u64) -> Workload {
        Workload::new(vec![Phase::streaming("pass", n, 20.0, 2 * 8 * n)])
    }

    #[test]
    fn unlimited_is_compute_bound() {
        let w = one_pass(1_000_000);
        let e = w.execute(&SystemConfig::unlimited(16));
        assert_eq!(e.mem_busy_cycles, 0.0);
        assert!(e.total_cycles > 0.0);
        assert_eq!(e.memory_bound_fraction(), 0.0);
    }

    #[test]
    fn bandwidth_ordering_unlimited_hbm_ddr4() {
        let w = one_pass(64_000_000);
        let unl = w.execute(&SystemConfig::unlimited(64)).total_seconds();
        let hbm = w.execute(&SystemConfig::in_package(64)).total_seconds();
        let off = w.execute(&SystemConfig::off_chip(64)).total_seconds();
        assert!(unl <= hbm && hbm <= off, "{unl} {hbm} {off}");
    }

    #[test]
    fn more_cores_help_compute_bound_phases() {
        let w = Workload::new(vec![Phase::streaming("cpu-heavy", 10_000_000, 500.0, 8)]);
        let one = w.execute(&SystemConfig::off_chip(1)).total_seconds();
        let many = w.execute(&SystemConfig::off_chip(64)).total_seconds();
        assert!(many < one / 10.0);
    }

    #[test]
    fn cores_do_not_help_bandwidth_bound_phases() {
        let n = 64_000_000u64;
        let w = Workload::new(vec![Phase::streaming("stream", n, 2.0, 16 * n)]);
        let few = w.execute(&SystemConfig::off_chip(16)).total_seconds();
        let many = w.execute(&SystemConfig::off_chip(64)).total_seconds();
        assert!(
            (few - many).abs() / few < 0.01,
            "bandwidth wall: {few} vs {many}"
        );
    }

    #[test]
    fn serial_phase_ignores_cores() {
        let w = Workload::new(vec![Phase::streaming("s", 1_000_000, 100.0, 8).serial()]);
        let a = w.execute(&SystemConfig::unlimited(1)).total_seconds();
        let b = w.execute(&SystemConfig::unlimited(64)).total_seconds();
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_and_bandwidth_reported() {
        let n = 1_000_000u64;
        let e = one_pass(n).execute(&SystemConfig::off_chip(16));
        assert!(e.throughput_mkps(n) > 0.0);
        assert!(e.sustained_bandwidth_mbps() > 0.0);
        assert_eq!(e.mem_bytes, 16 * n);
    }

    #[test]
    fn dependent_pattern_hurts_on_one_core() {
        let n = 1_000_000u64;
        let s = Workload::new(vec![Phase::streaming("s", n, 2.0, 8 * n)])
            .execute(&SystemConfig::off_chip(1));
        let d = Workload::new(vec![Phase::dependent("d", n, 2.0, 8 * n)])
            .execute(&SystemConfig::off_chip(1));
        assert!(d.total_cycles > s.total_cycles);
    }

    #[test]
    fn hbm_helps_streaming_more_than_dependent() {
        // §VII-A: A*-Search (dependent) gains only 1–1.1× on HBM while
        // streaming kernels gain 2× or more.
        let n = 8_000_000u64;
        let stream = Workload::new(vec![Phase::streaming("s", n, 2.0, 16 * n)]);
        let dep = Workload::new(vec![Phase::dependent("d", n, 2.0, 16 * n)]);
        let s_gain = stream.execute(&SystemConfig::off_chip(16)).total_cycles
            / stream.execute(&SystemConfig::in_package(16)).total_cycles;
        let d_gain = dep.execute(&SystemConfig::off_chip(16)).total_cycles
            / dep.execute(&SystemConfig::in_package(16)).total_cycles;
        assert!(s_gain > 2.0, "streaming HBM gain {s_gain}");
        assert!(d_gain < 1.5, "dependent HBM gain {d_gain}");
        assert!(s_gain > d_gain);
    }

    #[test]
    fn workload_collects_from_iterator() {
        let w: Workload = (0..3).map(|_| Phase::streaming("p", 10, 1.0, 64)).collect();
        assert_eq!(w.phases().len(), 3);
        assert_eq!(w.mem_lines(), 3);
    }
}
