//! Measured multicore cache contention — the mechanism behind Fig. 1(b).
//!
//! Fig. 1(b) shows below-cache accesses *growing with core count* at a
//! fixed 65M-key working set: more cores mean more concurrent streams
//! competing for the shared L2, so data that one core could keep resident
//! gets evicted by its neighbors. This module measures that effect
//! exactly, by interleaving per-core scan streams through the trace-driven
//! [`Hierarchy`]: each core repeatedly scans its own partition, accesses
//! interleaved round-robin as a multicore execution would issue them.
//!
//! The analytic counterpart is the `STREAM_PRESSURE / cores` term in
//! `rime-kernels::model`; the test here pins the mechanism to a
//! measurement.

use crate::cache::{CacheConfig, Hierarchy};

/// Result of one contention measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionResult {
    /// Cores (streams) interleaved.
    pub cores: u32,
    /// Below-cache line accesses observed.
    pub mem_accesses: u64,
    /// Total element accesses issued.
    pub issued: u64,
}

/// Interleaves `cores` per-core scan streams over private `keys_per_core`
/// partitions for `passes` passes and reports the below-cache traffic.
///
/// Pass 0 is compulsory (cold) traffic; later passes measure what the
/// cache hierarchy *retains* under contention.
pub fn interleaved_scan(cores: u32, keys_per_core: u64, passes: u32) -> ContentionResult {
    let cores = cores.max(1);
    let mut hierarchy = Hierarchy::new(cores, CacheConfig::l1d_table1(), CacheConfig::l2_table1());
    // Partition bases are far apart so partitions never alias.
    let base = |core: u32| core as u64 * (keys_per_core * 8).next_multiple_of(1 << 24);
    let mut issued = 0u64;
    for _pass in 0..passes {
        for idx in 0..keys_per_core {
            for core in 0..cores {
                hierarchy.access(core, base(core) + idx * 8, false);
                issued += 1;
            }
        }
    }
    ContentionResult {
        cores,
        mem_accesses: hierarchy.mem_accesses(),
        issued,
    }
}

/// Below-cache accesses *per issued access* — the miss ratio a sort pass
/// sees at this core count.
pub fn miss_ratio(result: &ContentionResult) -> f64 {
    if result.issued == 0 {
        0.0
    } else {
        result.mem_accesses as f64 / result.issued as f64
    }
}

/// Steady-state miss ratio: traffic of passes 2..=`passes` only, with the
/// compulsory (cold) pass subtracted out.
pub fn steady_state_miss_ratio(cores: u32, keys_per_core: u64, passes: u32) -> f64 {
    assert!(passes >= 2, "need at least one steady-state pass");
    let warm = interleaved_scan(cores, keys_per_core, 1);
    let full = interleaved_scan(cores, keys_per_core, passes);
    (full.mem_accesses - warm.mem_accesses) as f64 / (full.issued - warm.issued) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One core whose partition fits the L2 keeps it resident; eight
    /// cores with the same per-core partition thrash it — Fig. 1(b)'s
    /// growth, measured.
    #[test]
    fn contention_grows_traffic_with_cores() {
        // 128 Ki keys = 1 MiB per core; 8 MiB shared L2.
        let keys = 192 * 1024; // 1.5 MiB per core
        let r1 = steady_state_miss_ratio(1, keys, 3);
        let r8 = steady_state_miss_ratio(8, keys, 3);
        assert!(r1 < 0.01, "single core re-scans from cache: {r1}");
        assert!(r8 > 10.0 * r1.max(1e-4), "eight cores thrash: {r8} vs {r1}");
    }

    #[test]
    fn first_pass_is_compulsory_for_everyone() {
        let keys = 64 * 1024u64;
        let res = interleaved_scan(4, keys, 1);
        // Every line touched once: 8 B keys → 1 line per 8 keys per core.
        let lines = 4 * keys / 8;
        assert!(res.mem_accesses >= lines, "{} vs {lines}", res.mem_accesses);
        assert!(res.mem_accesses < lines + lines / 4);
        assert_eq!(res.issued, 4 * keys);
    }

    #[test]
    fn tiny_partitions_never_miss_after_warmup() {
        let res = interleaved_scan(4, 512, 4);
        // 4 × 4 KiB fits everywhere: only compulsory misses.
        assert_eq!(res.mem_accesses, 4 * 512 / 8);
    }
}
