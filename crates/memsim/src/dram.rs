//! DRAM bank/channel timing model (Table I).
//!
//! Two configurations are modelled, both DDR4-protocol memories per the
//! paper's §V/§VI-A setup: the off-chip main memory (8 Gb DDR4-1600 chips,
//! burst length `tBL = 10` CPU cycles) and the in-package HBM-class memory
//! (DDR4-2000-rate, `tBL = 4`). All timing parameters are expressed in CPU
//! cycles at 2 GHz, exactly as Table I lists them.
//!
//! The model is cycle-approximate: per access it resolves channel bus
//! occupancy (`tBL`), per-bank row-buffer state (hit → `tCAS`; miss →
//! `tRP + tRCD + tCAS` with the `tRC` activate window), and same-bank
//! column spacing (`tCCD`). It supports two modes:
//!
//! * **trace mode** — [`DramModel::access`] serves one line access at a
//!   time and advances bank/bus state, for exact small-scale runs;
//! * **analytic mode** — [`DramConfig::streaming_cycles`] /
//!   [`DramConfig::dependent_cycles`] summarize a phase's traffic, for
//!   full-scale figure sweeps. Tests check the two agree on streams.

/// Timing and geometry of one DRAM memory system (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Row-buffer size in bytes.
    pub row_buffer_bytes: u32,
    /// Activate-to-read delay (CPU cycles).
    pub t_rcd: u32,
    /// Column access latency (CPU cycles).
    pub t_cas: u32,
    /// Column-to-column delay, same bank (CPU cycles).
    pub t_ccd: u32,
    /// Write-to-read turnaround (CPU cycles).
    pub t_wtr: u32,
    /// Write recovery (CPU cycles).
    pub t_wr: u32,
    /// Read-to-precharge (CPU cycles).
    pub t_rtp: u32,
    /// Burst length on the data bus (CPU cycles per 64 B line).
    pub t_bl: u32,
    /// Write command-to-data delay (CPU cycles).
    pub t_cwd: u32,
    /// Precharge latency (CPU cycles).
    pub t_rp: u32,
    /// Activate-to-activate, different banks (CPU cycles).
    pub t_rrd: u32,
    /// Row-active minimum (CPU cycles).
    pub t_ras: u32,
    /// Row cycle: activate-to-activate, same bank (CPU cycles).
    pub t_rc: u32,
    /// Four-activate window (CPU cycles).
    pub t_faw: u32,
    /// Effective system-level memory-level parallelism: how many
    /// below-cache accesses the memory system overlaps in steady state.
    /// The paper's baselines sustain only hundreds of MB/s at 65M keys
    /// (Fig. 1(c)), i.e. accesses are close to latency-serialized; the
    /// in-package memory's extra ranks/vaults buy it more overlap.
    pub system_mlp: f64,
    /// Multiplier on unloaded latency capturing queueing/arbitration
    /// under load.
    pub queue_factor: f64,
    /// Average refresh interval per rank (CPU cycles; 7.8 µs at 2 GHz).
    pub t_refi: u32,
    /// Refresh cycle time — the rank is unavailable this long (CPU
    /// cycles; ~350 ns at 2 GHz for 8 Gb devices).
    pub t_rfc: u32,
}

/// Cache-line (and DRAM burst) size in bytes.
pub const LINE_BYTES: u64 = 64;

impl DramConfig {
    /// Table I off-chip main memory: 8 KB row buffer, 8 Gb DDR4-1600
    /// chips, channels/ranks/banks 4/2/8, `tBL = 10`.
    pub fn ddr4_offchip() -> DramConfig {
        DramConfig {
            name: "Off-Chip (DDR4)",
            channels: 4,
            ranks: 2,
            banks: 8,
            row_buffer_bytes: 8 * 1024,
            t_rcd: 44,
            t_cas: 44,
            t_ccd: 16,
            t_wtr: 31,
            t_wr: 4,
            t_rtp: 46,
            t_bl: 10,
            t_cwd: 61,
            t_rp: 44,
            t_rrd: 16,
            t_ras: 112,
            t_rc: 271,
            t_faw: 181,
            system_mlp: 1.0,
            queue_factor: 2.0,
            t_refi: 15_600,
            t_rfc: 700,
        }
    }

    /// Table I in-package memory: 2 KB row buffer, DDR4-2000 rate,
    /// channels/ranks/banks 4/8/8, `tBL = 4`.
    pub fn hbm_in_package() -> DramConfig {
        DramConfig {
            name: "In-Package (HBM)",
            channels: 4,
            ranks: 8,
            banks: 8,
            row_buffer_bytes: 2 * 1024,
            t_rcd: 44,
            t_cas: 44,
            t_ccd: 16,
            t_wtr: 31,
            t_wr: 4,
            t_rtp: 46,
            t_bl: 4,
            t_cwd: 61,
            t_rp: 44,
            t_rrd: 16,
            t_ras: 112,
            t_rc: 271,
            t_faw: 181,
            system_mlp: 2.6,
            queue_factor: 1.55,
            t_refi: 15_600,
            t_rfc: 520,
        }
    }

    /// Total banks across the memory.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks
    }

    /// Lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_buffer_bytes as u64 / LINE_BYTES
    }

    /// Idle (unloaded) row-miss access latency in CPU cycles.
    pub fn miss_latency_cycles(&self) -> u64 {
        (self.t_rp + self.t_rcd + self.t_cas + self.t_bl) as u64
    }

    /// Idle row-hit access latency in CPU cycles.
    pub fn hit_latency_cycles(&self) -> u64 {
        (self.t_cas + self.t_bl) as u64
    }

    /// Peak data bandwidth in bytes per CPU cycle (all channels busy).
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * LINE_BYTES as f64 / self.t_bl as f64
    }

    /// Peak bandwidth in GB/s at `clock_ghz`.
    pub fn peak_bandwidth_gbps(&self, clock_ghz: f64) -> f64 {
        self.peak_bytes_per_cycle() * clock_ghz
    }

    /// Analytic service time (CPU cycles) for a *streaming* phase of
    /// `lines` line accesses with row-hit fraction `row_hit`.
    ///
    /// The phase is limited by whichever resource saturates first:
    /// channel data buses (`tBL` per line) or bank row cycles (`tRC` per
    /// miss, spread over all banks).
    pub fn streaming_cycles(&self, lines: u64, row_hit: f64) -> f64 {
        let row_hit = row_hit.clamp(0.0, 1.0);
        let bus = lines as f64 * self.t_bl as f64 / self.channels as f64;
        let misses = lines as f64 * (1.0 - row_hit);
        let bank = misses * self.t_rc as f64 / self.total_banks() as f64;
        bus.max(bank)
    }

    /// Analytic service time (CPU cycles) for a *dependent* phase:
    /// `chains` independent serial chains (one per core) of `lines` total
    /// accesses, each paying the full row-miss latency, floored by the
    /// streaming bandwidth bound.
    pub fn dependent_cycles(&self, lines: u64, chains: u32, row_hit: f64) -> f64 {
        let lat = row_hit * self.hit_latency_cycles() as f64
            + (1.0 - row_hit) * self.miss_latency_cycles() as f64;
        let serial = lines as f64 * lat / chains.max(1) as f64;
        serial.max(self.streaming_cycles(lines, row_hit))
    }

    /// Expected row-hit fraction for a sequential stream: every
    /// `lines_per_row`-th access opens a new row.
    pub fn sequential_row_hit(&self) -> f64 {
        1.0 - 1.0 / self.lines_per_row() as f64
    }

    /// Loaded per-access latency (CPU cycles) for a given row-hit mix:
    /// the unloaded hit/miss latency scaled by the queueing factor.
    pub fn loaded_latency_cycles(&self, row_hit: f64) -> f64 {
        let row_hit = row_hit.clamp(0.0, 1.0);
        let raw = row_hit * self.hit_latency_cycles() as f64
            + (1.0 - row_hit) * self.miss_latency_cycles() as f64;
        raw * self.queue_factor
    }

    /// Demand-bound service time (CPU cycles) for `lines` below-cache
    /// accesses of a *streaming* phase: latency-serialized up to the
    /// system MLP, floored by the bus/bank bound of
    /// [`DramConfig::streaming_cycles`].
    pub fn demand_streaming_cycles(&self, lines: u64, row_hit: f64) -> f64 {
        let serialized = lines as f64 * self.loaded_latency_cycles(row_hit) / self.system_mlp;
        serialized.max(self.streaming_cycles(lines, row_hit))
    }

    /// Demand-bound service time (CPU cycles) for a *dependent* phase:
    /// pointer-chasing chains overlap only across cores (capped), and see
    /// mostly row misses; the in-package memory's extra MLP does not help
    /// a chain (§VII-A: A*-Search gains just 1–1.1× on HBM).
    pub fn demand_dependent_cycles(&self, lines: u64, cores: u32, row_hit: f64) -> f64 {
        let overlap = (cores as f64).clamp(1.0, 4.0);
        let serialized = lines as f64 * self.loaded_latency_cycles(row_hit) / overlap;
        serialized.max(self.streaming_cycles(lines, row_hit))
    }
}

/// Per-bank trace-mode state.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the next activate may issue (tRC window).
    next_activate: u64,
    /// Earliest cycle the next column command may issue (tCCD).
    next_column: u64,
}

/// Trace-mode DRAM model: serves one line access at a time.
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    banks: Vec<BankState>,
    bus_free: Vec<u64>,
    /// Whether each channel's previous column command was a write (for
    /// the tWTR write→read turnaround).
    last_was_write: Vec<bool>,
    /// Per-rank next scheduled refresh (cycle).
    next_refresh: Vec<u64>,
    /// Refreshes performed.
    pub refreshes: u64,
    /// Completed accesses.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row activations (misses).
    pub activations: u64,
    /// Reads vs writes.
    pub writes: u64,
    /// Cycle at which the last access completed.
    pub last_completion: u64,
}

impl DramModel {
    /// Creates an idle memory.
    pub fn new(config: DramConfig) -> DramModel {
        DramModel {
            banks: vec![BankState::default(); config.total_banks() as usize],
            bus_free: vec![0; config.channels as usize],
            last_was_write: vec![false; config.channels as usize],
            next_refresh: vec![config.t_refi as u64; (config.channels * config.ranks) as usize],
            refreshes: 0,
            config,
            accesses: 0,
            row_hits: 0,
            activations: 0,
            writes: 0,
            last_completion: 0,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Maps a byte address to (channel, global bank index, row).
    ///
    /// The standard fine-grained interleave (row:column:bank:channel):
    /// consecutive lines rotate across channels, then across a channel's
    /// banks, so streams spread over every bank while each bank's open row
    /// still serves many accesses before a conflict.
    pub fn map(&self, addr: u64) -> (u32, u32, u64) {
        let block = addr / LINE_BYTES;
        let channel = (block % self.config.channels as u64) as u32;
        let x = block / self.config.channels as u64;
        let banks_per_channel = (self.config.ranks * self.config.banks) as u64;
        let bank_in_channel = (x % banks_per_channel) as u32;
        let y = x / banks_per_channel;
        let row = y / self.config.lines_per_row();
        let bank = channel * banks_per_channel as u32 + bank_in_channel;
        (channel, bank, row)
    }

    /// Serves a line access issued at `issue_cycle`; returns the
    /// completion cycle. Accesses must be issued in non-decreasing
    /// `issue_cycle` order (FR-FCFS arbitration is approximated FCFS).
    pub fn access(&mut self, addr: u64, write: bool, issue_cycle: u64) -> u64 {
        let (channel, bank_idx, row) = self.map(addr);
        let cfg = self.config;

        // Refresh: if this rank's refresh deadline has passed, it stalls
        // the access for tRFC and closes the rank's rows.
        let rank_idx = (bank_idx / cfg.banks) as usize;
        let mut refresh_stall = 0u64;
        while issue_cycle >= self.next_refresh[rank_idx] {
            refresh_stall = self.next_refresh[rank_idx] + cfg.t_rfc as u64;
            self.next_refresh[rank_idx] += cfg.t_refi as u64;
            self.refreshes += 1;
            let rank_base = rank_idx as u32 * cfg.banks;
            for b in rank_base..rank_base + cfg.banks {
                self.banks[b as usize].open_row = None;
            }
        }

        let bank = &mut self.banks[bank_idx as usize];
        let bus = &mut self.bus_free[channel as usize];
        let turnaround = &mut self.last_was_write[channel as usize];

        let mut start = issue_cycle.max(bank.next_column).max(refresh_stall);
        // Write→read turnaround: a read after a write waits tWTR on the
        // channel (Table I tWTR).
        if *turnaround && !write {
            start = start.max(*bus + cfg.t_wtr as u64);
        }
        // Reads pay CAS; writes pay the command-to-data delay tCWD and
        // the recovery tWR before the bank can precharge (folded into the
        // column spacing below).
        let column_latency = if write { cfg.t_cwd } else { cfg.t_cas } as u64;
        let data_latency;
        if bank.open_row == Some(row) {
            self.row_hits += 1;
            data_latency = column_latency;
        } else {
            // Precharge + activate respecting the tRC window.
            start = start.max(bank.next_activate);
            bank.next_activate = start + cfg.t_rc as u64;
            bank.open_row = Some(row);
            self.activations += 1;
            data_latency = (cfg.t_rp + cfg.t_rcd) as u64 + column_latency;
        }
        // Column commands pipeline: the burst begins once the command
        // latency elapses *and* the data bus frees up.
        let data_start = (start + data_latency).max(*bus);
        let completion = data_start + cfg.t_bl as u64;
        *bus = completion;
        let spacing = cfg.t_ccd as u64 + if write { cfg.t_wr as u64 } else { 0 };
        bank.next_column = start + spacing;
        *turnaround = write;

        self.accesses += 1;
        if write {
            self.writes += 1;
        }
        self.last_completion = self.last_completion.max(completion);
        completion
    }

    /// Sustained bandwidth of everything served so far, in bytes per
    /// cycle (zero before any access completes).
    pub fn sustained_bytes_per_cycle(&self) -> f64 {
        if self.last_completion == 0 {
            0.0
        } else {
            self.accesses as f64 * LINE_BYTES as f64 / self.last_completion as f64
        }
    }

    /// Row-hit fraction of the trace so far.
    pub fn row_hit_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let off = DramConfig::ddr4_offchip();
        assert_eq!(off.t_bl, 10);
        assert_eq!(off.t_rc, 271);
        assert_eq!(off.total_banks(), 64);
        assert_eq!(off.lines_per_row(), 128);
        let hbm = DramConfig::hbm_in_package();
        assert_eq!(hbm.t_bl, 4);
        assert_eq!(hbm.total_banks(), 256);
        assert_eq!(hbm.lines_per_row(), 32);
    }

    #[test]
    fn hbm_peaks_higher_than_offchip() {
        let off = DramConfig::ddr4_offchip().peak_bandwidth_gbps(2.0);
        let hbm = DramConfig::hbm_in_package().peak_bandwidth_gbps(2.0);
        assert!(hbm / off > 2.0, "hbm {hbm} vs off {off}");
    }

    #[test]
    fn sequential_stream_mostly_hits() {
        let mut m = DramModel::new(DramConfig::ddr4_offchip());
        for line in 0..10_000u64 {
            m.access(line * 64, false, 0);
        }
        assert!(m.row_hit_fraction() > 0.9, "hit {}", m.row_hit_fraction());
    }

    #[test]
    fn random_stream_mostly_misses() {
        let mut m = DramModel::new(DramConfig::ddr4_offchip());
        let mut addr = 12345u64;
        for _ in 0..5_000 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.access((addr % (1 << 34)) & !63, false, 0);
        }
        assert!(m.row_hit_fraction() < 0.3, "hit {}", m.row_hit_fraction());
    }

    #[test]
    fn sustained_stream_bandwidth_near_peak() {
        let cfg = DramConfig::ddr4_offchip();
        let mut m = DramModel::new(cfg);
        for line in 0..100_000u64 {
            m.access(line * 64, false, 0);
        }
        let sustained = m.sustained_bytes_per_cycle();
        let peak = cfg.peak_bytes_per_cycle();
        assert!(sustained > 0.7 * peak, "sustained {sustained} peak {peak}");
        assert!(sustained <= peak * 1.01);
    }

    #[test]
    fn analytic_streaming_matches_trace() {
        let cfg = DramConfig::ddr4_offchip();
        let mut m = DramModel::new(cfg);
        let lines = 50_000u64;
        for line in 0..lines {
            m.access(line * 64, false, 0);
        }
        let analytic = cfg.streaming_cycles(lines, m.row_hit_fraction());
        let trace = m.last_completion as f64;
        let ratio = trace / analytic;
        assert!(
            (0.8..1.3).contains(&ratio),
            "trace {trace} analytic {analytic}"
        );
    }

    #[test]
    fn dependent_slower_than_streaming() {
        let cfg = DramConfig::ddr4_offchip();
        let s = cfg.streaming_cycles(10_000, 0.9);
        let d = cfg.dependent_cycles(10_000, 1, 0.9);
        assert!(d > 5.0 * s, "dependent {d} streaming {s}");
        // More cores shorten dependent phases until bandwidth-bound.
        let d16 = cfg.dependent_cycles(10_000, 16, 0.9);
        assert!(d16 < d);
        assert!(d16 >= s);
    }

    #[test]
    fn mapping_is_stable_and_in_range() {
        let m = DramModel::new(DramConfig::hbm_in_package());
        for addr in (0..1_000_000u64).step_by(4096) {
            let (ch, bank, _row) = m.map(addr);
            assert!(ch < 4);
            assert!(bank < m.config().total_banks());
            assert_eq!(m.map(addr), m.map(addr));
        }
    }

    #[test]
    fn row_miss_latency_exceeds_hit() {
        let cfg = DramConfig::ddr4_offchip();
        assert!(cfg.miss_latency_cycles() > cfg.hit_latency_cycles());
        let mut m = DramModel::new(cfg);
        let c1 = m.access(0, false, 0); // cold miss
                                        // Same channel, same bank, same row: one stride of
                                        // channels × banks-per-channel lines.
        let same_row = (cfg.channels * cfg.ranks * cfg.banks) as u64 * 64;
        let c2 = m.access(same_row, false, c1) - c1; // row hit
        assert!(c1 > c2, "miss {c1} vs hit {c2}");
    }

    #[test]
    fn write_read_turnaround_costs_twtr() {
        let cfg = DramConfig::ddr4_offchip();
        // Same-bank row hits: read-after-read vs read-after-write.
        let stride = (cfg.channels * cfg.ranks * cfg.banks) as u64 * 64;
        let mut m = DramModel::new(cfg);
        let c0 = m.access(0, false, 0); // open the row
        let rr = m.access(stride, false, c0) - c0;
        let mut m = DramModel::new(cfg);
        let c0 = m.access(0, true, 0); // write opens the row
        let wr = m.access(stride, false, c0) - c0;
        assert!(wr > rr, "read-after-write {wr} vs read-after-read {rr}");
    }

    #[test]
    fn refresh_fires_and_closes_rows() {
        let cfg = DramConfig::ddr4_offchip();
        let mut m = DramModel::new(cfg);
        // First access opens a row well before the first refresh.
        m.access(0, false, 0);
        assert_eq!(m.refreshes, 0);
        // An access issued after tREFI triggers the rank's refresh and
        // re-opens the row (a miss).
        let hits_before = m.row_hits;
        let same_row = (cfg.channels * cfg.ranks * cfg.banks) as u64 * 64;
        m.access(same_row, false, cfg.t_refi as u64 + 1);
        assert_eq!(m.refreshes, 1);
        assert_eq!(m.row_hits, hits_before, "refresh closed the row");
        assert_eq!(m.activations, 2);
    }

    #[test]
    fn writes_counted() {
        let mut m = DramModel::new(DramConfig::ddr4_offchip());
        m.access(0, true, 0);
        m.access(64, false, 0);
        assert_eq!(m.writes, 1);
        assert_eq!(m.accesses, 2);
    }
}
