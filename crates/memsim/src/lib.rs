//! # rime-memsim
//!
//! Cycle-approximate models of the baseline memory systems RIME is
//! evaluated against (§VI-A, Table I): an off-chip DDR4 main memory, an
//! in-package HBM, an ideal unlimited-bandwidth memory, and the multicore
//! cache hierarchy that filters traffic before it reaches them.
//!
//! The paper drives these with a QEMU/ESESC cycle-accurate out-of-order
//! simulator; we substitute a two-layer methodology (see `DESIGN.md` §3):
//!
//! * [`cache`] is an exact, trace-driven set-associative cache model used
//!   to *measure* below-cache traffic for a workload at validation scale.
//! * [`dram`] is a bank/channel timing model that converts an access
//!   stream — or a phase-level traffic summary ([`perf`]) — into cycles,
//!   sustained bandwidth, and energy-relevant activity counts.
//! * [`perf`] combines calibrated per-key compute costs with the memory
//!   model: a workload is a sequence of [`perf::Phase`]s, each either
//!   bandwidth-bound streaming or latency-bound dependent accesses,
//!   executed on a configurable number of cores.
//!
//! # Example
//!
//! ```
//! use rime_memsim::{DramConfig, MemorySystem, SystemConfig};
//! use rime_memsim::perf::{Phase, Workload};
//!
//! // One streaming pass over 1M 8-byte keys, 20 CPU cycles per key.
//! let phase = Phase::streaming("pass", 1_000_000, 20.0, 2 * 8_000_000);
//! let workload = Workload::new(vec![phase]);
//! let ddr4 = SystemConfig::off_chip(16);
//! let hbm = SystemConfig::in_package(16);
//! let t_ddr4 = workload.execute(&ddr4).total_seconds();
//! let t_hbm = workload.execute(&hbm).total_seconds();
//! assert!(t_hbm <= t_ddr4);
//! assert!(matches!(ddr4.memory, MemorySystem::OffChip));
//! let _ = DramConfig::ddr4_offchip();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod cache;
pub mod config;
pub mod contention;
pub mod dram;
pub mod perf;

pub use cache::{Cache, CacheConfig, Hierarchy};
pub use config::{CoreConfig, MemorySystem, SystemConfig, CPU_GHZ};
pub use dram::{DramConfig, DramModel};
