//! Table I system configurations.
//!
//! The evaluated systems share the processor and cache hierarchy and
//! differ only in the memory below the shared L2: off-chip DDR4,
//! in-package HBM, the ideal unlimited-bandwidth memory used in §II-C's
//! characterization, or a RIME DIMM (modelled in `rime-core`).

use crate::cache::CacheConfig;
use crate::dram::DramConfig;

/// Core clock in GHz (Table I: 2 GHz). All DRAM timings are expressed in
/// CPU cycles at this clock, as the paper does.
pub const CPU_GHZ: f64 = 2.0;

/// Processor parameters (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Number of cores (Table I: up to 64).
    pub cores: u32,
    /// Issue width (Table I: 4).
    pub issue_width: u32,
    /// Reorder-buffer entries (Table I: 256).
    pub rob_entries: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
}

impl CoreConfig {
    /// The Table I processor with `cores` cores enabled.
    pub fn table1(cores: u32) -> CoreConfig {
        CoreConfig {
            cores,
            issue_width: 4,
            rob_entries: 256,
            clock_ghz: CPU_GHZ,
        }
    }
}

/// Which memory sits below the shared L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySystem {
    /// Ideal memory with unlimited bandwidth (latency only).
    Unlimited,
    /// Off-chip DDR4 DIMMs (Table I "Main Memory").
    OffChip,
    /// In-package high-bandwidth memory (Table I "HBM").
    InPackage,
}

impl MemorySystem {
    /// Short label used in figure output (matching the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            MemorySystem::Unlimited => "Unlimited",
            MemorySystem::OffChip => "Off-Chip (DDR4)",
            MemorySystem::InPackage => "In-Package (HBM)",
        }
    }

    /// The DRAM timing configuration, if the memory is a real DRAM.
    pub fn dram_config(&self) -> Option<DramConfig> {
        match self {
            MemorySystem::Unlimited => None,
            MemorySystem::OffChip => Some(DramConfig::ddr4_offchip()),
            MemorySystem::InPackage => Some(DramConfig::hbm_in_package()),
        }
    }
}

/// A complete baseline system: cores + caches + memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Processor configuration.
    pub core: CoreConfig,
    /// Private L1 instruction cache.
    pub l1i: CacheConfig,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// Memory below the L2.
    pub memory: MemorySystem,
}

impl SystemConfig {
    fn table1(cores: u32, memory: MemorySystem) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::table1(cores),
            l1i: CacheConfig::l1i_table1(),
            l1d: CacheConfig::l1d_table1(),
            l2: CacheConfig::l2_table1(),
            memory,
        }
    }

    /// Table I system with the off-chip DDR4 memory.
    pub fn off_chip(cores: u32) -> SystemConfig {
        SystemConfig::table1(cores, MemorySystem::OffChip)
    }

    /// Table I system with the in-package HBM.
    pub fn in_package(cores: u32) -> SystemConfig {
        SystemConfig::table1(cores, MemorySystem::InPackage)
    }

    /// Table I system with an ideal unlimited-bandwidth memory.
    pub fn unlimited(cores: u32) -> SystemConfig {
        SystemConfig::table1(cores, MemorySystem::Unlimited)
    }

    /// Usable capacity of the last-level cache in 8-byte keys — the
    /// working-set threshold below which sorting stops generating
    /// main-memory traffic (§III-B footnote 2).
    pub fn l2_capacity_keys(&self) -> u64 {
        self.l2.size_bytes / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core() {
        let c = CoreConfig::table1(64);
        assert_eq!(c.cores, 64);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.clock_ghz, 2.0);
    }

    #[test]
    fn memory_labels_match_paper_legends() {
        assert_eq!(MemorySystem::OffChip.label(), "Off-Chip (DDR4)");
        assert_eq!(MemorySystem::InPackage.label(), "In-Package (HBM)");
        assert_eq!(MemorySystem::Unlimited.label(), "Unlimited");
    }

    #[test]
    fn dram_configs_exist_for_real_memories() {
        assert!(MemorySystem::OffChip.dram_config().is_some());
        assert!(MemorySystem::InPackage.dram_config().is_some());
        assert!(MemorySystem::Unlimited.dram_config().is_none());
    }

    #[test]
    fn l2_keys_threshold() {
        let sys = SystemConfig::off_chip(16);
        assert_eq!(sys.l2_capacity_keys(), 8 * 1024 * 1024 / 8);
    }
}
