//! Sustained-bandwidth measurement (Fig. 1(c)).
//!
//! Fig. 1(c) plots the memory bandwidth a sort workload actually sustains
//! as the core count varies: with few cores the demand side cannot cover
//! the channels; with many cores the channels saturate. This module
//! measures that curve by pushing a configurable mixed access stream
//! through the trace-mode [`DramModel`] with a bounded number of
//! outstanding requests per core (the ROB/MSHR limit).

use crate::dram::{DramConfig, DramModel, LINE_BYTES};

/// A synthetic demand stream: `cores` cores each issue line accesses with
/// `gap_cycles` of compute between consecutive requests, over a working
/// set streamed sequentially (per core, disjoint regions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandStream {
    /// Requesting cores.
    pub cores: u32,
    /// CPU cycles of compute between a core's consecutive requests.
    pub gap_cycles: u64,
    /// Line accesses issued per core.
    pub lines_per_core: u64,
}

impl DemandStream {
    /// Measures sustained bandwidth in bytes/cycle on `config`.
    pub fn sustained_bytes_per_cycle(&self, config: DramConfig) -> f64 {
        let mut model = DramModel::new(config);
        // Each core streams a disjoint 1 GiB-aligned region.
        let mut next_issue: Vec<u64> = vec![0; self.cores as usize];
        let mut next_line: Vec<u64> = (0..self.cores as u64).map(|c| c << 24).collect();
        let mut remaining: Vec<u64> = vec![self.lines_per_core; self.cores as usize];
        let mut outstanding = remaining.clone();
        let _ = &mut outstanding;

        // Issue round-robin in time order: pick the core with the earliest
        // next_issue among those with work left.
        loop {
            let mut best: Option<usize> = None;
            for core in 0..self.cores as usize {
                if remaining[core] == 0 {
                    continue;
                }
                match best {
                    None => best = Some(core),
                    Some(b) if next_issue[core] < next_issue[b] => best = Some(core),
                    _ => {}
                }
            }
            let Some(core) = best else { break };
            let addr = next_line[core] * LINE_BYTES;
            let done = model.access(addr, false, next_issue[core]);
            next_line[core] += 1;
            remaining[core] -= 1;
            // The core waits for the data, computes, then issues again.
            next_issue[core] = done + self.gap_cycles;
        }
        model.sustained_bytes_per_cycle()
    }

    /// Sustained bandwidth in MB/s at `clock_ghz`.
    pub fn sustained_mbps(&self, config: DramConfig, clock_ghz: f64) -> f64 {
        self.sustained_bytes_per_cycle(config) * clock_ghz * 1e9 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(cores: u32) -> DemandStream {
        DemandStream {
            cores,
            gap_cycles: 200,
            lines_per_core: 2_000,
        }
    }

    #[test]
    fn bandwidth_grows_with_cores_then_saturates() {
        let cfg = DramConfig::ddr4_offchip();
        let b1 = stream(1).sustained_bytes_per_cycle(cfg);
        let b8 = stream(8).sustained_bytes_per_cycle(cfg);
        let b64 = stream(64).sustained_bytes_per_cycle(cfg);
        assert!(b8 > 2.0 * b1, "{b1} {b8}");
        assert!(b64 <= cfg.peak_bytes_per_cycle() * 1.01);
        assert!(b64 >= b8 * 0.9);
    }

    #[test]
    fn hbm_sustains_more_than_ddr4_when_saturated() {
        let off = stream(64).sustained_bytes_per_cycle(DramConfig::ddr4_offchip());
        let hbm = stream(64).sustained_bytes_per_cycle(DramConfig::hbm_in_package());
        assert!(hbm > off, "hbm {hbm} off {off}");
    }

    #[test]
    fn mbps_units() {
        let mbps = stream(4).sustained_mbps(DramConfig::ddr4_offchip(), 2.0);
        assert!(mbps > 100.0, "{mbps}");
    }
}
