//! Trace-driven cache hierarchy (Table I).
//!
//! Table I: 32 KB direct-mapped L1I, 32 KB 4-way LRU L1D, 8 MB 16-way LRU
//! shared L2, all with 64-byte blocks. This model is exact: it is used to
//! measure below-cache traffic for the sort kernels at validation scale
//! and to cross-check the analytic traffic formulas in `rime-kernels`
//! (Fig. 1's "memory accesses served by a memory system below the on-die
//! cache").
//!
//! Coherence is not modelled beyond a shared L2 — the evaluated kernels
//! partition their data between threads, so MESI traffic is negligible
//! compared to capacity misses.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Block (line) size in bytes.
    pub block_bytes: u32,
    /// Hit latency in CPU cycles.
    pub hit_cycles: u32,
    /// Miss (lookup) latency in CPU cycles.
    pub miss_cycles: u32,
}

impl CacheConfig {
    /// Table I L1 instruction cache: 32 KB direct-mapped, 64 B blocks, 2/2.
    pub fn l1i_table1() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 1,
            block_bytes: 64,
            hit_cycles: 2,
            miss_cycles: 2,
        }
    }

    /// Table I L1 data cache: 32 KB 4-way LRU, 64 B blocks, 2/2.
    pub fn l1d_table1() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            block_bytes: 64,
            hit_cycles: 2,
            miss_cycles: 2,
        }
    }

    /// Table I shared L2: 8 MB 16-way LRU, 64 B blocks, 15/12.
    pub fn l2_table1() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            ways: 16,
            block_bytes: 64,
            hit_cycles: 15,
            miss_cycles: 12,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.block_bytes as u64)
    }
}

/// One set-associative, write-allocate, write-back cache with LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: tags ordered most- to least-recently used.
    sets: Vec<Vec<(u64, bool)>>, // (tag, dirty)
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        Cache {
            config,
            sets: vec![Vec::new(); config.sets() as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far (each becomes a memory write).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Accesses byte address `addr`; returns `true` on hit. On a miss the
    /// line is allocated, possibly evicting (and counting a writeback for)
    /// a dirty victim.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.access_with_victim(addr, write).0
    }

    /// Like [`Cache::access`], additionally returning the byte address of
    /// the dirty victim line evicted by a miss, when one exists — the
    /// hierarchy propagates it to the next level as a write.
    pub fn access_with_victim(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let sets = self.config.sets();
        let block_bytes = self.config.block_bytes as u64;
        let block = addr / block_bytes;
        let set_idx = (block % sets) as usize;
        let tag = block / sets;
        let set = &mut self.sets[set_idx];

        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (t, dirty) = set.remove(pos);
            set.insert(0, (t, dirty || write));
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        let mut victim = None;
        if set.len() == self.config.ways as usize {
            let (vtag, dirty) = set.pop().expect("full set has a victim");
            if dirty {
                self.writebacks += 1;
                victim = Some((vtag * sets + set_idx as u64) * block_bytes);
            }
        }
        set.insert(0, (tag, write));
        (false, victim)
    }

    /// Empties the cache and resets statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

/// Per-core L1D caches in front of a shared L2: the data-side hierarchy
/// that filters kernel traffic before the memory system.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1d: Vec<Cache>,
    l2: Cache,
    /// Lines requested from memory (L2 misses).
    pub mem_reads: u64,
    /// Lines written back to memory (L2 dirty evictions, tracked live).
    pub mem_writes: u64,
}

impl Hierarchy {
    /// Builds the Table I hierarchy for `cores` cores.
    pub fn new(cores: u32, l1d: CacheConfig, l2: CacheConfig) -> Hierarchy {
        Hierarchy {
            l1d: (0..cores).map(|_| Cache::new(l1d)).collect(),
            l2: Cache::new(l2),
            mem_reads: 0,
            mem_writes: 0,
        }
    }

    /// Number of cores (L1D instances).
    pub fn cores(&self) -> u32 {
        self.l1d.len() as u32
    }

    /// Core `core` accesses byte address `addr`. Returns the access
    /// latency in CPU cycles (L1 hit, L2 hit, or memory-bound miss with
    /// the lookup costs accumulated). Dirty victims propagate: L1 → L2 as
    /// a write, L2 → memory as a memory write.
    pub fn access(&mut self, core: u32, addr: u64, write: bool) -> u32 {
        let l1 = &mut self.l1d[core as usize];
        let l1_cfg = *l1.config();
        let (l1_hit, l1_victim) = l1.access_with_victim(addr, write);
        if let Some(victim) = l1_victim {
            let (_, l2_victim) = self.l2.access_with_victim(victim, true);
            if l2_victim.is_some() {
                self.mem_writes += 1;
            }
        }
        if l1_hit {
            return l1_cfg.hit_cycles;
        }
        let l2_cfg = *self.l2.config();
        let (l2_hit, l2_victim) = self.l2.access_with_victim(addr, write);
        if l2_victim.is_some() {
            self.mem_writes += 1;
        }
        if l2_hit {
            return l1_cfg.miss_cycles + l2_cfg.hit_cycles;
        }
        self.mem_reads += 1;
        l1_cfg.miss_cycles + l2_cfg.miss_cycles
    }

    /// Total below-cache line accesses so far (reads + writebacks) — the
    /// quantity plotted in Fig. 1(a,b).
    pub fn mem_accesses(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }

    /// Resets all levels and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.l1d {
            c.reset();
        }
        self.l2.reset();
        self.mem_reads = 0;
        self.mem_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 4 * 64 * ways as u64, // 4 sets
            ways,
            block_bytes: 64,
            hit_cycles: 2,
            miss_cycles: 2,
        })
    }

    #[test]
    fn table1_geometries() {
        assert_eq!(CacheConfig::l1i_table1().sets(), 512);
        assert_eq!(CacheConfig::l1d_table1().sets(), 128);
        assert_eq!(CacheConfig::l2_table1().sets(), 8192);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache(2);
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false), "same 64B block");
        assert!(!c.access(64, false), "next block misses");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2);
        // Two blocks mapping to the same set (set stride = 4 blocks).
        c.access(0, false); // A
        c.access(4 * 64, false); // B (same set 0)
        c.access(0, false); // touch A → B is LRU
        c.access(8 * 64, false); // C evicts B
        assert!(c.access(0, false), "A still resident");
        assert!(!c.access(4 * 64, false), "B was evicted");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache(1); // direct mapped, 4 sets
        c.access(0, true); // dirty A in set 0
        c.access(4 * 64, false); // evicts dirty A
        assert_eq!(c.writebacks(), 1);
        c.access(8 * 64, false); // evicts clean block
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = small_cache(1);
        c.access(0, false);
        c.access(4 * 64, false);
        assert!(!c.access(0, false), "conflict evicted block 0");
    }

    #[test]
    fn hierarchy_filters_to_memory() {
        let mut h = Hierarchy::new(2, CacheConfig::l1d_table1(), CacheConfig::l2_table1());
        // A streaming scan touches each line once → every line reaches memory.
        for line in 0..1000u64 {
            h.access(0, line * 64, false);
        }
        assert_eq!(h.mem_reads, 1000);
        // Re-scan: the L2 holds them all now.
        for line in 0..1000u64 {
            h.access(1, line * 64, false);
        }
        assert_eq!(h.mem_reads, 1000, "second scan served by shared L2");
        assert_eq!(h.cores(), 2);
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let mut h = Hierarchy::new(1, CacheConfig::l1d_table1(), CacheConfig::l2_table1());
        let miss = h.access(0, 0, false);
        let hit = h.access(0, 0, false);
        assert!(miss > hit);
        assert_eq!(hit, 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = Hierarchy::new(1, CacheConfig::l1d_table1(), CacheConfig::l2_table1());
        h.access(0, 0, true);
        h.reset();
        assert_eq!(h.mem_reads, 0);
        assert_eq!(h.mem_accesses(), 0);
    }
}
