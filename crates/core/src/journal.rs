//! Crash-consistent write-ahead journal for the command plane.
//!
//! The paper's premise is that ranking happens *inside* nonvolatile
//! memristive arrays — the arrays are simultaneously storage and compute
//! — so the honest system model must survive a driver crash without
//! losing allocation state, session state, or in-flight extraction
//! progress. This module supplies the durability layer the
//! [`crate::cmd::Executor`] builds on:
//!
//! * a **record codec** for [`Command`], [`Outcome`], [`RimeError`], and
//!   [`Effects`] — little-endian, length-prefixed, append-only;
//! * **framing** with a per-record CRC-32 so torn writes are *detected*,
//!   never silently half-applied: `[u32 len][kind + body][u32 crc]`
//!   under the `RIMEWAL1` magic;
//! * the **commit-marker protocol**: an [`JournalRecord::Intent`] is
//!   appended *before* a command dispatches and an
//!   [`JournalRecord::Outcome`] *after*, so recovery can always tell a
//!   committed command from an interrupted one;
//! * periodic [`JournalRecord::Checkpoint`]s carrying the executor's
//!   full marshalled state (driver allocator, region tables, sessions,
//!   per-chip snapshots), bounding replay work;
//! * [`scan`] — a strict, typed reader that distinguishes a torn *tail*
//!   (tolerated, truncated on recovery) from interior corruption
//!   (refused with [`JournalError::BadChecksum`]);
//! * pluggable [`JournalStore`] backends: [`MemJournalStore`] for tests
//!   and the crash harness, [`FileJournalStore`] for real files — every
//!   I/O failure surfaces as a typed [`JournalError::Io`], never an
//!   `unwrap`;
//! * the `CrashPoint` fault injector (behind the `crash-test`
//!   feature) that `tests/crash_recovery.rs` uses to kill the executor
//!   at every journaling/dispatch step and prove recovery converges.
//!
//! The recovery algorithm itself lives in
//! [`crate::cmd::Executor::recover`]; this module owns everything that
//! touches bytes.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rime_memristive::encoding::FormatKind;
use rime_memristive::{
    ArrayState, Bitmap, ChipState, Direction, Error as ChipError, KeyFormat, MatState, OpCounters,
};

use crate::cmd::{lock_recover, Command, Outcome};
use crate::device::Region;
use crate::error::RimeError;
use crate::telemetry::Effects;

/// Journal file magic: identifies format and version in one probe.
pub(crate) const MAGIC: &[u8; 8] = b"RIMEWAL1";

const KIND_INTENT: u8 = 1;
const KIND_OUTCOME: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;

/// Decoded vector lengths are sanity-capped so a corrupt-but-CRC-valid
/// length field cannot request an absurd allocation.
const MAX_DECODE_ITEMS: u64 = 1 << 28;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed failures of the journal layer. Every filesystem or decode
/// problem becomes one of these — the journal never panics on bad input
/// and never partially applies a record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JournalError {
    /// An underlying store operation failed. `kind` is the stable
    /// `std::io::ErrorKind` debug name; `message` the OS text.
    Io {
        /// Which store operation failed (`open`, `append`, `read`,
        /// `truncate`, …).
        op: String,
        /// `io::ErrorKind` of the failure, in `Debug` form.
        kind: String,
        /// Human-readable OS error text.
        message: String,
    },
    /// The store's first bytes are not the `RIMEWAL1` magic.
    BadMagic,
    /// Decoding ran past the end of the buffer at `offset` — a record
    /// or blob was cut short.
    TruncatedRecord {
        /// Byte offset (within the decoded buffer) where data ran out.
        offset: u64,
    },
    /// A record's stored CRC-32 does not match its payload.
    BadChecksum {
        /// Byte offset of the corrupt record's length prefix.
        offset: u64,
    },
    /// A payload was structurally undecodable (unknown tag, invalid
    /// format width, non-canonical content) despite passing the CRC.
    Decode {
        /// What failed to decode.
        what: String,
    },
    /// Replaying the journal tail produced a result or effect different
    /// from the recorded one — the recovered device would not be
    /// bit-identical, so recovery refuses.
    ReplayDivergence {
        /// Ordinal of the diverging command.
        ordinal: u64,
    },
    /// A checkpoint's shape does not match the device configuration it
    /// is being restored into.
    CheckpointMismatch {
        /// What disagreed.
        what: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, kind, message } => {
                write!(f, "journal store {op} failed ({kind}): {message}")
            }
            JournalError::BadMagic => write!(f, "not a RIME journal (bad magic)"),
            JournalError::TruncatedRecord { offset } => {
                write!(f, "journal data truncated at byte {offset}")
            }
            JournalError::BadChecksum { offset } => {
                write!(f, "journal record at byte {offset} fails its checksum")
            }
            JournalError::Decode { what } => write!(f, "undecodable journal payload: {what}"),
            JournalError::ReplayDivergence { ordinal } => {
                write!(
                    f,
                    "replay of command ordinal {ordinal} diverged from the journal"
                )
            }
            JournalError::CheckpointMismatch { what } => {
                write!(f, "checkpoint does not fit this device: {what}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(op: &str, e: std::io::Error) -> JournalError {
    JournalError::Io {
        op: op.to_string(),
        kind: format!("{:?}", e.kind()),
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — the workspace is offline, so it is
// hand-rolled; journal records are small enough that the bitwise form
// is not a bottleneck.
// ---------------------------------------------------------------------

/// CRC-32 over `bytes` (IEEE polynomial, reflected, init/xorout all-1s).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Little-endian primitive codec
// ---------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a byte slice. Reading past
/// the end yields [`JournalError::TruncatedRecord`] with the offset —
/// never a panic.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        if self.bytes.len() - self.pos < n {
            return Err(JournalError::TruncatedRecord {
                offset: self.pos as u64,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, JournalError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn str_(&mut self) -> Result<String, JournalError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| JournalError::Decode {
            what: "non-UTF-8 string".to_string(),
        })
    }

    /// Reads a `u32` element count and sanity-checks it against both the
    /// global cap and the bytes actually remaining (`elem_size` each),
    /// so corrupt lengths fail typed before any allocation.
    pub(crate) fn len_prefix(&mut self, elem_size: usize) -> Result<usize, JournalError> {
        let n = u64::from(self.u32()?);
        if n > MAX_DECODE_ITEMS {
            return Err(JournalError::Decode {
                what: format!("length {n} exceeds sanity cap"),
            });
        }
        let need = (n as usize).saturating_mul(elem_size);
        if self.bytes.len() - self.pos < need {
            return Err(JournalError::TruncatedRecord {
                offset: self.pos as u64,
            });
        }
        Ok(n as usize)
    }

    pub(crate) fn u64_vec(&mut self) -> Result<Vec<u64>, JournalError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Asserts the buffer is fully consumed (strict decode).
    pub(crate) fn finish(self, what: &str) -> Result<(), JournalError> {
        if self.pos != self.bytes.len() {
            return Err(JournalError::Decode {
                what: format!("{what}: {} trailing bytes", self.bytes.len() - self.pos),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Domain codecs
// ---------------------------------------------------------------------

/// Maps a decoded format name back onto the fixed `&'static str` set
/// [`KeyFormat::name`] produces — the only way to rebuild the
/// `&'static str` fields of [`RimeError::TypeMismatch`] and friends.
fn intern_format_name(name: &str) -> Result<&'static str, JournalError> {
    for candidate in ["unsigned", "signed", "float"] {
        if name == candidate {
            return Ok(candidate);
        }
    }
    Err(JournalError::Decode {
        what: format!("unknown format name {name:?}"),
    })
}

pub(crate) fn put_format(buf: &mut Vec<u8>, format: KeyFormat) {
    put_u8(
        buf,
        match format.kind() {
            FormatKind::Unsigned => 0,
            FormatKind::Signed => 1,
            FormatKind::Float => 2,
        },
    );
    put_u16(buf, format.bits() - format.frac_bits());
    put_u16(buf, format.frac_bits());
}

pub(crate) fn get_format(d: &mut Dec<'_>) -> Result<KeyFormat, JournalError> {
    let kind = d.u8()?;
    let int_bits = d.u16()?;
    let frac_bits = d.u16()?;
    let total = u32::from(int_bits) + u32::from(frac_bits);
    // The KeyFormat constructors assert on width, so validate first and
    // fail typed instead.
    match kind {
        0 if (1..=64).contains(&total) => Ok(KeyFormat::unsigned_fixed(int_bits, frac_bits)),
        1 if (2..=64).contains(&total) => Ok(KeyFormat::signed_fixed(int_bits, frac_bits)),
        2 if (int_bits, frac_bits) == (32, 0) => Ok(KeyFormat::FLOAT32),
        2 if (int_bits, frac_bits) == (64, 0) => Ok(KeyFormat::FLOAT64),
        _ => Err(JournalError::Decode {
            what: format!("invalid key format (kind {kind}, {int_bits}+{frac_bits} bits)"),
        }),
    }
}

pub(crate) fn put_direction(buf: &mut Vec<u8>, direction: Direction) {
    put_u8(
        buf,
        match direction {
            Direction::Min => 0,
            Direction::Max => 1,
        },
    );
}

pub(crate) fn get_direction(d: &mut Dec<'_>) -> Result<Direction, JournalError> {
    match d.u8()? {
        0 => Ok(Direction::Min),
        1 => Ok(Direction::Max),
        tag => Err(JournalError::Decode {
            what: format!("invalid direction tag {tag}"),
        }),
    }
}

pub(crate) fn put_region(buf: &mut Vec<u8>, region: Region) {
    put_u64(buf, region.id);
    put_u64(buf, region.start);
    put_u64(buf, region.len);
}

pub(crate) fn get_region(d: &mut Dec<'_>) -> Result<Region, JournalError> {
    Ok(Region {
        id: d.u64()?,
        start: d.u64()?,
        len: d.u64()?,
    })
}

pub(crate) fn put_counters(buf: &mut Vec<u8>, c: &OpCounters) {
    put_u64(buf, c.column_search_steps);
    put_u64(buf, c.mat_column_searches);
    put_u64(buf, c.row_reads);
    put_u64(buf, c.row_writes);
    put_u64(buf, c.select_loads);
    put_u64(buf, c.htree_traversals);
    put_u64(buf, c.init_ops);
    put_u64(buf, c.extractions);
}

pub(crate) fn get_counters(d: &mut Dec<'_>) -> Result<OpCounters, JournalError> {
    Ok(OpCounters {
        column_search_steps: d.u64()?,
        mat_column_searches: d.u64()?,
        row_reads: d.u64()?,
        row_writes: d.u64()?,
        select_loads: d.u64()?,
        htree_traversals: d.u64()?,
        init_ops: d.u64()?,
        extractions: d.u64()?,
    })
}

pub(crate) fn put_command(buf: &mut Vec<u8>, command: &Command<'_>) {
    match command {
        Command::Alloc { len } => {
            put_u8(buf, 0);
            put_u64(buf, *len);
        }
        Command::Free { region } => {
            put_u8(buf, 1);
            put_region(buf, *region);
        }
        Command::Write {
            region,
            offset,
            raw,
            format,
        } => {
            put_u8(buf, 2);
            put_region(buf, *region);
            put_u64(buf, *offset);
            put_u32(buf, raw.len() as u32);
            for &word in raw.iter() {
                put_u64(buf, word);
            }
            put_format(buf, *format);
        }
        Command::Read { region, offset, n } => {
            put_u8(buf, 3);
            put_region(buf, *region);
            put_u64(buf, *offset);
            put_u64(buf, *n);
        }
        Command::Init {
            region,
            offset,
            len,
            format,
        } => {
            put_u8(buf, 4);
            put_region(buf, *region);
            put_u64(buf, *offset);
            put_u64(buf, *len);
            put_format(buf, *format);
        }
        Command::Extract {
            region,
            format,
            direction,
        } => {
            put_u8(buf, 5);
            put_region(buf, *region);
            put_format(buf, *format);
            put_direction(buf, *direction);
        }
        Command::ExtractBatch {
            region,
            format,
            direction,
            k,
        } => {
            put_u8(buf, 6);
            put_region(buf, *region);
            put_format(buf, *format);
            put_direction(buf, *direction);
            put_u64(buf, *k as u64);
        }
        Command::FifoNext { region } => {
            put_u8(buf, 7);
            put_region(buf, *region);
        }
    }
}

pub(crate) fn get_command(d: &mut Dec<'_>) -> Result<Command<'static>, JournalError> {
    match d.u8()? {
        0 => Ok(Command::Alloc { len: d.u64()? }),
        1 => Ok(Command::Free {
            region: get_region(d)?,
        }),
        2 => {
            let region = get_region(d)?;
            let offset = d.u64()?;
            let raw = d.u64_vec()?;
            let format = get_format(d)?;
            Ok(Command::Write {
                region,
                offset,
                raw: raw.into(),
                format,
            })
        }
        3 => Ok(Command::Read {
            region: get_region(d)?,
            offset: d.u64()?,
            n: d.u64()?,
        }),
        4 => Ok(Command::Init {
            region: get_region(d)?,
            offset: d.u64()?,
            len: d.u64()?,
            format: get_format(d)?,
        }),
        5 => Ok(Command::Extract {
            region: get_region(d)?,
            format: get_format(d)?,
            direction: get_direction(d)?,
        }),
        6 => Ok(Command::ExtractBatch {
            region: get_region(d)?,
            format: get_format(d)?,
            direction: get_direction(d)?,
            k: usize::try_from(d.u64()?).map_err(|_| JournalError::Decode {
                what: "batch size exceeds usize".to_string(),
            })?,
        }),
        7 => Ok(Command::FifoNext {
            region: get_region(d)?,
        }),
        tag => Err(JournalError::Decode {
            what: format!("unknown command tag {tag}"),
        }),
    }
}

fn put_hit(buf: &mut Vec<u8>, hit: &Option<(u64, u64)>) {
    match hit {
        None => put_u8(buf, 0),
        Some((slot, raw)) => {
            put_u8(buf, 1);
            put_u64(buf, *slot);
            put_u64(buf, *raw);
        }
    }
}

fn get_hit(d: &mut Dec<'_>) -> Result<Option<(u64, u64)>, JournalError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some((d.u64()?, d.u64()?))),
        tag => Err(JournalError::Decode {
            what: format!("invalid option tag {tag}"),
        }),
    }
}

pub(crate) fn put_outcome(buf: &mut Vec<u8>, outcome: &Outcome) {
    match outcome {
        Outcome::Region(region) => {
            put_u8(buf, 0);
            put_region(buf, *region);
        }
        Outcome::Done => put_u8(buf, 1),
        Outcome::Keys(keys) => {
            put_u8(buf, 2);
            put_u32(buf, keys.len() as u32);
            for &key in keys {
                put_u64(buf, key);
            }
        }
        Outcome::Hit(hit) => {
            put_u8(buf, 3);
            put_hit(buf, hit);
        }
        Outcome::Hits(hits) => {
            put_u8(buf, 4);
            put_u32(buf, hits.len() as u32);
            for &(slot, raw) in hits {
                put_u64(buf, slot);
                put_u64(buf, raw);
            }
        }
    }
}

pub(crate) fn get_outcome(d: &mut Dec<'_>) -> Result<Outcome, JournalError> {
    match d.u8()? {
        0 => Ok(Outcome::Region(get_region(d)?)),
        1 => Ok(Outcome::Done),
        2 => Ok(Outcome::Keys(d.u64_vec()?)),
        3 => Ok(Outcome::Hit(get_hit(d)?)),
        4 => {
            let n = d.len_prefix(16)?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                hits.push((d.u64()?, d.u64()?));
            }
            Ok(Outcome::Hits(hits))
        }
        tag => Err(JournalError::Decode {
            what: format!("unknown outcome tag {tag}"),
        }),
    }
}

fn put_chip_error(buf: &mut Vec<u8>, e: &ChipError) {
    match e {
        ChipError::AddressOutOfRange { addr, capacity } => {
            put_u8(buf, 0);
            put_u64(buf, *addr);
            put_u64(buf, *capacity);
        }
        ChipError::EmptyRange { begin, end } => {
            put_u8(buf, 1);
            put_u64(buf, *begin);
            put_u64(buf, *end);
        }
        ChipError::NotInitialized => put_u8(buf, 2),
        ChipError::KeyTooWide { bits, max } => {
            put_u8(buf, 3);
            put_u16(buf, *bits);
            put_u16(buf, *max);
        }
        ChipError::FormatMismatch { stored, requested } => {
            put_u8(buf, 4);
            put_str(buf, stored);
            put_str(buf, requested);
        }
        // `ChipError` is non_exhaustive upstream; new variants must get
        // a codec arm before they can transit the journal.
        other => unreachable!("unencodable chip error {other:?}"),
    }
}

fn get_chip_error(d: &mut Dec<'_>) -> Result<ChipError, JournalError> {
    match d.u8()? {
        0 => Ok(ChipError::AddressOutOfRange {
            addr: d.u64()?,
            capacity: d.u64()?,
        }),
        1 => Ok(ChipError::EmptyRange {
            begin: d.u64()?,
            end: d.u64()?,
        }),
        2 => Ok(ChipError::NotInitialized),
        3 => Ok(ChipError::KeyTooWide {
            bits: d.u16()?,
            max: d.u16()?,
        }),
        4 => Ok(ChipError::FormatMismatch {
            stored: intern_format_name(&d.str_()?)?,
            requested: intern_format_name(&d.str_()?)?,
        }),
        tag => Err(JournalError::Decode {
            what: format!("unknown chip error tag {tag}"),
        }),
    }
}

fn put_journal_error(buf: &mut Vec<u8>, e: &JournalError) {
    match e {
        JournalError::Io { op, kind, message } => {
            put_u8(buf, 0);
            put_str(buf, op);
            put_str(buf, kind);
            put_str(buf, message);
        }
        JournalError::BadMagic => put_u8(buf, 1),
        JournalError::TruncatedRecord { offset } => {
            put_u8(buf, 2);
            put_u64(buf, *offset);
        }
        JournalError::BadChecksum { offset } => {
            put_u8(buf, 3);
            put_u64(buf, *offset);
        }
        JournalError::Decode { what } => {
            put_u8(buf, 4);
            put_str(buf, what);
        }
        JournalError::ReplayDivergence { ordinal } => {
            put_u8(buf, 5);
            put_u64(buf, *ordinal);
        }
        JournalError::CheckpointMismatch { what } => {
            put_u8(buf, 6);
            put_str(buf, what);
        }
    }
}

fn get_journal_error(d: &mut Dec<'_>) -> Result<JournalError, JournalError> {
    match d.u8()? {
        0 => Ok(JournalError::Io {
            op: d.str_()?,
            kind: d.str_()?,
            message: d.str_()?,
        }),
        1 => Ok(JournalError::BadMagic),
        2 => Ok(JournalError::TruncatedRecord { offset: d.u64()? }),
        3 => Ok(JournalError::BadChecksum { offset: d.u64()? }),
        4 => Ok(JournalError::Decode { what: d.str_()? }),
        5 => Ok(JournalError::ReplayDivergence { ordinal: d.u64()? }),
        6 => Ok(JournalError::CheckpointMismatch { what: d.str_()? }),
        tag => Err(JournalError::Decode {
            what: format!("unknown journal error tag {tag}"),
        }),
    }
}

pub(crate) fn put_rime_error(buf: &mut Vec<u8>, e: &RimeError) {
    match e {
        RimeError::OutOfContiguousMemory {
            requested,
            largest_free,
        } => {
            put_u8(buf, 0);
            put_u64(buf, *requested);
            put_u64(buf, *largest_free);
        }
        RimeError::InvalidRegion => put_u8(buf, 1),
        RimeError::OutOfBounds { offset, len } => {
            put_u8(buf, 2);
            put_u64(buf, *offset);
            put_u64(buf, *len);
        }
        RimeError::NotInitialized => put_u8(buf, 3),
        RimeError::TypeMismatch { stored, requested } => {
            put_u8(buf, 4);
            put_str(buf, stored);
            put_str(buf, requested);
        }
        RimeError::Chip(chip) => {
            put_u8(buf, 5);
            put_chip_error(buf, chip);
        }
        RimeError::Journal(journal) => {
            put_u8(buf, 6);
            put_journal_error(buf, journal);
        }
    }
}

pub(crate) fn get_rime_error(d: &mut Dec<'_>) -> Result<RimeError, JournalError> {
    match d.u8()? {
        0 => Ok(RimeError::OutOfContiguousMemory {
            requested: d.u64()?,
            largest_free: d.u64()?,
        }),
        1 => Ok(RimeError::InvalidRegion),
        2 => Ok(RimeError::OutOfBounds {
            offset: d.u64()?,
            len: d.u64()?,
        }),
        3 => Ok(RimeError::NotInitialized),
        4 => Ok(RimeError::TypeMismatch {
            stored: intern_format_name(&d.str_()?)?,
            requested: intern_format_name(&d.str_()?)?,
        }),
        5 => Ok(RimeError::Chip(get_chip_error(d)?)),
        6 => Ok(RimeError::Journal(get_journal_error(d)?)),
        tag => Err(JournalError::Decode {
            what: format!("unknown error tag {tag}"),
        }),
    }
}

pub(crate) fn put_result(buf: &mut Vec<u8>, result: &Result<Outcome, RimeError>) {
    match result {
        Ok(outcome) => {
            put_u8(buf, 0);
            put_outcome(buf, outcome);
        }
        Err(error) => {
            put_u8(buf, 1);
            put_rime_error(buf, error);
        }
    }
}

pub(crate) fn get_result(d: &mut Dec<'_>) -> Result<Result<Outcome, RimeError>, JournalError> {
    match d.u8()? {
        0 => Ok(Ok(get_outcome(d)?)),
        1 => Ok(Err(get_rime_error(d)?)),
        tag => Err(JournalError::Decode {
            what: format!("invalid result tag {tag}"),
        }),
    }
}

pub(crate) fn put_effects(buf: &mut Vec<u8>, effects: &Effects) {
    let deltas = effects.chip_deltas();
    put_u32(buf, deltas.len() as u32);
    for (chip, delta) in deltas {
        put_u32(buf, *chip);
        put_counters(buf, delta);
    }
    put_u64(buf, effects.interface_transfers());
}

pub(crate) fn get_effects(d: &mut Dec<'_>) -> Result<Effects, JournalError> {
    let n = d.len_prefix(4 + 64)?;
    let mut effects = Effects::default();
    for _ in 0..n {
        let chip = d.u32()?;
        let delta = get_counters(d)?;
        effects.record_chip(chip, delta);
    }
    effects.add_transfers(d.u64()?);
    Ok(effects)
}

// ---------------------------------------------------------------------
// Chip-state codec (checkpoint payloads)
// ---------------------------------------------------------------------

fn put_bitmap(buf: &mut Vec<u8>, bitmap: &Bitmap) {
    put_u64(buf, bitmap.len() as u64);
    for &word in bitmap.words() {
        put_u64(buf, word);
    }
}

fn get_bitmap(d: &mut Dec<'_>) -> Result<Bitmap, JournalError> {
    let len = d.u64()?;
    if len > MAX_DECODE_ITEMS {
        return Err(JournalError::Decode {
            what: format!("bitmap length {len} exceeds sanity cap"),
        });
    }
    let len = len as usize;
    let mut bitmap = Bitmap::zeros(len);
    for word_idx in 0..len.div_ceil(64) {
        let word = d.u64()?;
        for bit in 0..64 {
            let idx = word_idx * 64 + bit;
            let set = (word >> bit) & 1 == 1;
            if idx < len {
                if set {
                    bitmap.set(idx, true);
                }
            } else if set {
                return Err(JournalError::Decode {
                    what: "bitmap tail bits set".to_string(),
                });
            }
        }
    }
    Ok(bitmap)
}

fn put_array_state(buf: &mut Vec<u8>, state: &ArrayState) {
    put_u32(buf, state.rows.len() as u32);
    for &row in &state.rows {
        put_u64(buf, row);
    }
    put_u32(buf, state.wear.len() as u32);
    for &wear in &state.wear {
        put_u32(buf, wear);
    }
    put_u32(buf, state.faults.len() as u32);
    for &(row, bit, stuck) in &state.faults {
        put_u64(buf, row as u64);
        put_u16(buf, bit);
        put_u8(buf, u8::from(stuck));
    }
}

fn get_array_state(d: &mut Dec<'_>) -> Result<ArrayState, JournalError> {
    let rows = d.u64_vec()?;
    let wear_len = d.len_prefix(4)?;
    let wear = (0..wear_len).map(|_| d.u32()).collect::<Result<_, _>>()?;
    let fault_len = d.len_prefix(11)?;
    let mut faults = Vec::with_capacity(fault_len);
    for _ in 0..fault_len {
        let row = usize::try_from(d.u64()?).map_err(|_| JournalError::Decode {
            what: "fault row exceeds usize".to_string(),
        })?;
        let bit = d.u16()?;
        let stuck = match d.u8()? {
            0 => false,
            1 => true,
            tag => {
                return Err(JournalError::Decode {
                    what: format!("invalid bool tag {tag}"),
                })
            }
        };
        faults.push((row, bit, stuck));
    }
    Ok(ArrayState { rows, wear, faults })
}

fn put_mat_state(buf: &mut Vec<u8>, state: &MatState) {
    put_u32(buf, state.arrays.len() as u32);
    for array in &state.arrays {
        put_array_state(buf, array);
    }
}

fn get_mat_state(d: &mut Dec<'_>) -> Result<MatState, JournalError> {
    let n = d.len_prefix(1)?;
    let arrays = (0..n)
        .map(|_| get_array_state(d))
        .collect::<Result<_, _>>()?;
    Ok(MatState { arrays })
}

pub(crate) fn put_chip_state(buf: &mut Vec<u8>, state: &ChipState) {
    put_u32(buf, state.mats.len() as u32);
    for mat in &state.mats {
        match mat {
            None => put_u8(buf, 0),
            Some(mat) => {
                put_u8(buf, 1);
                put_mat_state(buf, mat);
            }
        }
    }
    put_bitmap(buf, &state.excluded);
    match state.format {
        None => put_u8(buf, 0),
        Some(format) => {
            put_u8(buf, 1);
            put_format(buf, format);
        }
    }
    match state.range {
        None => put_u8(buf, 0),
        Some((begin, end)) => {
            put_u8(buf, 1);
            put_u64(buf, begin);
            put_u64(buf, end);
        }
    }
    put_counters(buf, &state.counters);
}

pub(crate) fn get_chip_state(d: &mut Dec<'_>) -> Result<ChipState, JournalError> {
    let n = d.len_prefix(1)?;
    let mut mats = Vec::with_capacity(n);
    for _ in 0..n {
        mats.push(match d.u8()? {
            0 => None,
            1 => Some(get_mat_state(d)?),
            tag => {
                return Err(JournalError::Decode {
                    what: format!("invalid option tag {tag}"),
                })
            }
        });
    }
    let excluded = get_bitmap(d)?;
    let format = match d.u8()? {
        0 => None,
        1 => Some(get_format(d)?),
        tag => {
            return Err(JournalError::Decode {
                what: format!("invalid option tag {tag}"),
            })
        }
    };
    let range = match d.u8()? {
        0 => None,
        1 => Some((d.u64()?, d.u64()?)),
        tag => {
            return Err(JournalError::Decode {
                what: format!("invalid option tag {tag}"),
            })
        }
    };
    let counters = get_counters(d)?;
    Ok(ChipState {
        mats,
        excluded,
        format,
        range,
        counters,
    })
}

// ---------------------------------------------------------------------
// Records and framing
// ---------------------------------------------------------------------

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Commit-marker half one: command `ordinal` is *about to*
    /// dispatch. Durable before any device state changes.
    Intent {
        /// Zero-based position in the committed command sequence.
        ordinal: u64,
        /// The command itself, decoded into owning form.
        command: Command<'static>,
    },
    /// Commit-marker half two: command `ordinal` finished with this
    /// result and these telemetry effects. Its presence *is* the commit.
    Outcome {
        /// Ordinal this outcome pairs with.
        ordinal: u64,
        /// The marshalled result, success or typed failure.
        result: Result<Outcome, RimeError>,
        /// Per-chip counter deltas and interface transfers.
        effects: Effects,
    },
    /// Full marshalled executor state as of `committed` commands; replay
    /// after recovery starts here instead of from the beginning.
    Checkpoint {
        /// Commands committed when the checkpoint was taken.
        committed: u64,
        /// Opaque state blob (see `Executor::checkpoint_bytes`).
        state: Vec<u8>,
    },
}

fn encode_record(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(kind);
    payload.extend_from_slice(body);
    let mut record = Vec::with_capacity(8 + payload.len());
    put_u32(&mut record, payload.len() as u32);
    record.extend_from_slice(&payload);
    put_u32(&mut record, crc32(&payload));
    record
}

fn decode_record(payload: &[u8]) -> Result<JournalRecord, JournalError> {
    let mut d = Dec::new(payload);
    let record = match d.u8()? {
        KIND_INTENT => JournalRecord::Intent {
            ordinal: d.u64()?,
            command: get_command(&mut d)?,
        },
        KIND_OUTCOME => JournalRecord::Outcome {
            ordinal: d.u64()?,
            result: get_result(&mut d)?,
            effects: get_effects(&mut d)?,
        },
        KIND_CHECKPOINT => {
            let committed = d.u64()?;
            let n = d.len_prefix(1)?;
            JournalRecord::Checkpoint {
                committed,
                state: d.take(n)?.to_vec(),
            }
        }
        tag => {
            return Err(JournalError::Decode {
                what: format!("unknown record kind {tag}"),
            })
        }
    };
    d.finish("journal record")?;
    Ok(record)
}

/// The result of [`scan`]: every decodable record, where the valid
/// prefix ends, and whether a torn (incomplete or CRC-failing) final
/// record was discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// `(byte offset, record)` for each intact record, in file order.
    pub records: Vec<(u64, JournalRecord)>,
    /// Length of the valid prefix; recovery truncates the store here
    /// when `torn_tail` is set.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` form a torn final record — the
    /// expected signature of a crash mid-append, tolerated and dropped.
    pub torn_tail: bool,
}

/// Walks a journal byte image, validating framing and checksums.
///
/// A short or checksum-failing record *at the end* is a torn tail —
/// reported, not fatal, because a crash mid-append produces exactly
/// that. The same damage anywhere *before* the end means interior
/// corruption and fails with [`JournalError::BadChecksum`]; an
/// undecodable payload behind a valid CRC fails with
/// [`JournalError::Decode`].
pub fn scan(bytes: &[u8]) -> Result<ScanReport, JournalError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        if pos == bytes.len() {
            return Ok(ScanReport {
                records,
                valid_len: pos as u64,
                torn_tail: false,
            });
        }
        let torn = |records: Vec<(u64, JournalRecord)>| {
            Ok(ScanReport {
                records,
                valid_len: pos as u64,
                torn_tail: true,
            })
        };
        if bytes.len() - pos < 4 {
            return torn(records);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4")) as usize;
        let total = 4 + len + 4;
        if bytes.len() - pos < total {
            return torn(records);
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored_crc =
            u32::from_le_bytes(bytes[pos + 4 + len..pos + total].try_into().expect("len 4"));
        if crc32(payload) != stored_crc {
            if pos + total == bytes.len() {
                // A torn write of the final record: the length prefix
                // landed but part of the payload did not.
                return torn(records);
            }
            return Err(JournalError::BadChecksum { offset: pos as u64 });
        }
        records.push((pos as u64, decode_record(payload)?));
        pos += total;
    }
}

// ---------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------

/// Byte-level backend a [`Journal`] appends to. Implementations must
/// make `append` atomic with respect to `read_all` (the executor
/// serializes its own appends), but need *not* guarantee a crashing
/// process cannot tear the last append — [`scan`] detects that.
pub trait JournalStore: Send {
    /// Appends `bytes` at the end of the store.
    fn append(&self, bytes: &[u8]) -> Result<(), JournalError>;
    /// Reads the entire store image.
    fn read_all(&self) -> Result<Vec<u8>, JournalError>;
    /// Cuts the store down to `len` bytes (drops a torn tail).
    fn truncate(&self, len: u64) -> Result<(), JournalError>;
}

/// In-memory store for tests and the crash harness. Clones share the
/// same buffer, so a harness can keep a handle while the executor owns
/// the boxed store — exactly how a file on disk outlives a process.
#[derive(Debug, Clone, Default)]
pub struct MemJournalStore {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemJournalStore {
    /// An empty in-memory store.
    pub fn new() -> MemJournalStore {
        MemJournalStore::default()
    }

    /// A store pre-loaded with `bytes` (e.g. a truncated image).
    pub fn from_bytes(bytes: Vec<u8>) -> MemJournalStore {
        MemJournalStore {
            bytes: Arc::new(Mutex::new(bytes)),
        }
    }

    /// A copy of the current store image.
    pub fn snapshot(&self) -> Vec<u8> {
        lock_recover(&self.bytes).clone()
    }
}

impl JournalStore for MemJournalStore {
    fn append(&self, bytes: &[u8]) -> Result<(), JournalError> {
        lock_recover(&self.bytes).extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>, JournalError> {
        Ok(self.snapshot())
    }

    fn truncate(&self, len: u64) -> Result<(), JournalError> {
        let mut bytes = lock_recover(&self.bytes);
        let len = len.min(bytes.len() as u64) as usize;
        bytes.truncate(len);
        Ok(())
    }
}

/// File-backed store. Opens per operation (append mode), so the handle
/// is just a path; a missing file reads as empty and is created on
/// first append. Every I/O failure becomes a typed
/// [`JournalError::Io`].
#[derive(Debug, Clone)]
pub struct FileJournalStore {
    path: PathBuf,
}

impl FileJournalStore {
    /// A store at `path` (not created until the first append).
    pub fn new(path: impl AsRef<Path>) -> FileJournalStore {
        FileJournalStore {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl JournalStore for FileJournalStore {
    fn append(&self, bytes: &[u8]) -> Result<(), JournalError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err("open", e))?;
        file.write_all(bytes).map_err(|e| io_err("append", e))
    }

    fn read_all(&self) -> Result<Vec<u8>, JournalError> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(io_err("read", e)),
        }
    }

    fn truncate(&self, len: u64) -> Result<(), JournalError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("open", e))?;
        file.set_len(len).map_err(|e| io_err("truncate", e))
    }
}

// ---------------------------------------------------------------------
// The journal proper
// ---------------------------------------------------------------------

/// Journal tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// A checkpoint is appended after every `checkpoint_every`-th
    /// committed command (0 disables periodic checkpoints; an initial
    /// one is still written on attach).
    pub checkpoint_every: u64,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            checkpoint_every: 32,
        }
    }
}

/// An append-only, checksummed write-ahead log of executor commands.
///
/// Owned by the executor behind its journal lock; `committed` counts
/// outcome records written, i.e. the ordinal the *next* command gets.
pub struct Journal {
    store: Box<dyn JournalStore>,
    config: JournalConfig,
    committed: u64,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("config", &self.config)
            .field("committed", &self.committed)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens a journal over `store`, writing the magic if the store is
    /// empty and validating it otherwise.
    pub fn new(
        store: Box<dyn JournalStore>,
        config: JournalConfig,
    ) -> Result<Journal, JournalError> {
        let bytes = store.read_all()?;
        if bytes.is_empty() {
            store.append(MAGIC)?;
        } else if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::BadMagic);
        }
        Ok(Journal {
            store,
            config,
            committed: 0,
        })
    }

    /// The journal tunables.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// Commands committed (outcome records written) through this handle
    /// plus whatever `Journal::set_committed` seeded after recovery.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    pub(crate) fn set_committed(&mut self, committed: u64) {
        self.committed = committed;
    }

    fn append_record(&self, kind: u8, body: &[u8]) -> Result<(), JournalError> {
        self.store.append(&encode_record(kind, body))
    }

    pub(crate) fn record_intent(
        &mut self,
        ordinal: u64,
        command: &Command<'_>,
    ) -> Result<(), JournalError> {
        let mut body = Vec::new();
        put_u64(&mut body, ordinal);
        put_command(&mut body, command);
        self.append_record(KIND_INTENT, &body)
    }

    pub(crate) fn record_outcome(
        &mut self,
        ordinal: u64,
        result: &Result<Outcome, RimeError>,
        effects: &Effects,
    ) -> Result<(), JournalError> {
        let mut body = Vec::new();
        put_u64(&mut body, ordinal);
        put_result(&mut body, result);
        put_effects(&mut body, effects);
        self.append_record(KIND_OUTCOME, &body)?;
        self.committed = ordinal + 1;
        Ok(())
    }

    pub(crate) fn record_checkpoint(&mut self, state: &[u8]) -> Result<(), JournalError> {
        let mut body = Vec::new();
        put_u64(&mut body, self.committed);
        put_u32(&mut body, state.len() as u32);
        body.extend_from_slice(state);
        self.append_record(KIND_CHECKPOINT, &body)
    }
}

/// What [`crate::cmd::Executor::recover`] found and did — recovery is
/// *detectable*: the caller learns whether a crash interrupted a
/// command, whether the tail was torn, and how much was replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Commands durable after recovery (the next command's ordinal).
    pub committed: u64,
    /// Commands re-executed from the journal tail past the checkpoint.
    pub replayed: u64,
    /// Ordinal of a command whose intent was durable but whose outcome
    /// was not — the command the crash interrupted, *not* re-executed.
    pub interrupted: Option<u64>,
    /// Whether a torn final record was detected and truncated away.
    pub torn_tail: bool,
    /// Whether a checkpoint seeded the device (vs. replay from zero).
    pub from_checkpoint: bool,
}

// ---------------------------------------------------------------------
// Crash-point fault injection (crash-test feature)
// ---------------------------------------------------------------------

/// Panic payload [`CrashPoint::hit`] throws, so harnesses can tell an
/// injected crash from a genuine bug. Worker-thread joins may replace
/// the payload; [`CrashPoint::fired`] is the authoritative signal.
#[cfg(feature = "crash-test")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal;

/// Countdown fault injector threaded through executor dispatch and
/// journaling steps (mirroring the `ExtractionProbe` pattern: a
/// zero-cost no-op unless the `crash-test` feature is on *and* an
/// injector is installed).
///
/// In counting mode it tallies how many crash sites a workload passes;
/// armed at `k` it simulates a kill at the `k`-th site by panicking
/// with [`CrashSignal`]. `tests/crash_recovery.rs` sweeps `k` over
/// every site.
#[cfg(feature = "crash-test")]
#[derive(Debug)]
pub struct CrashPoint {
    remaining: std::sync::atomic::AtomicI64,
    fired: std::sync::atomic::AtomicBool,
    hits: std::sync::atomic::AtomicU64,
}

#[cfg(feature = "crash-test")]
impl CrashPoint {
    /// An injector that only counts crash sites, never firing.
    pub fn counting() -> Arc<CrashPoint> {
        Arc::new(CrashPoint {
            remaining: std::sync::atomic::AtomicI64::new(i64::MAX),
            fired: std::sync::atomic::AtomicBool::new(false),
            hits: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// An injector that crashes at the `k`-th site hit (zero-based).
    pub fn armed(k: u64) -> Arc<CrashPoint> {
        Arc::new(CrashPoint {
            remaining: std::sync::atomic::AtomicI64::new(
                i64::try_from(k).expect("crash index fits i64") + 1,
            ),
            fired: std::sync::atomic::AtomicBool::new(false),
            hits: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Registers passage through one crash site, panicking with
    /// [`CrashSignal`] exactly once when the countdown reaches zero.
    pub fn hit(&self) {
        use std::sync::atomic::Ordering;
        self.hits.fetch_add(1, Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.fired.store(true, Ordering::SeqCst);
            std::panic::panic_any(CrashSignal);
        }
    }

    /// Crash sites passed so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Whether the simulated crash has been thrown.
    pub fn fired(&self) -> bool {
        self.fired.load(std::sync::atomic::Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn region(id: u64, start: u64, len: u64) -> Region {
        Region { id, start, len }
    }

    fn all_commands() -> Vec<Command<'static>> {
        vec![
            Command::Alloc { len: 9 },
            Command::Free {
                region: region(3, 8, 9),
            },
            Command::Write {
                region: region(1, 0, 4),
                offset: 2,
                raw: Cow::Owned(vec![0, u64::MAX, 42]),
                format: KeyFormat::SIGNED32,
            },
            Command::Read {
                region: region(1, 0, 4),
                offset: 1,
                n: 3,
            },
            Command::Init {
                region: region(2, 4, 4),
                offset: 0,
                len: 4,
                format: KeyFormat::FLOAT64,
            },
            Command::Extract {
                region: region(2, 4, 4),
                format: KeyFormat::FLOAT64,
                direction: Direction::Max,
            },
            Command::ExtractBatch {
                region: region(2, 4, 4),
                format: KeyFormat::unsigned_fixed(5, 3),
                direction: Direction::Min,
                k: 7,
            },
            Command::FifoNext {
                region: region(2, 4, 4),
            },
        ]
    }

    #[test]
    fn every_command_round_trips() {
        for command in all_commands() {
            let mut buf = Vec::new();
            put_command(&mut buf, &command);
            let mut d = Dec::new(&buf);
            let back = get_command(&mut d).expect("decode");
            d.finish("command").expect("fully consumed");
            assert_eq!(back, command);
        }
    }

    #[test]
    fn every_result_round_trips() {
        let results: Vec<Result<Outcome, RimeError>> = vec![
            Ok(Outcome::Region(region(5, 0, 2))),
            Ok(Outcome::Done),
            Ok(Outcome::Keys(vec![1, 2, 3])),
            Ok(Outcome::Hit(None)),
            Ok(Outcome::Hit(Some((7, 99)))),
            Ok(Outcome::Hits(vec![(0, 1), (2, 3)])),
            Err(RimeError::OutOfContiguousMemory {
                requested: 10,
                largest_free: 3,
            }),
            Err(RimeError::InvalidRegion),
            Err(RimeError::OutOfBounds { offset: 9, len: 4 }),
            Err(RimeError::NotInitialized),
            Err(RimeError::TypeMismatch {
                stored: "unsigned",
                requested: "float",
            }),
            Err(RimeError::Chip(ChipError::AddressOutOfRange {
                addr: 70,
                capacity: 64,
            })),
            Err(RimeError::Chip(ChipError::EmptyRange { begin: 4, end: 4 })),
            Err(RimeError::Chip(ChipError::NotInitialized)),
            Err(RimeError::Chip(ChipError::KeyTooWide { bits: 65, max: 64 })),
            Err(RimeError::Chip(ChipError::FormatMismatch {
                stored: "signed",
                requested: "unsigned",
            })),
            Err(RimeError::Journal(JournalError::Io {
                op: "append".into(),
                kind: "PermissionDenied".into(),
                message: "denied".into(),
            })),
            Err(RimeError::Journal(JournalError::BadMagic)),
            Err(RimeError::Journal(JournalError::TruncatedRecord {
                offset: 12,
            })),
            Err(RimeError::Journal(JournalError::BadChecksum { offset: 8 })),
            Err(RimeError::Journal(JournalError::Decode {
                what: "tag".into(),
            })),
            Err(RimeError::Journal(JournalError::ReplayDivergence {
                ordinal: 3,
            })),
            Err(RimeError::Journal(JournalError::CheckpointMismatch {
                what: "chips".into(),
            })),
        ];
        for result in results {
            let mut buf = Vec::new();
            put_result(&mut buf, &result);
            let mut d = Dec::new(&buf);
            let back = get_result(&mut d).expect("decode");
            d.finish("result").expect("fully consumed");
            assert_eq!(back, result);
        }
    }

    #[test]
    fn effects_round_trip_preserving_order() {
        let mut effects = Effects::default();
        let mut delta = OpCounters::new();
        delta.row_reads = 3;
        effects.record_chip(2, delta);
        delta.extractions = 1;
        effects.record_chip(0, delta);
        effects.add_transfers(11);
        let mut buf = Vec::new();
        put_effects(&mut buf, &effects);
        let mut d = Dec::new(&buf);
        let back = get_effects(&mut d).expect("decode");
        d.finish("effects").expect("fully consumed");
        assert_eq!(back, effects);
    }

    #[test]
    fn chip_state_round_trips_through_the_codec() {
        use rime_memristive::{Chip, ChipGeometry};
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.inject_stuck_cell(3, 5, true).expect("inject");
        chip.store_keys(0, &[5, 1, 9, 1], KeyFormat::UNSIGNED64)
            .expect("store");
        chip.init_range(0, 4, KeyFormat::UNSIGNED64).expect("init");
        chip.extract(Direction::Min).expect("extract");
        let state = chip.state();
        let mut buf = Vec::new();
        put_chip_state(&mut buf, &state);
        let mut d = Dec::new(&buf);
        let back = get_chip_state(&mut d).expect("decode");
        d.finish("chip state").expect("fully consumed");
        assert_eq!(back, state);
    }

    #[test]
    fn truncated_command_fails_typed_at_every_byte() {
        // Satellite: decoding any strict prefix must yield a typed
        // error (truncation or a tag/format decode failure), never a
        // panic and never a silently short value.
        for command in all_commands() {
            let mut buf = Vec::new();
            put_command(&mut buf, &command);
            for cut in 0..buf.len() {
                let mut d = Dec::new(&buf[..cut]);
                let err = match get_command(&mut d) {
                    Err(e) => e,
                    Ok(back) => {
                        // A prefix that still decodes must fail the
                        // strict fully-consumed check instead.
                        assert_ne!(back, command, "prefix decoded to the full command");
                        d.finish("command").expect_err("trailing bytes")
                    }
                };
                assert!(
                    matches!(
                        err,
                        JournalError::TruncatedRecord { .. } | JournalError::Decode { .. }
                    ),
                    "cut {cut}: unexpected error {err:?}"
                );
            }
        }
    }

    fn journal_with_traffic() -> (MemJournalStore, Journal) {
        let store = MemJournalStore::new();
        let mut journal =
            Journal::new(Box::new(store.clone()), JournalConfig::default()).expect("open");
        journal
            .record_intent(0, &Command::Alloc { len: 4 })
            .expect("intent");
        journal
            .record_outcome(
                0,
                &Ok(Outcome::Region(region(1, 0, 4))),
                &Effects::default(),
            )
            .expect("outcome");
        journal
            .record_checkpoint(b"state-blob")
            .expect("checkpoint");
        (store, journal)
    }

    #[test]
    fn scan_reads_back_the_commit_marker_protocol() {
        let (store, journal) = journal_with_traffic();
        assert_eq!(journal.committed(), 1);
        let report = scan(&store.snapshot()).expect("scan");
        assert!(!report.torn_tail);
        assert_eq!(report.valid_len, store.snapshot().len() as u64);
        assert_eq!(report.records.len(), 3);
        assert!(matches!(
            report.records[0].1,
            JournalRecord::Intent { ordinal: 0, .. }
        ));
        assert!(matches!(
            report.records[1].1,
            JournalRecord::Outcome { ordinal: 0, .. }
        ));
        match &report.records[2].1 {
            JournalRecord::Checkpoint { committed, state } => {
                assert_eq!(*committed, 1);
                assert_eq!(state, b"state-blob");
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_at_every_cut_is_detected_not_fatal() {
        let (store, _journal) = journal_with_traffic();
        let bytes = store.snapshot();
        let report = scan(&bytes).expect("scan");
        let last_start = report.records.last().expect("records").0 as usize;
        for cut in last_start + 1..bytes.len() {
            let cut_report = scan(&bytes[..cut]).expect("torn tails are not errors");
            assert!(cut_report.torn_tail, "cut {cut} not flagged torn");
            assert_eq!(cut_report.valid_len, last_start as u64);
            assert_eq!(cut_report.records.len(), report.records.len() - 1);
        }
    }

    #[test]
    fn interior_corruption_is_refused_with_the_offset() {
        let (store, _journal) = journal_with_traffic();
        let mut bytes = store.snapshot();
        let report = scan(&bytes).expect("scan");
        let (first_offset, _) = report.records[0];
        // Flip a payload byte of the *first* record: damage before the
        // end of the log is corruption, not a torn tail.
        bytes[first_offset as usize + 5] ^= 0xFF;
        assert_eq!(
            scan(&bytes),
            Err(JournalError::BadChecksum {
                offset: first_offset
            })
        );
    }

    #[test]
    fn bad_magic_is_refused() {
        assert_eq!(scan(b"NOTAWAL!rest"), Err(JournalError::BadMagic));
        assert_eq!(scan(b"RIME"), Err(JournalError::BadMagic));
        let store = MemJournalStore::from_bytes(b"GARBAGE-GARBAGE".to_vec());
        assert_eq!(
            Journal::new(Box::new(store), JournalConfig::default()).err(),
            Some(JournalError::BadMagic)
        );
    }

    #[test]
    fn valid_crc_with_undecodable_payload_is_a_decode_error() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&encode_record(0xEE, b""));
        assert!(matches!(
            scan(&bytes),
            Err(JournalError::Decode { ref what }) if what.contains("record kind")
        ));
    }

    #[test]
    fn io_failures_surface_as_typed_errors() {
        // Appending *to a directory path* must fail with a typed Io
        // error naming the operation — never a panic or unwrap.
        let dir = std::env::temp_dir();
        let store = FileJournalStore::new(&dir);
        let err = store
            .append(b"x")
            .expect_err("cannot append to a directory");
        match &err {
            JournalError::Io { op, kind, message } => {
                assert_eq!(op, "open");
                assert!(!kind.is_empty());
                assert!(!message.is_empty());
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let err = store.truncate(0).expect_err("cannot truncate a directory");
        assert!(matches!(err, JournalError::Io { ref op, .. } if op == "open"));
        // Reading a *missing* file is not an error: the journal does
        // not exist yet, which reads as empty.
        let missing = FileJournalStore::new(dir.join("rime-journal-missing-test.wal"));
        assert_eq!(
            missing.read_all().expect("missing reads empty"),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn file_store_round_trips_a_journal() {
        let path =
            std::env::temp_dir().join(format!("rime-journal-test-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = FileJournalStore::new(&path);
        {
            let mut journal =
                Journal::new(Box::new(store.clone()), JournalConfig::default()).expect("open");
            journal
                .record_intent(0, &Command::Alloc { len: 2 })
                .expect("intent");
            journal
                .record_outcome(
                    0,
                    &Ok(Outcome::Region(region(1, 0, 2))),
                    &Effects::default(),
                )
                .expect("outcome");
        }
        let bytes = store.read_all().expect("read");
        let report = scan(&bytes).expect("scan");
        assert_eq!(report.records.len(), 2);
        // Truncating to the first record's start drops it.
        store.truncate(report.records[1].0).expect("truncate");
        let report = scan(&store.read_all().expect("read")).expect("scan");
        assert_eq!(report.records.len(), 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn every_error_variant_displays_distinctly() {
        let variants = [
            JournalError::Io {
                op: "append".into(),
                kind: "Other".into(),
                message: "boom".into(),
            },
            JournalError::BadMagic,
            JournalError::TruncatedRecord { offset: 7 },
            JournalError::BadChecksum { offset: 9 },
            JournalError::Decode { what: "tag".into() },
            JournalError::ReplayDivergence { ordinal: 4 },
            JournalError::CheckpointMismatch {
                what: "chips".into(),
            },
        ];
        let texts: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
        for (i, a) in texts.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &texts[i + 1..] {
                assert_ne!(a, b, "error displays must be distinguishable");
            }
        }
    }

    #[cfg(not(feature = "crash-test"))]
    #[test]
    fn crash_points_compile_out_without_the_feature() {
        // Pointer test (the `ExtractionProbe` pattern): with the
        // `crash-test` feature off, `CrashPoint`, `CrashSignal`,
        // `Executor::install_crash_point`, and
        // `Executor::inject_extract_fault` do not exist and every
        // `crash_point()` call in the executor is an empty inline
        // no-op. Run `cargo test --features crash-test` — and
        // `tests/crash_recovery.rs` — for the real coverage.
    }

    #[cfg(feature = "crash-test")]
    #[test]
    fn crash_point_counts_then_fires_exactly_once() {
        let counting = CrashPoint::counting();
        for _ in 0..5 {
            counting.hit();
        }
        assert_eq!(counting.hits(), 5);
        assert!(!counting.fired());

        let armed = CrashPoint::armed(2);
        armed.hit();
        armed.hit();
        assert!(!armed.fired());
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| armed.hit()));
        let payload = unwind.expect_err("third hit crashes");
        assert!(payload.downcast_ref::<CrashSignal>().is_some());
        assert!(armed.fired());
        // Past the firing point the injector never fires again.
        armed.hit();
        assert_eq!(armed.hits(), 4);
    }
}
