//! The RIME driver's contiguous physical allocator (§V, Fig. 13).
//!
//! The tree-based index reduction only works over *physically contiguous*
//! mats, so `rime_malloc` must return physically contiguous extents — the
//! opposite of an ordinary page allocator, which happily scatters a
//! virtually contiguous buffer. The paper's driver achieves this by
//! reserving a block of contiguous physical pages at `mmap` time, growing
//! the reservation by a tunable increment when it fills, and *failing*
//! (null pointer) when fragmentation leaves no hole big enough — the user
//! is expected to `rime_free` and retry.
//!
//! [`ContiguousAllocator`] reproduces that behaviour over an abstract
//! key-slot space: first-fit allocation within the reserved watermark,
//! extent coalescing on free, incremental reservation growth, and
//! truthful [`RimeError::OutOfContiguousMemory`] failures.

use std::collections::HashMap;

use crate::error::RimeError;

/// Driver tunables (§V: "the driver has tunable parameters to specify the
/// number of pages that should be reserved on startup during an mmap call,
/// and the number of additional pages to reserve when the initially
/// reserved block gets full").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Key slots per physical page.
    pub page_slots: u64,
    /// Pages reserved at startup.
    pub startup_pages: u64,
    /// Additional pages reserved when the current reservation fills.
    pub growth_pages: u64,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            page_slots: 512, // a 4 KiB page of 8-byte keys
            startup_pages: 64,
            growth_pages: 16,
        }
    }
}

/// First-fit contiguous extent allocator over the RIME region.
#[derive(Debug, Clone)]
pub struct ContiguousAllocator {
    config: DriverConfig,
    total_slots: u64,
    reserved_slots: u64,
    /// Sorted, disjoint, coalesced free extents within the reservation.
    free: Vec<(u64, u64)>,
    /// Live allocations: start → length.
    live: HashMap<u64, u64>,
}

impl ContiguousAllocator {
    /// Creates an allocator over `total_slots` physical key slots.
    pub fn new(total_slots: u64, config: DriverConfig) -> ContiguousAllocator {
        let reserved = (config.startup_pages * config.page_slots).min(total_slots);
        let free = if reserved > 0 {
            vec![(0, reserved)]
        } else {
            Vec::new()
        };
        ContiguousAllocator {
            config,
            total_slots,
            reserved_slots: reserved,
            free,
            live: HashMap::new(),
        }
    }

    /// Total physical slots managed.
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Slots currently reserved from the OS.
    pub fn reserved_slots(&self) -> u64 {
        self.reserved_slots
    }

    /// Slots currently allocated to callers.
    pub fn allocated_slots(&self) -> u64 {
        self.live.values().sum()
    }

    /// Size of the largest free contiguous extent, counting the
    /// not-yet-reserved tail (which could be reserved on demand).
    pub fn largest_free(&self) -> u64 {
        let tail_unreserved = self.total_slots - self.reserved_slots;
        let tail = match self.free.last() {
            Some(&(start, len)) if start + len == self.reserved_slots => len + tail_unreserved,
            _ => tail_unreserved,
        };
        self.free
            .iter()
            .map(|&(_, len)| len)
            .chain(std::iter::once(tail))
            .max()
            .unwrap_or(0)
    }

    /// Number of free extents (fragmentation indicator).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// The sorted, coalesced free list (checkpoint marshalling).
    pub(crate) fn free_extents(&self) -> &[(u64, u64)] {
        &self.free
    }

    /// Live allocations as sorted `(start, len)` pairs — the canonical
    /// order checkpoints and the crash harness's allocation-map
    /// fingerprint both use.
    pub(crate) fn live_allocations(&self) -> Vec<(u64, u64)> {
        let mut live: Vec<(u64, u64)> = self.live.iter().map(|(&s, &l)| (s, l)).collect();
        live.sort_unstable();
        live
    }

    /// Rebuilds an allocator from checkpointed parts. Trusts the parts
    /// (they were produced by `free_extents`/`live_allocations` and are
    /// CRC-protected in the journal); `config` comes from the device
    /// configuration, not the checkpoint.
    pub(crate) fn from_parts(
        config: DriverConfig,
        total_slots: u64,
        reserved_slots: u64,
        free: Vec<(u64, u64)>,
        live: Vec<(u64, u64)>,
    ) -> ContiguousAllocator {
        ContiguousAllocator {
            config,
            total_slots,
            reserved_slots,
            free,
            live: live.into_iter().collect(),
        }
    }

    /// `rime_malloc`: allocates `len` physically contiguous slots.
    ///
    /// # Errors
    ///
    /// [`RimeError::OutOfContiguousMemory`] when fragmentation (or
    /// exhaustion) leaves no hole of `len` slots even after growing the
    /// reservation.
    pub fn alloc(&mut self, len: u64) -> Result<u64, RimeError> {
        if len == 0 || len > self.total_slots {
            return Err(RimeError::OutOfContiguousMemory {
                requested: len,
                largest_free: self.largest_free(),
            });
        }
        loop {
            if let Some(idx) = self.free.iter().position(|&(_, flen)| flen >= len) {
                let (start, flen) = self.free[idx];
                if flen == len {
                    self.free.remove(idx);
                } else {
                    self.free[idx] = (start + len, flen - len);
                }
                self.live.insert(start, len);
                return Ok(start);
            }
            if !self.grow_reservation() {
                return Err(RimeError::OutOfContiguousMemory {
                    requested: len,
                    largest_free: self.largest_free(),
                });
            }
        }
    }

    /// Grows the reservation by the configured increment (or as much as
    /// remains). Returns `false` when fully reserved already.
    fn grow_reservation(&mut self) -> bool {
        if self.reserved_slots >= self.total_slots {
            return false;
        }
        let grow = (self.config.growth_pages * self.config.page_slots)
            .max(1)
            .min(self.total_slots - self.reserved_slots);
        let start = self.reserved_slots;
        self.reserved_slots += grow;
        self.insert_free(start, grow);
        true
    }

    /// `rime_free`: releases the allocation starting at `start`.
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`] if `start` is not a live allocation.
    pub fn free(&mut self, start: u64) -> Result<(), RimeError> {
        let len = self.live.remove(&start).ok_or(RimeError::InvalidRegion)?;
        self.insert_free(start, len);
        Ok(())
    }

    fn insert_free(&mut self, start: u64, len: u64) {
        let idx = self.free.partition_point(|&(s, _)| s < start);
        self.free.insert(idx, (start, len));
        // Coalesce with the right neighbor, then the left.
        if idx + 1 < self.free.len() {
            let (s, l) = self.free[idx];
            let (ns, nl) = self.free[idx + 1];
            if s + l == ns {
                self.free[idx] = (s, l + nl);
                self.free.remove(idx + 1);
            }
        }
        if idx > 0 {
            let (ps, pl) = self.free[idx - 1];
            let (s, l) = self.free[idx];
            if ps + pl == s {
                self.free[idx - 1] = (ps, pl + l);
                self.free.remove(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_with(total: u64) -> ContiguousAllocator {
        ContiguousAllocator::new(
            total,
            DriverConfig {
                page_slots: 16,
                startup_pages: 4,
                growth_pages: 2,
            },
        )
    }

    #[test]
    fn alloc_is_contiguous_and_disjoint() {
        let mut a = alloc_with(1024);
        let r1 = a.alloc(40).unwrap();
        let r2 = a.alloc(24).unwrap();
        assert!(r1 + 40 <= r2 || r2 + 24 <= r1);
        assert_eq!(a.allocated_slots(), 64);
    }

    #[test]
    fn free_coalesces_neighbors() {
        let mut a = alloc_with(1024);
        let r1 = a.alloc(16).unwrap();
        let r2 = a.alloc(16).unwrap();
        let r3 = a.alloc(16).unwrap();
        a.free(r2).unwrap();
        a.free(r1).unwrap();
        a.free(r3).unwrap();
        assert_eq!(a.fragments(), 1, "all extents coalesced");
        assert_eq!(a.allocated_slots(), 0);
    }

    #[test]
    fn fragmentation_fails_big_alloc_until_free() {
        // 64 reserved startup slots, total 64 → no growth possible.
        let mut a = ContiguousAllocator::new(
            64,
            DriverConfig {
                page_slots: 16,
                startup_pages: 4,
                growth_pages: 2,
            },
        );
        let r1 = a.alloc(32).unwrap();
        let _r2 = a.alloc(32).unwrap();
        a.free(r1).unwrap();
        // 32 free but fragmented? Actually contiguous; ask for more.
        let err = a.alloc(48).unwrap_err();
        assert!(matches!(
            err,
            RimeError::OutOfContiguousMemory {
                requested: 48,
                largest_free: 32
            }
        ));
        // §V: free and retry succeeds.
        assert!(a.alloc(32).is_ok());
    }

    #[test]
    fn reservation_grows_on_demand() {
        let mut a = alloc_with(1024);
        assert_eq!(a.reserved_slots(), 64);
        let _ = a.alloc(200).unwrap();
        assert!(a.reserved_slots() >= 200);
        assert!(a.reserved_slots() < 1024, "grows incrementally");
    }

    #[test]
    fn exhaustion_reports_largest_hole() {
        let mut a = alloc_with(128);
        let _r1 = a.alloc(128).unwrap();
        let err = a.alloc(1).unwrap_err();
        assert!(matches!(
            err,
            RimeError::OutOfContiguousMemory {
                largest_free: 0,
                ..
            }
        ));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = alloc_with(128);
        let r = a.alloc(8).unwrap();
        a.free(r).unwrap();
        assert_eq!(a.free(r), Err(RimeError::InvalidRegion));
    }

    #[test]
    fn zero_len_alloc_rejected() {
        let mut a = alloc_with(128);
        assert!(a.alloc(0).is_err());
    }

    #[test]
    fn first_fit_reuses_holes() {
        let mut a = alloc_with(1024);
        let r1 = a.alloc(16).unwrap();
        let _r2 = a.alloc(16).unwrap();
        a.free(r1).unwrap();
        let r3 = a.alloc(8).unwrap();
        assert_eq!(r3, r1, "first fit reuses the freed hole");
    }

    #[test]
    fn largest_free_counts_unreserved_tail() {
        let a = alloc_with(1024);
        assert_eq!(a.largest_free(), 1024);
    }
}
