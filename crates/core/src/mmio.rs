//! The memory-mapped control interface (§V).
//!
//! "A small fraction of the address space visible to software within
//! every chip is mapped to an internal RAM array, and is used for
//! implementing the data buffers and the configuration parameters.
//! Software configures the on-chip data layout and initiates the
//! optimization by writing to a memory mapped control register. Both
//! memory configuration and data transfer accesses are performed through
//! ordinary DDR4 reads and writes" — in-order, strong-uncacheable.
//!
//! [`MmioInterface`] models that register file: everything the typed API
//! in [`crate::device`] does can be driven through plain 64-bit register
//! reads/writes at fixed offsets, exactly how a kernel driver would talk
//! to the DIMM. The data space (key slots) is mapped byte-addressably
//! above [`DATA_BASE`].
//!
//! The interface is a pure *translation layer*: a doorbell write decodes
//! the staged registers into one typed [`Command`], hands it to the same
//! [`crate::cmd::Executor`] the Rust API uses, and marshals the
//! [`Outcome`] (or typed error) back into the status/result/error
//! registers. No validation or extraction logic lives here.

use std::borrow::Cow;
use std::collections::VecDeque;

use rime_memristive::{Direction, KeyFormat};

use crate::cmd::{Command, Outcome};
use crate::device::{Region, RimeDevice};
use crate::error::RimeError;

/// Register offsets (byte addresses within the control window).
pub mod regs {
    /// Range begin, in key-slot units (w/o `DATA_BASE`).
    pub const BEGIN: u64 = 0x00;
    /// Range end (exclusive), in key-slot units.
    pub const END: u64 = 0x08;
    /// Key format selector (see [`super::format_code`]).
    pub const FORMAT: u64 = 0x10;
    /// Command doorbell: writing executes the command.
    pub const COMMAND: u64 = 0x18;
    /// Status of the last command (see [`super::status`]).
    pub const STATUS: u64 = 0x20;
    /// Raw bits of the last extracted value.
    pub const RESULT_VALUE: u64 = 0x28;
    /// Global key-slot address of the last extracted value.
    pub const RESULT_ADDR: u64 = 0x30;
    /// Batch size for `MIN_K` / `MAX_K` commands.
    pub const COUNT: u64 = 0x38;
    /// Read-only: results still buffered in the FIFO (excluding the one
    /// latched in the result registers).
    pub const RESULT_COUNT: u64 = 0x40;
    /// Read-only: typed code of the last fault (see [`super::errcode`]).
    pub const ERROR: u64 = 0x48;
}

/// Command codes for [`regs::COMMAND`].
pub mod cmd {
    /// `rime_init` over `[BEGIN, END)` with `FORMAT`.
    pub const INIT: u64 = 1;
    /// `rime_min`: extract the next minimum into the result registers.
    pub const MIN: u64 = 2;
    /// `rime_max`: extract the next maximum into the result registers.
    pub const MAX: u64 = 3;
    /// Batched `rime_min`: extract the next `COUNT` minima into the
    /// result FIFO, latching the first into the result registers.
    pub const MIN_K: u64 = 4;
    /// Batched `rime_max`, symmetric to [`MIN_K`].
    pub const MAX_K: u64 = 5;
    /// Latch the next buffered result from the FIFO into the result
    /// registers; `EXHAUSTED` once the FIFO is drained.
    pub const FIFO_NEXT: u64 = 6;
}

/// Status codes readable from [`regs::STATUS`].
pub mod status {
    /// Command completed; result registers are valid (for MIN/MAX).
    pub const OK: u64 = 0;
    /// The initialized range is exhausted (MIN/MAX found nothing).
    pub const EXHAUSTED: u64 = 1;
    /// The command faulted; [`super::regs::ERROR`] holds the typed
    /// [`super::errcode`].
    pub const ERROR: u64 = 2;
}

/// Typed fault codes readable from [`regs::ERROR`] after a command sets
/// [`status::ERROR`]. Malformed command sequences park a code here and
/// leave the interface usable instead of aborting.
pub mod errcode {
    /// No fault since the last successful command.
    pub const NONE: u64 = 0;
    /// The addressed region is unknown or stale.
    pub const INVALID_REGION: u64 = 1;
    /// Range or slot address outside the window.
    pub const OUT_OF_BOUNDS: u64 = 2;
    /// Extraction without a prior `INIT`.
    pub const NOT_INITIALIZED: u64 = 3;
    /// Requested format disagrees with the stored one.
    pub const TYPE_MISMATCH: u64 = 4;
    /// Allocation failure inside the device.
    pub const OUT_OF_MEMORY: u64 = 5;
    /// A chip-level fault (bad range, key too wide, …).
    pub const CHIP: u64 = 6;
    /// [`super::regs::FORMAT`] holds an undecodable encoding.
    pub const BAD_FORMAT: u64 = 7;
    /// Unknown command code written to the doorbell.
    pub const BAD_COMMAND: u64 = 8;
    /// The write-ahead journal refused the command (I/O fault or a
    /// durability invariant would break).
    pub const JOURNAL: u64 = 9;
}

/// Maps a device error onto its [`errcode`] register value.
fn errcode_of(error: &RimeError) -> u64 {
    match error {
        RimeError::InvalidRegion => errcode::INVALID_REGION,
        RimeError::OutOfBounds { .. } => errcode::OUT_OF_BOUNDS,
        RimeError::NotInitialized => errcode::NOT_INITIALIZED,
        RimeError::TypeMismatch { .. } => errcode::TYPE_MISMATCH,
        RimeError::OutOfContiguousMemory { .. } => errcode::OUT_OF_MEMORY,
        RimeError::Chip(_) => errcode::CHIP,
        RimeError::Journal(_) => errcode::JOURNAL,
    }
}

/// First byte address of the data window; key slot `s` occupies bytes
/// `DATA_BASE + 8s .. DATA_BASE + 8s + 8`.
pub const DATA_BASE: u64 = 0x1000;

/// Encodes a [`KeyFormat`] into its register value:
/// `kind (bits 16–17) | int_bits (bits 8–15) | frac_bits (bits 0–7)`,
/// with kind 0 = unsigned, 1 = signed, 2 = float.
pub fn format_code(format: KeyFormat) -> u64 {
    use rime_memristive::encoding::FormatKind;
    let kind = match format.kind() {
        FormatKind::Unsigned => 0u64,
        FormatKind::Signed => 1,
        FormatKind::Float => 2,
    };
    let int_bits = u64::from(format.bits() - format.frac_bits());
    kind << 16 | int_bits << 8 | u64::from(format.frac_bits())
}

/// Decodes a register value back into a [`KeyFormat`]; `None` when the
/// encoding is malformed.
pub fn decode_format(code: u64) -> Option<KeyFormat> {
    let kind = code >> 16 & 0x3;
    let int_bits = (code >> 8 & 0xFF) as u16;
    let frac_bits = (code & 0xFF) as u16;
    let total = int_bits + frac_bits;
    match kind {
        0 if (1..=64).contains(&total) => Some(KeyFormat::unsigned_fixed(int_bits, frac_bits)),
        1 if (2..=64).contains(&total) => Some(KeyFormat::signed_fixed(int_bits, frac_bits)),
        2 if total == 32 && frac_bits == 0 => Some(KeyFormat::FLOAT32),
        2 if total == 64 && frac_bits == 0 => Some(KeyFormat::FLOAT64),
        _ => None,
    }
}

/// The register-level view of a RIME device.
///
/// # Example
///
/// ```
/// use rime_core::mmio::{cmd, format_code, regs, MmioInterface, DATA_BASE};
/// use rime_core::{KeyFormat, RimeConfig};
///
/// let mut mmio = MmioInterface::new(RimeConfig::small());
/// // Store three keys through the data window.
/// for (i, key) in [30u64, 10, 20].iter().enumerate() {
///     mmio.write(DATA_BASE + 8 * i as u64, *key);
/// }
/// // Program the range and format, ring the INIT doorbell, then MIN.
/// mmio.write(regs::BEGIN, 0);
/// mmio.write(regs::END, 3);
/// mmio.write(regs::FORMAT, format_code(KeyFormat::UNSIGNED64));
/// mmio.write(regs::COMMAND, cmd::INIT);
/// mmio.write(regs::COMMAND, cmd::MIN);
/// assert_eq!(mmio.read(regs::RESULT_VALUE), 10);
/// assert_eq!(mmio.read(regs::RESULT_ADDR), 1);
/// ```
#[derive(Debug)]
pub struct MmioInterface {
    device: RimeDevice,
    /// One region spanning the whole device — the MMIO view is flat.
    window: Region,
    begin: u64,
    end: u64,
    format_code: u64,
    status: u64,
    result_value: u64,
    result_addr: u64,
    count: u64,
    error: u64,
    /// Results buffered by `MIN_K`/`MAX_K`, drained by `FIFO_NEXT`.
    fifo: VecDeque<(u64, u64)>,
    /// Uncacheable accesses performed (each read/write below is one).
    pub uc_accesses: u64,
}

impl MmioInterface {
    /// Brings up a device and maps its whole capacity into the window.
    pub fn new(config: crate::device::RimeConfig) -> MmioInterface {
        let device = RimeDevice::new(config);
        let capacity = device.capacity();
        let window = device.alloc(capacity).expect("fresh device has room");
        MmioInterface {
            device,
            window,
            begin: 0,
            end: 0,
            format_code: format_code(KeyFormat::UNSIGNED64),
            status: status::OK,
            result_value: 0,
            result_addr: 0,
            count: 1,
            error: errcode::NONE,
            fifo: VecDeque::new(),
            uc_accesses: 0,
        }
    }

    /// The underlying device (e.g. for counter inspection).
    pub fn device(&self) -> &RimeDevice {
        &self.device
    }

    /// Strong-uncacheable 64-bit read at `addr`.
    ///
    /// Reads of unknown control offsets return 0, like reserved
    /// registers. Data-window reads load the key slot.
    pub fn read(&mut self, addr: u64) -> u64 {
        self.uc_accesses += 1;
        if addr >= DATA_BASE {
            let slot = (addr - DATA_BASE) / 8;
            return self
                .device
                .read_raw(self.window, slot, 1)
                .map_or(0, |v| v[0]);
        }
        match addr {
            regs::BEGIN => self.begin,
            regs::END => self.end,
            regs::FORMAT => self.format_code,
            regs::STATUS => self.status,
            regs::RESULT_VALUE => self.result_value,
            regs::RESULT_ADDR => self.result_addr,
            regs::COUNT => self.count,
            regs::RESULT_COUNT => self.fifo.len() as u64,
            regs::ERROR => self.error,
            _ => 0,
        }
    }

    /// Strong-uncacheable 64-bit write at `addr`. Writing
    /// [`regs::COMMAND`] executes the command and updates
    /// [`regs::STATUS`].
    pub fn write(&mut self, addr: u64, value: u64) {
        self.uc_accesses += 1;
        if addr >= DATA_BASE {
            let slot = (addr - DATA_BASE) / 8;
            let format = decode_format(self.format_code).unwrap_or(KeyFormat::UNSIGNED64);
            let raw = [value];
            let lowered = Command::Write {
                region: self.window,
                offset: slot,
                raw: Cow::Borrowed(&raw),
                format,
            };
            match self.device.execute(lowered) {
                Ok(_) => {
                    self.status = status::OK;
                    self.error = errcode::NONE;
                }
                Err(e) => self.fault(errcode_of(&e)),
            }
            return;
        }
        match addr {
            regs::BEGIN => self.begin = value,
            regs::END => self.end = value,
            regs::FORMAT => self.format_code = value,
            regs::COUNT => self.count = value,
            regs::COMMAND => self.execute(value),
            _ => {}
        }
    }

    /// Decodes the staged registers plus the doorbell value into one
    /// typed [`Command`], runs it, and marshals the outcome back into
    /// the register file.
    fn execute(&mut self, command: u64) {
        self.error = errcode::NONE;
        if command == cmd::FIFO_NEXT {
            // Drains the *presentation* FIFO (results already fetched by
            // a batch command) — a register-file-local latch move, not a
            // device command.
            self.advance_fifo();
            return;
        }
        let Some(format) = decode_format(self.format_code) else {
            self.fault(errcode::BAD_FORMAT);
            return;
        };
        let direction = |min_code| {
            if command == min_code {
                Direction::Min
            } else {
                Direction::Max
            }
        };
        let lowered = match command {
            cmd::INIT => Command::Init {
                region: self.window,
                offset: self.begin,
                len: self.end.saturating_sub(self.begin),
                format,
            },
            cmd::MIN | cmd::MAX => Command::Extract {
                region: self.window,
                format,
                direction: direction(cmd::MIN),
            },
            cmd::MIN_K | cmd::MAX_K => Command::ExtractBatch {
                region: self.window,
                format,
                direction: direction(cmd::MIN_K),
                k: usize::try_from(self.count).unwrap_or(usize::MAX),
            },
            _ => {
                self.fault(errcode::BAD_COMMAND);
                return;
            }
        };
        self.fifo.clear();
        match self.device.execute(lowered) {
            Ok(Outcome::Done) => self.status = status::OK,
            Ok(Outcome::Hit(Some((slot, raw)))) => {
                self.result_addr = slot;
                self.result_value = raw;
                self.status = status::OK;
            }
            Ok(Outcome::Hit(None)) => self.status = status::EXHAUSTED,
            Ok(Outcome::Hits(results)) => {
                self.fifo.extend(results);
                self.advance_fifo();
            }
            Ok(other) => unreachable!("register command produced {other:?}"),
            Err(e) => self.fault(errcode_of(&e)),
        }
    }

    /// Latches the next buffered result, or reports exhaustion.
    fn advance_fifo(&mut self) {
        match self.fifo.pop_front() {
            Some((slot, raw)) => {
                self.result_addr = slot;
                self.result_value = raw;
                self.status = status::OK;
            }
            None => self.status = status::EXHAUSTED,
        }
    }

    fn fault(&mut self, code: u64) {
        self.status = status::ERROR;
        self.error = code;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RimeConfig;

    fn mmio() -> MmioInterface {
        MmioInterface::new(RimeConfig::small())
    }

    fn store(m: &mut MmioInterface, keys: &[u64]) {
        for (i, &k) in keys.iter().enumerate() {
            m.write(DATA_BASE + 8 * i as u64, k);
            assert_eq!(m.read(regs::STATUS), status::OK);
        }
    }

    /// Drives a full ascending drain through the registers; a faulting
    /// command surfaces as the typed [`errcode`] instead of a panic.
    fn run_sort(m: &mut MmioInterface, n: u64) -> Result<Vec<u64>, u64> {
        m.write(regs::BEGIN, 0);
        m.write(regs::END, n);
        m.write(regs::COMMAND, cmd::INIT);
        if m.read(regs::STATUS) == status::ERROR {
            return Err(m.read(regs::ERROR));
        }
        let mut out = Vec::new();
        loop {
            m.write(regs::COMMAND, cmd::MIN);
            match m.read(regs::STATUS) {
                status::OK => out.push(m.read(regs::RESULT_VALUE)),
                status::EXHAUSTED => break,
                _ => return Err(m.read(regs::ERROR)),
            }
        }
        Ok(out)
    }

    #[test]
    fn full_sort_through_registers() {
        let mut m = mmio();
        store(&mut m, &[9, 2, 7, 2, 5]);
        assert_eq!(run_sort(&mut m, 5).unwrap(), vec![2, 2, 5, 7, 9]);
    }

    #[test]
    fn run_sort_reports_faults_as_error_codes() {
        let mut m = mmio();
        m.write(regs::FORMAT, u64::MAX);
        assert_eq!(run_sort(&mut m, 1), Err(errcode::BAD_FORMAT));
    }

    #[test]
    fn batched_sort_through_fifo_matches_sequential() {
        let keys = [9u64, 2, 7, 2, 5, 11, 3];
        let mut m = mmio();
        store(&mut m, &keys);
        let want = run_sort(&mut m, keys.len() as u64).unwrap();

        // Re-arm and drain again through MIN_K + FIFO_NEXT.
        m.write(regs::BEGIN, 0);
        m.write(regs::END, keys.len() as u64);
        m.write(regs::COMMAND, cmd::INIT);
        m.write(regs::COUNT, 3);
        let mut got = Vec::new();
        loop {
            m.write(regs::COMMAND, cmd::MIN_K);
            if m.read(regs::STATUS) == status::EXHAUSTED {
                break;
            }
            assert_eq!(m.read(regs::STATUS), status::OK);
            got.push(m.read(regs::RESULT_VALUE));
            while m.read(regs::RESULT_COUNT) > 0 {
                m.write(regs::COMMAND, cmd::FIFO_NEXT);
                assert_eq!(m.read(regs::STATUS), status::OK);
                got.push(m.read(regs::RESULT_VALUE));
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn fifo_reports_result_count_and_addresses() {
        let mut m = mmio();
        store(&mut m, &[40u64, 10, 30, 20]);
        m.write(regs::BEGIN, 0);
        m.write(regs::END, 4);
        m.write(regs::COMMAND, cmd::INIT);
        m.write(regs::COUNT, 4);
        m.write(regs::COMMAND, cmd::MIN_K);
        assert_eq!(m.read(regs::STATUS), status::OK);
        assert_eq!(m.read(regs::RESULT_VALUE), 10);
        assert_eq!(m.read(regs::RESULT_ADDR), 1);
        assert_eq!(m.read(regs::RESULT_COUNT), 3);
        m.write(regs::COMMAND, cmd::FIFO_NEXT);
        assert_eq!(m.read(regs::RESULT_VALUE), 20);
        assert_eq!(m.read(regs::RESULT_ADDR), 3);
        m.write(regs::COMMAND, cmd::FIFO_NEXT);
        m.write(regs::COMMAND, cmd::FIFO_NEXT);
        assert_eq!(m.read(regs::RESULT_VALUE), 40);
        assert_eq!(m.read(regs::RESULT_COUNT), 0);
        m.write(regs::COMMAND, cmd::FIFO_NEXT);
        assert_eq!(m.read(regs::STATUS), status::EXHAUSTED);
    }

    #[test]
    fn faults_park_typed_error_codes() {
        let mut m = mmio();
        // Extraction before INIT.
        m.write(regs::COMMAND, cmd::MIN);
        assert_eq!(m.read(regs::STATUS), status::ERROR);
        assert_eq!(m.read(regs::ERROR), errcode::NOT_INITIALIZED);
        // Unknown command.
        m.write(regs::COMMAND, 99);
        assert_eq!(m.read(regs::ERROR), errcode::BAD_COMMAND);
        // Undecodable format.
        m.write(regs::FORMAT, u64::MAX);
        m.write(regs::COMMAND, cmd::INIT);
        assert_eq!(m.read(regs::ERROR), errcode::BAD_FORMAT);
        // A successful command clears the code.
        m.write(regs::FORMAT, format_code(KeyFormat::UNSIGNED64));
        m.write(regs::BEGIN, 0);
        m.write(regs::END, 1);
        m.write(regs::COMMAND, cmd::INIT);
        assert_eq!(m.read(regs::STATUS), status::OK);
        assert_eq!(m.read(regs::ERROR), errcode::NONE);
        // The interface stays usable after every fault above.
        m.write(regs::COMMAND, cmd::MIN);
        assert_eq!(m.read(regs::STATUS), status::OK);
    }

    #[test]
    fn result_addr_reports_the_winning_slot() {
        let mut m = mmio();
        store(&mut m, &[9, 2, 7]);
        m.write(regs::BEGIN, 0);
        m.write(regs::END, 3);
        m.write(regs::COMMAND, cmd::INIT);
        m.write(regs::COMMAND, cmd::MIN);
        assert_eq!(m.read(regs::RESULT_ADDR), 1);
        m.write(regs::COMMAND, cmd::MAX); // direction switch re-arms
        assert_eq!(m.read(regs::RESULT_VALUE), 9);
        assert_eq!(m.read(regs::RESULT_ADDR), 0);
    }

    #[test]
    fn float_format_through_registers() {
        let mut m = mmio();
        m.write(regs::FORMAT, format_code(KeyFormat::FLOAT32));
        let keys = [18.0f32, -1.625, -0.75];
        for (i, k) in keys.iter().enumerate() {
            m.write(DATA_BASE + 8 * i as u64, k.to_bits() as u64);
        }
        m.write(regs::BEGIN, 0);
        m.write(regs::END, 3);
        m.write(regs::COMMAND, cmd::INIT);
        m.write(regs::COMMAND, cmd::MIN);
        assert_eq!(f32::from_bits(m.read(regs::RESULT_VALUE) as u32), -1.625);
    }

    #[test]
    fn min_before_init_faults() {
        let mut m = mmio();
        m.write(regs::COMMAND, cmd::MIN);
        assert_eq!(m.read(regs::STATUS), status::ERROR);
    }

    #[test]
    fn bad_command_and_bad_format_fault() {
        let mut m = mmio();
        m.write(regs::COMMAND, 99);
        assert_eq!(m.read(regs::STATUS), status::ERROR);
        m.write(regs::FORMAT, u64::MAX);
        m.write(regs::BEGIN, 0);
        m.write(regs::END, 1);
        m.write(regs::COMMAND, cmd::INIT);
        assert_eq!(m.read(regs::STATUS), status::ERROR);
    }

    #[test]
    fn inverted_range_faults() {
        let mut m = mmio();
        store(&mut m, &[1, 2]);
        m.write(regs::BEGIN, 2);
        m.write(regs::END, 1);
        m.write(regs::COMMAND, cmd::INIT);
        assert_eq!(m.read(regs::STATUS), status::ERROR);
    }

    #[test]
    fn registers_read_back() {
        let mut m = mmio();
        m.write(regs::BEGIN, 7);
        m.write(regs::END, 42);
        assert_eq!(m.read(regs::BEGIN), 7);
        assert_eq!(m.read(regs::END), 42);
        assert_eq!(m.read(0xF00), 0, "reserved offsets read as zero");
    }

    #[test]
    fn data_window_reads_back() {
        let mut m = mmio();
        m.write(DATA_BASE + 16, 777);
        assert_eq!(m.read(DATA_BASE + 16), 777);
        assert!(m.uc_accesses >= 2);
    }

    #[test]
    fn format_codes_roundtrip() {
        for f in [
            KeyFormat::UNSIGNED32,
            KeyFormat::UNSIGNED64,
            KeyFormat::SIGNED32,
            KeyFormat::SIGNED64,
            KeyFormat::FLOAT32,
            KeyFormat::FLOAT64,
            KeyFormat::unsigned_fixed(3, 2),
            KeyFormat::signed_fixed(4, 4),
        ] {
            assert_eq!(decode_format(format_code(f)), Some(f), "{f}");
        }
        assert_eq!(decode_format(3 << 16), None, "kind 3 is reserved");
        assert_eq!(decode_format(0), None, "zero-width format");
    }
}
