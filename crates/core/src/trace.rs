//! Operation trace recording and replay.
//!
//! A [`TracedDevice`] wraps a [`RimeDevice`] and logs every API call —
//! the sequence of `rime_malloc` / stores / `rime_init` / `rime_min` /
//! `rime_max` / `rime_free` operations an application issued. Traces
//! serve two production purposes:
//!
//! * **debugging** — a failing workload can be captured once and
//!   replayed deterministically against any device configuration;
//! * **regression** — [`replay`] re-executes a trace on a fresh device
//!   and returns the extracted values, so refactors of the device
//!   internals can be checked against recorded behaviour.

use rime_memristive::{Direction, KeyFormat};

use crate::device::{Region, RimeConfig, RimeDevice};
use crate::error::RimeError;

/// One recorded API call. Regions are identified by their ordinal
/// allocation index, which makes traces portable across devices.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// `rime_malloc(len)` → region ordinal = number of prior Allocs.
    Alloc {
        /// Requested length in key slots.
        len: u64,
    },
    /// `rime_free(region)`.
    Free {
        /// Ordinal of the freed region.
        region: usize,
    },
    /// Raw store into a region.
    Write {
        /// Region ordinal.
        region: usize,
        /// Region-relative slot offset.
        offset: u64,
        /// Raw key patterns.
        raw: Vec<u64>,
        /// Key format.
        format: KeyFormat,
    },
    /// `rime_init` over a sub-range.
    Init {
        /// Region ordinal.
        region: usize,
        /// Region-relative start.
        offset: u64,
        /// Length in slots.
        len: u64,
        /// Key format.
        format: KeyFormat,
    },
    /// `rime_min`/`rime_max`.
    Extract {
        /// Region ordinal.
        region: usize,
        /// Format the caller requested.
        format: KeyFormat,
        /// Min or max.
        direction: Direction,
    },
}

/// A recording wrapper around a device.
#[derive(Debug)]
pub struct TracedDevice {
    device: RimeDevice,
    regions: Vec<Region>,
    log: Vec<TraceOp>,
}

impl TracedDevice {
    /// Wraps a fresh device with the given configuration.
    pub fn new(config: RimeConfig) -> TracedDevice {
        TracedDevice {
            device: RimeDevice::new(config),
            regions: Vec::new(),
            log: Vec::new(),
        }
    }

    /// The recorded operations so far.
    pub fn log(&self) -> &[TraceOp] {
        &self.log
    }

    /// Consumes the wrapper, returning the trace.
    pub fn into_trace(self) -> Vec<TraceOp> {
        self.log
    }

    fn region(&self, ordinal: usize) -> Result<Region, RimeError> {
        self.regions
            .get(ordinal)
            .copied()
            .ok_or(RimeError::InvalidRegion)
    }

    /// Recorded `rime_malloc`; returns the region's ordinal.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (failed calls are not recorded).
    pub fn alloc(&mut self, len: u64) -> Result<usize, RimeError> {
        let region = self.device.alloc(len)?;
        self.regions.push(region);
        self.log.push(TraceOp::Alloc { len });
        Ok(self.regions.len() - 1)
    }

    /// Recorded `rime_free`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn free(&mut self, region: usize) -> Result<(), RimeError> {
        self.device.free(self.region(region)?)?;
        self.log.push(TraceOp::Free { region });
        Ok(())
    }

    /// Recorded raw store.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write_raw(
        &mut self,
        region: usize,
        offset: u64,
        raw: &[u64],
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        self.device
            .write_raw(self.region(region)?, offset, raw, format)?;
        self.log.push(TraceOp::Write {
            region,
            offset,
            raw: raw.to_vec(),
            format,
        });
        Ok(())
    }

    /// Recorded `rime_init`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn init_raw(
        &mut self,
        region: usize,
        offset: u64,
        len: u64,
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        self.device
            .init_raw(self.region(region)?, offset, len, format)?;
        self.log.push(TraceOp::Init {
            region,
            offset,
            len,
            format,
        });
        Ok(())
    }

    /// Recorded extraction; returns (global slot, raw bits).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn extract(
        &mut self,
        region: usize,
        format: KeyFormat,
        direction: Direction,
    ) -> Result<Option<(u64, u64)>, RimeError> {
        let out = self
            .device
            .next_extreme_raw(self.region(region)?, format, direction)?;
        self.log.push(TraceOp::Extract {
            region,
            format,
            direction,
        });
        Ok(out)
    }
}

/// Replays a trace on a fresh device with `config`, returning the raw
/// bits every `Extract` produced (in order; `None` entries mark
/// exhausted ranges).
///
/// # Errors
///
/// Propagates any device error the replayed operations hit.
pub fn replay(trace: &[TraceOp], config: RimeConfig) -> Result<Vec<Option<u64>>, RimeError> {
    let device = RimeDevice::new(config);
    let mut regions: Vec<Region> = Vec::new();
    let mut extracted = Vec::new();
    for op in trace {
        match op {
            TraceOp::Alloc { len } => regions.push(device.alloc(*len)?),
            TraceOp::Free { region } => {
                device.free(*regions.get(*region).ok_or(RimeError::InvalidRegion)?)?;
            }
            TraceOp::Write {
                region,
                offset,
                raw,
                format,
            } => {
                let r = *regions.get(*region).ok_or(RimeError::InvalidRegion)?;
                device.write_raw(r, *offset, raw, *format)?;
            }
            TraceOp::Init {
                region,
                offset,
                len,
                format,
            } => {
                let r = *regions.get(*region).ok_or(RimeError::InvalidRegion)?;
                device.init_raw(r, *offset, *len, *format)?;
            }
            TraceOp::Extract {
                region,
                format,
                direction,
            } => {
                let r = *regions.get(*region).ok_or(RimeError::InvalidRegion)?;
                extracted.push(
                    device
                        .next_extreme_raw(r, *format, *direction)?
                        .map(|(_, v)| v),
                );
            }
        }
    }
    Ok(extracted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_replays_identically() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        let r = traced.alloc(4).unwrap();
        traced
            .write_raw(r, 0, &[9, 2, 7, 5], KeyFormat::UNSIGNED64)
            .unwrap();
        traced.init_raw(r, 0, 4, KeyFormat::UNSIGNED64).unwrap();
        let mut live = Vec::new();
        for _ in 0..5 {
            live.push(
                traced
                    .extract(r, KeyFormat::UNSIGNED64, Direction::Min)
                    .unwrap()
                    .map(|(_, v)| v),
            );
        }
        traced.free(r).unwrap();
        assert_eq!(live, vec![Some(2), Some(5), Some(7), Some(9), None]);

        let trace = traced.into_trace();
        assert_eq!(trace.len(), 9); // alloc + write + init + 5 extracts + free
        let replayed = replay(&trace, RimeConfig::small()).unwrap();
        assert_eq!(replayed, live);
    }

    #[test]
    fn replay_works_on_a_different_geometry() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        let r = traced.alloc(3).unwrap();
        traced
            .write_raw(r, 0, &[3, 1, 2], KeyFormat::UNSIGNED32)
            .unwrap();
        traced.init_raw(r, 0, 3, KeyFormat::UNSIGNED32).unwrap();
        let _ = traced
            .extract(r, KeyFormat::UNSIGNED32, Direction::Max)
            .unwrap();
        let trace = traced.into_trace();

        // A bigger device must produce the same extraction results.
        let big = RimeConfig {
            chips_per_channel: 4,
            ..RimeConfig::small()
        };
        assert_eq!(replay(&trace, big).unwrap(), vec![Some(3)]);
    }

    #[test]
    fn stale_ordinals_error() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        assert!(traced.free(0).is_err());
        let trace = vec![TraceOp::Free { region: 3 }];
        assert!(replay(&trace, RimeConfig::small()).is_err());
    }

    #[test]
    fn failed_calls_are_not_recorded() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        let cap = traced.device.capacity();
        let _ = traced.alloc(cap + 1).unwrap_err();
        assert!(traced.log().is_empty());
    }
}
