//! Operation trace recording and replay.
//!
//! A [`TracedDevice`] wraps a [`RimeDevice`] and logs every API call —
//! the sequence of `rime_malloc` / stores / `rime_init` / `rime_min` /
//! `rime_min_k` / FIFO drains / `rime_free` operations an application
//! issued. Traces serve two production purposes:
//!
//! * **debugging** — a failing workload can be captured once and
//!   replayed deterministically against any device configuration;
//! * **regression** — [`replay`] re-executes a trace on a fresh device
//!   and returns the extracted values, so refactors of the device
//!   internals can be checked against recorded behaviour.
//!
//! Both halves sit at the command-plane boundary: recording is a
//! [`Telemetry`] sink ([`TraceRecorder`]) observing the executor's event
//! stream, and [`replay`] feeds typed [`Command`]s back through
//! [`RimeDevice::execute`]. Because the sink sees *commands* rather than
//! API entry points, every front-end lowering into the executor — the
//! typed API, MMIO doorbells, or another replay — is recordable with the
//! same code path, and new command variants (like the batch extraction
//! PR 1 added) are traced without recorder changes.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use rime_memristive::{Direction, KeyFormat};

use crate::cmd::{Command, Outcome};
use crate::device::{Region, RimeConfig, RimeDevice};
use crate::error::RimeError;
use crate::journal::{self, JournalError};
use crate::telemetry::{Telemetry, TelemetryEvent};

/// One recorded API call. Regions are identified by their ordinal
/// allocation index, which makes traces portable across devices.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// `rime_malloc(len)` → region ordinal = number of prior Allocs.
    Alloc {
        /// Requested length in key slots.
        len: u64,
    },
    /// `rime_free(region)`.
    Free {
        /// Ordinal of the freed region.
        region: usize,
    },
    /// Raw store into a region.
    Write {
        /// Region ordinal.
        region: usize,
        /// Region-relative slot offset.
        offset: u64,
        /// Raw key patterns.
        raw: Vec<u64>,
        /// Key format.
        format: KeyFormat,
    },
    /// `rime_init` over a sub-range.
    Init {
        /// Region ordinal.
        region: usize,
        /// Region-relative start.
        offset: u64,
        /// Length in slots.
        len: u64,
        /// Key format.
        format: KeyFormat,
    },
    /// `rime_min`/`rime_max`.
    Extract {
        /// Region ordinal.
        region: usize,
        /// Format the caller requested.
        format: KeyFormat,
        /// Min or max.
        direction: Direction,
    },
    /// Batched `rime_min_k`/`rime_max_k`.
    ExtractBatch {
        /// Region ordinal.
        region: usize,
        /// Format the caller requested.
        format: KeyFormat,
        /// Min or max.
        direction: Direction,
        /// Batch size.
        k: usize,
    },
    /// A drain of one already-buffered candidate (no chip engagement).
    FifoNext {
        /// Region ordinal.
        region: usize,
    },
}

/// A [`Telemetry`] sink that turns the executor's event stream into a
/// portable [`TraceOp`] log.
///
/// Failed commands are not recorded (they had no effect to reproduce),
/// and neither are plain reads — a trace captures the store/init/extract
/// sequence that determines device behaviour. Region handles are
/// translated to ordinal allocation indices as `Alloc` outcomes stream
/// past, so the log never references device-specific addresses.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    ordinals: HashMap<u64, usize>,
    next_ordinal: usize,
    log: Vec<TraceOp>,
}

impl TraceRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// The recorded operations so far.
    pub fn log(&self) -> &[TraceOp] {
        &self.log
    }

    /// Takes the recorded trace, leaving the recorder empty (region
    /// ordinal assignments are kept so recording can continue).
    pub fn take(&mut self) -> Vec<TraceOp> {
        std::mem::take(&mut self.log)
    }

    fn ordinal_of(&self, region: Region) -> Option<usize> {
        self.ordinals.get(&region.id).copied()
    }
}

impl Telemetry for TraceRecorder {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        let outcome = match event.result {
            Ok(outcome) => outcome,
            Err(_) => return, // failed calls are not recorded
        };
        match *event.command {
            Command::Alloc { len } => {
                if let Outcome::Region(region) = outcome {
                    self.ordinals.insert(region.id, self.next_ordinal);
                    self.next_ordinal += 1;
                    self.log.push(TraceOp::Alloc { len });
                }
            }
            Command::Free { region } => {
                if let Some(region) = self.ordinal_of(region) {
                    self.log.push(TraceOp::Free { region });
                }
            }
            Command::Write {
                region,
                offset,
                ref raw,
                format,
            } => {
                if let Some(region) = self.ordinal_of(region) {
                    self.log.push(TraceOp::Write {
                        region,
                        offset,
                        raw: raw.to_vec(),
                        format,
                    });
                }
            }
            Command::Read { .. } => {}
            Command::Init {
                region,
                offset,
                len,
                format,
            } => {
                if let Some(region) = self.ordinal_of(region) {
                    self.log.push(TraceOp::Init {
                        region,
                        offset,
                        len,
                        format,
                    });
                }
            }
            Command::Extract {
                region,
                format,
                direction,
            } => {
                if let Some(region) = self.ordinal_of(region) {
                    self.log.push(TraceOp::Extract {
                        region,
                        format,
                        direction,
                    });
                }
            }
            Command::ExtractBatch {
                region,
                format,
                direction,
                k,
            } => {
                if let Some(region) = self.ordinal_of(region) {
                    self.log.push(TraceOp::ExtractBatch {
                        region,
                        format,
                        direction,
                        k,
                    });
                }
            }
            Command::FifoNext { region } => {
                if let Some(region) = self.ordinal_of(region) {
                    self.log.push(TraceOp::FifoNext { region });
                }
            }
        }
    }
}

/// A recording wrapper around a device: a [`RimeDevice`] with a
/// [`TraceRecorder`] attached to its telemetry spine, plus the
/// ordinal→handle table the replay side needs.
#[derive(Debug)]
pub struct TracedDevice {
    device: RimeDevice,
    regions: Vec<Region>,
    recorder: Arc<Mutex<TraceRecorder>>,
}

impl TracedDevice {
    /// Wraps a fresh device with the given configuration.
    pub fn new(config: RimeConfig) -> TracedDevice {
        let device = RimeDevice::new(config);
        let recorder = Arc::new(Mutex::new(TraceRecorder::new()));
        device.attach_telemetry(recorder.clone());
        TracedDevice {
            device,
            regions: Vec::new(),
            recorder,
        }
    }

    /// The wrapped device (e.g. for counter or capacity inspection).
    pub fn device(&self) -> &RimeDevice {
        &self.device
    }

    fn recorder(&self) -> std::sync::MutexGuard<'_, TraceRecorder> {
        self.recorder.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The recorded operations so far.
    pub fn log(&self) -> Vec<TraceOp> {
        self.recorder().log().to_vec()
    }

    /// Consumes the wrapper, returning the trace.
    pub fn into_trace(self) -> Vec<TraceOp> {
        self.recorder().take()
    }

    fn region(&self, ordinal: usize) -> Result<Region, RimeError> {
        self.regions
            .get(ordinal)
            .copied()
            .ok_or(RimeError::InvalidRegion)
    }

    /// Recorded `rime_malloc`; returns the region's ordinal.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (failed calls are not recorded).
    pub fn alloc(&mut self, len: u64) -> Result<usize, RimeError> {
        let region = self.device.alloc(len)?;
        self.regions.push(region);
        Ok(self.regions.len() - 1)
    }

    /// Recorded `rime_free`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn free(&mut self, region: usize) -> Result<(), RimeError> {
        self.device.free(self.region(region)?)
    }

    /// Recorded raw store.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn write_raw(
        &mut self,
        region: usize,
        offset: u64,
        raw: &[u64],
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        self.device
            .write_raw(self.region(region)?, offset, raw, format)
    }

    /// Recorded `rime_init`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn init_raw(
        &mut self,
        region: usize,
        offset: u64,
        len: u64,
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        self.device
            .init_raw(self.region(region)?, offset, len, format)
    }

    /// Recorded extraction; returns (global slot, raw bits).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn extract(
        &mut self,
        region: usize,
        format: KeyFormat,
        direction: Direction,
    ) -> Result<Option<(u64, u64)>, RimeError> {
        self.device
            .next_extreme_raw(self.region(region)?, format, direction)
    }

    /// Recorded batch extraction (`rime_min_k`/`rime_max_k`); returns up
    /// to `k` (global slot, raw bits) pairs in extraction order.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn extract_batch(
        &mut self,
        region: usize,
        format: KeyFormat,
        direction: Direction,
        k: usize,
    ) -> Result<Vec<(u64, u64)>, RimeError> {
        self.device
            .next_extremes_raw(self.region(region)?, format, direction, k)
    }

    /// Recorded FIFO drain of one already-buffered candidate.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn fifo_next(&mut self, region: usize) -> Result<Option<(u64, u64)>, RimeError> {
        self.device.fifo_next_raw(self.region(region)?)
    }
}

// ---------------------------------------------------------------------
// Trace serialization
// ---------------------------------------------------------------------

/// Trace file magic: identifies format and version in one probe.
const TRACE_MAGIC: &[u8; 8] = b"RIMETRC1";

/// Serializes a trace for persistence: `RIMETRC1` magic, op count, the
/// ops (journal codec), and a trailing CRC-32 over everything before
/// it. The CRC makes torn writes *detectable*: a truncated or corrupted
/// file decodes to a typed [`JournalError`], never to a silently
/// shortened trace.
pub fn encode_trace(trace: &[TraceOp]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(TRACE_MAGIC);
    journal::put_u32(&mut buf, trace.len() as u32);
    for op in trace {
        put_trace_op(&mut buf, op);
    }
    let crc = journal::crc32(&buf);
    journal::put_u32(&mut buf, crc);
    buf
}

/// Decodes a trace serialized by [`encode_trace`]. All-or-nothing: any
/// truncation, corruption, or undecodable content is a typed error and
/// no ops are returned.
///
/// # Errors
///
/// [`JournalError::BadMagic`] for a foreign file,
/// [`JournalError::TruncatedRecord`] when the buffer is too short to
/// even frame, [`JournalError::BadChecksum`] when the body fails its
/// CRC (torn write or bit rot), and [`JournalError::Decode`] for
/// CRC-valid but structurally invalid content.
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<TraceOp>, JournalError> {
    if bytes.len() < TRACE_MAGIC.len() {
        return Err(JournalError::TruncatedRecord {
            offset: bytes.len() as u64,
        });
    }
    if &bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
        return Err(JournalError::BadMagic);
    }
    if bytes.len() < TRACE_MAGIC.len() + 8 {
        return Err(JournalError::TruncatedRecord {
            offset: bytes.len() as u64,
        });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if journal::crc32(body) != want {
        return Err(JournalError::BadChecksum { offset: 0 });
    }
    let mut d = journal::Dec::new(&body[TRACE_MAGIC.len()..]);
    let n = d.len_prefix(1)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(get_trace_op(&mut d)?);
    }
    d.finish("trace")?;
    Ok(ops)
}

fn put_trace_op(buf: &mut Vec<u8>, op: &TraceOp) {
    match *op {
        TraceOp::Alloc { len } => {
            journal::put_u8(buf, 0);
            journal::put_u64(buf, len);
        }
        TraceOp::Free { region } => {
            journal::put_u8(buf, 1);
            journal::put_u64(buf, region as u64);
        }
        TraceOp::Write {
            region,
            offset,
            ref raw,
            format,
        } => {
            journal::put_u8(buf, 2);
            journal::put_u64(buf, region as u64);
            journal::put_u64(buf, offset);
            journal::put_u32(buf, raw.len() as u32);
            for &word in raw {
                journal::put_u64(buf, word);
            }
            journal::put_format(buf, format);
        }
        TraceOp::Init {
            region,
            offset,
            len,
            format,
        } => {
            journal::put_u8(buf, 3);
            journal::put_u64(buf, region as u64);
            journal::put_u64(buf, offset);
            journal::put_u64(buf, len);
            journal::put_format(buf, format);
        }
        TraceOp::Extract {
            region,
            format,
            direction,
        } => {
            journal::put_u8(buf, 4);
            journal::put_u64(buf, region as u64);
            journal::put_format(buf, format);
            journal::put_direction(buf, direction);
        }
        TraceOp::ExtractBatch {
            region,
            format,
            direction,
            k,
        } => {
            journal::put_u8(buf, 5);
            journal::put_u64(buf, region as u64);
            journal::put_format(buf, format);
            journal::put_direction(buf, direction);
            journal::put_u64(buf, k as u64);
        }
        TraceOp::FifoNext { region } => {
            journal::put_u8(buf, 6);
            journal::put_u64(buf, region as u64);
        }
    }
}

fn get_trace_op(d: &mut journal::Dec<'_>) -> Result<TraceOp, JournalError> {
    let ordinal = |v: u64| -> Result<usize, JournalError> {
        usize::try_from(v).map_err(|_| JournalError::Decode {
            what: format!("region ordinal {v} exceeds usize"),
        })
    };
    match d.u8()? {
        0 => Ok(TraceOp::Alloc { len: d.u64()? }),
        1 => Ok(TraceOp::Free {
            region: ordinal(d.u64()?)?,
        }),
        2 => Ok(TraceOp::Write {
            region: ordinal(d.u64()?)?,
            offset: d.u64()?,
            raw: d.u64_vec()?,
            format: journal::get_format(d)?,
        }),
        3 => Ok(TraceOp::Init {
            region: ordinal(d.u64()?)?,
            offset: d.u64()?,
            len: d.u64()?,
            format: journal::get_format(d)?,
        }),
        4 => Ok(TraceOp::Extract {
            region: ordinal(d.u64()?)?,
            format: journal::get_format(d)?,
            direction: journal::get_direction(d)?,
        }),
        5 => Ok(TraceOp::ExtractBatch {
            region: ordinal(d.u64()?)?,
            format: journal::get_format(d)?,
            direction: journal::get_direction(d)?,
            k: ordinal(d.u64()?)?,
        }),
        6 => Ok(TraceOp::FifoNext {
            region: ordinal(d.u64()?)?,
        }),
        tag => Err(JournalError::Decode {
            what: format!("unknown trace op tag {tag}"),
        }),
    }
}

/// Replays a trace on a fresh device with `config`, returning the raw
/// bits every extraction produced (in order; `None` entries mark
/// exhausted ranges or dry FIFO drains; each `ExtractBatch` contributes
/// one `Some` entry per extracted value).
///
/// Replay is a third front-end of the command plane: each [`TraceOp`] is
/// lowered back into a typed [`Command`] and fed through
/// [`RimeDevice::execute`], so replayed operations take exactly the
/// executor path the original ones did.
///
/// # Errors
///
/// Propagates any device error the replayed operations hit.
pub fn replay(trace: &[TraceOp], config: RimeConfig) -> Result<Vec<Option<u64>>, RimeError> {
    let device = RimeDevice::new(config);
    let mut regions: Vec<Region> = Vec::new();
    let mut extracted = Vec::new();
    let resolve = |regions: &[Region], ordinal: usize| {
        regions
            .get(ordinal)
            .copied()
            .ok_or(RimeError::InvalidRegion)
    };
    for op in trace {
        let lowered = match *op {
            TraceOp::Alloc { len } => Command::Alloc { len },
            TraceOp::Free { region } => Command::Free {
                region: resolve(&regions, region)?,
            },
            TraceOp::Write {
                region,
                offset,
                ref raw,
                format,
            } => Command::Write {
                region: resolve(&regions, region)?,
                offset,
                raw: Cow::Borrowed(raw.as_slice()),
                format,
            },
            TraceOp::Init {
                region,
                offset,
                len,
                format,
            } => Command::Init {
                region: resolve(&regions, region)?,
                offset,
                len,
                format,
            },
            TraceOp::Extract {
                region,
                format,
                direction,
            } => Command::Extract {
                region: resolve(&regions, region)?,
                format,
                direction,
            },
            TraceOp::ExtractBatch {
                region,
                format,
                direction,
                k,
            } => Command::ExtractBatch {
                region: resolve(&regions, region)?,
                format,
                direction,
                k,
            },
            TraceOp::FifoNext { region } => Command::FifoNext {
                region: resolve(&regions, region)?,
            },
        };
        match device.execute(lowered)? {
            Outcome::Region(region) => regions.push(region),
            Outcome::Hit(hit) => extracted.push(hit.map(|(_, v)| v)),
            Outcome::Hits(hits) => extracted.extend(hits.into_iter().map(|(_, v)| Some(v))),
            Outcome::Done | Outcome::Keys(_) => {}
        }
    }
    Ok(extracted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_replays_identically() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        let r = traced.alloc(4).unwrap();
        traced
            .write_raw(r, 0, &[9, 2, 7, 5], KeyFormat::UNSIGNED64)
            .unwrap();
        traced.init_raw(r, 0, 4, KeyFormat::UNSIGNED64).unwrap();
        let mut live = Vec::new();
        for _ in 0..5 {
            live.push(
                traced
                    .extract(r, KeyFormat::UNSIGNED64, Direction::Min)
                    .unwrap()
                    .map(|(_, v)| v),
            );
        }
        traced.free(r).unwrap();
        assert_eq!(live, vec![Some(2), Some(5), Some(7), Some(9), None]);

        let trace = traced.into_trace();
        assert_eq!(trace.len(), 9); // alloc + write + init + 5 extracts + free
        let replayed = replay(&trace, RimeConfig::small()).unwrap();
        assert_eq!(replayed, live);
    }

    #[test]
    fn replay_works_on_a_different_geometry() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        let r = traced.alloc(3).unwrap();
        traced
            .write_raw(r, 0, &[3, 1, 2], KeyFormat::UNSIGNED32)
            .unwrap();
        traced.init_raw(r, 0, 3, KeyFormat::UNSIGNED32).unwrap();
        let _ = traced
            .extract(r, KeyFormat::UNSIGNED32, Direction::Max)
            .unwrap();
        let trace = traced.into_trace();

        // A bigger device must produce the same extraction results.
        let big = RimeConfig {
            chips_per_channel: 4,
            ..RimeConfig::small()
        };
        assert_eq!(replay(&trace, big).unwrap(), vec![Some(3)]);
    }

    #[test]
    fn stale_ordinals_error() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        assert!(traced.free(0).is_err());
        let trace = vec![TraceOp::Free { region: 3 }];
        assert!(replay(&trace, RimeConfig::small()).is_err());
    }

    #[test]
    fn failed_calls_are_not_recorded() {
        let mut traced = TracedDevice::new(RimeConfig::small());
        let cap = traced.device().capacity();
        let _ = traced.alloc(cap + 1).unwrap_err();
        // A faulting extraction is not recorded either.
        let r = traced.alloc(2).unwrap();
        let _ = traced
            .extract(r, KeyFormat::UNSIGNED64, Direction::Min)
            .unwrap_err();
        assert_eq!(traced.log(), vec![TraceOp::Alloc { len: 2 }]);
    }

    #[test]
    fn batch_trace_records_and_replays_bit_identically() {
        // Regression: a rime_min_k workload (with FIFO drains and a
        // direction switch) recorded through the telemetry sink replays
        // bit-identically through the command plane.
        let mut traced = TracedDevice::new(RimeConfig::small());
        // Span two chips so the batch leaves candidates buffered on the
        // losing chip — the FIFO drain then has real work to do.
        let n = traced.device().config().chip_slots() + 8;
        let keys: Vec<u64> = (0..n).map(|i| (i * 7919) % 104729).collect();
        let r = traced.alloc(keys.len() as u64).unwrap();
        traced
            .write_raw(r, 0, &keys, KeyFormat::UNSIGNED64)
            .unwrap();
        traced
            .init_raw(r, 0, keys.len() as u64, KeyFormat::UNSIGNED64)
            .unwrap();

        let mut live: Vec<Option<u64>> = Vec::new();
        let batch = traced
            .extract_batch(r, KeyFormat::UNSIGNED64, Direction::Min, 7)
            .unwrap();
        assert_eq!(batch.len(), 7);
        live.extend(batch.iter().map(|&(_, v)| Some(v)));
        // Drain whatever the batch left buffered.
        let mut drained = 0;
        while let Some((_, v)) = traced.fifo_next(r).unwrap() {
            live.push(Some(v));
            drained += 1;
        }
        assert!(drained > 0, "batch left buffered candidates to drain");
        live.push(None); // the dry drain itself
                         // Direction switch re-arms; take the top 3.
        let top = traced
            .extract_batch(r, KeyFormat::UNSIGNED64, Direction::Max, 3)
            .unwrap();
        let mut want = keys.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(
            top.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            want[..3].to_vec()
        );
        live.extend(top.iter().map(|&(_, v)| Some(v)));
        traced.free(r).unwrap();

        let trace = traced.into_trace();
        assert!(trace
            .iter()
            .any(|op| matches!(op, TraceOp::ExtractBatch { k: 7, .. })));
        assert!(trace
            .iter()
            .any(|op| matches!(op, TraceOp::FifoNext { .. })));
        let replayed = replay(&trace, RimeConfig::small()).unwrap();
        assert_eq!(replayed, live);
    }

    /// One of every op, with non-default formats and both directions.
    fn exemplar_trace() -> Vec<TraceOp> {
        vec![
            TraceOp::Alloc { len: 6 },
            TraceOp::Write {
                region: 0,
                offset: 1,
                raw: vec![9, 2, 7],
                format: KeyFormat::SIGNED32,
            },
            TraceOp::Init {
                region: 0,
                offset: 0,
                len: 6,
                format: KeyFormat::FLOAT64,
            },
            TraceOp::Extract {
                region: 0,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
            },
            TraceOp::ExtractBatch {
                region: 0,
                format: KeyFormat::UNSIGNED32,
                direction: Direction::Max,
                k: 3,
            },
            TraceOp::FifoNext { region: 0 },
            TraceOp::Free { region: 0 },
        ]
    }

    #[test]
    fn every_trace_op_round_trips_through_the_codec() {
        let trace = exemplar_trace();
        let bytes = encode_trace(&trace);
        assert_eq!(decode_trace(&bytes).unwrap(), trace);
        // An empty trace is a valid (if dull) file.
        let empty = encode_trace(&[]);
        assert_eq!(decode_trace(&empty).unwrap(), Vec::<TraceOp>::new());
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error_never_a_partial_trace() {
        // A torn write leaves a prefix of the file. Every possible cut
        // must yield a typed JournalError — no panic, and (since decode
        // is all-or-nothing) no partially applied trace.
        let bytes = encode_trace(&exemplar_trace());
        for cut in 0..bytes.len() {
            let err = decode_trace(&bytes[..cut])
                .expect_err(&format!("cut at {cut} of {} decoded", bytes.len()));
            assert!(
                matches!(
                    err,
                    JournalError::TruncatedRecord { .. } | JournalError::BadChecksum { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn interior_corruption_fails_the_checksum() {
        let mut bytes = encode_trace(&exemplar_trace());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            JournalError::BadChecksum { offset: 0 }
        );
    }

    #[test]
    fn foreign_magic_is_refused() {
        assert_eq!(
            decode_trace(b"NOTATRCE-rest-doesnt-matter").unwrap_err(),
            JournalError::BadMagic
        );
        // Valid CRC but an unknown op tag: structurally undecodable.
        let mut body = Vec::new();
        body.extend_from_slice(b"RIMETRC1");
        crate::journal::put_u32(&mut body, 1);
        crate::journal::put_u8(&mut body, 200);
        let crc = crate::journal::crc32(&body);
        crate::journal::put_u32(&mut body, crc);
        assert!(matches!(
            decode_trace(&body).unwrap_err(),
            JournalError::Decode { .. }
        ));
    }
}
