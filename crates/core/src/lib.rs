//! # rime-core
//!
//! The primary contribution of *Memristive Data Ranking* (HPCA 2021):
//! RIME, a hardware/software co-design for in-situ data ranking in
//! memristive memory. This crate layers the paper's software stack on top
//! of the bit-accurate chip model in [`rime_memristive`]:
//!
//! * [`driver`] — the kernel driver's contiguous physical allocator
//!   (§V, Fig. 13), which makes the H-tree index reduction usable.
//! * [`cmd`] — the unified command plane: the typed [`cmd::Command`] IR
//!   and the single [`cmd::Executor`] that owns validation, chip
//!   dispatch, and result marshalling for *every* front-end.
//! * [`telemetry`] — the observer spine over the executor: one ordered
//!   event stream feeding counters, energy, wear, and trace sinks.
//! * [`metrics`] — the metrics registry and span layer over that spine:
//!   counters, gauges, and log2-bucket histograms with Prometheus/JSON
//!   export, deterministic for modeled quantities.
//! * [`device`] — the full device (channels × DIMMs × chips) plus the
//!   userspace API library of Fig. 12: `rime_malloc`, `rime_init`,
//!   `rime_min`, `rime_max`, `rime_free`, and ordinary loads/stores, with
//!   Fig. 14's multi-chip buffered coordination — thin encoders over
//!   [`cmd`].
//! * [`dimm`] — boot-time DIMM mode configuration and the §V multi-DIMM
//!   address mapping (bit 2³⁰ selects the DIMM).
//! * [`mmio`] — the §V memory-mapped register interface: the same
//!   operations driven by strong-uncacheable reads/writes at fixed
//!   offsets, as a kernel driver would issue them.
//! * [`ops`] — rank / sort / merge / merge-join built from those
//!   primitives with the bandwidth complexities of §III-B.
//! * [`perf`] — the calibrated analytic performance model used by the
//!   figure-regeneration harness at paper scale.
//! * [`trace`] — operation trace recording and deterministic replay for
//!   debugging and regression testing.
//! * [`journal`] — the crash-consistency layer: an append-only,
//!   checksummed write-ahead log of commands with commit markers and
//!   periodic checkpoints, plus the typed [`journal::scan`] reader and
//!   the `crash-test`-gated fault injector behind
//!   [`cmd::Executor::recover`].
//!
//! # Quickstart
//!
//! ```
//! use rime_core::{ops, RimeConfig, RimeDevice};
//!
//! # fn main() -> Result<(), rime_core::RimeError> {
//! let dev = RimeDevice::new(RimeConfig::small());
//!
//! // rime_malloc + ordinary stores
//! let region = dev.alloc(6)?;
//! dev.write(region, 0, &[5.5f32, -1.0, 3.25, 0.0, -7.5, 2.0])?;
//!
//! // rime_init + batched rime_min_k = an ordered stream
//! let sorted = ops::sort_into_vec::<f32>(&dev, region)?;
//! assert_eq!(sorted, vec![-7.5, -1.0, 0.0, 2.0, 3.25, 5.5]);
//!
//! dev.free(region)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmd;
pub mod device;
pub mod dimm;
pub mod driver;
pub mod error;
pub mod journal;
pub mod metrics;
pub mod mmio;
pub mod ops;
pub mod perf;
pub mod telemetry;
pub mod trace;

pub use cmd::{Command, Executor, Outcome};
pub use device::{Region, RimeConfig, RimeDevice};
pub use driver::{ContiguousAllocator, DriverConfig};
pub use error::RimeError;
#[cfg(feature = "crash-test")]
pub use journal::{CrashPoint, CrashSignal};
pub use journal::{
    FileJournalStore, Journal, JournalConfig, JournalError, JournalRecord, JournalStore,
    MemJournalStore, RecoveryReport, ScanReport,
};
pub use metrics::{ChipProbe, MetricValue, MetricsRegistry, MetricsSink, Snapshot};
pub use perf::{Placement, RimePerfConfig};
pub use telemetry::{SharedSink, Telemetry, TelemetryEvent};

// Re-export the substrate types callers need at the API boundary.
pub use rime_memristive::{Direction, KeyFormat, OpCounters, ParallelPolicy, SortableBits};
