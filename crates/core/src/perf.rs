//! Analytic performance model of a RIME system.
//!
//! The functional model ([`crate::device`]) is exact but executes every
//! column search; the figure sweeps go to 65M keys, where the paper-scale
//! behaviour is governed by four rates, all derived from Table I:
//!
//! 1. **Chip compute** — one in-situ extraction takes
//!    `tCompute(k) + tRead ≈ 286.8 ns` for 64-bit keys. Every chip ranks
//!    its ranges independently, so chips are the unit of concurrency
//!    (Fig. 14 activates all chips and then only the winner). The
//!    functional executor honors this: multi-chip batched commands run
//!    each chip's prefill concurrently, so [`modeled_busy_ns`] taking
//!    the max over chips matches how the simulator actually schedules.
//! 2. **Interface** — `rime_min` results and refill commands travel as
//!    in-order strong-uncacheable DDR4 accesses (§V), a fixed cost per
//!    value per channel.
//! 3. **CPU reduce** — the library's cross-chip winner selection
//!    (a handful of cycles per value, spread over cores).
//! 4. **Init** — each `rime_init` walks the H-tree (microseconds).
//!
//! A sorted stream therefore runs at
//! `min(active_chips / t_extract, channels / t_interface, cpu)` values
//! per second — *independent of data size* once data is spread over the
//! chips, which is exactly the insensitivity §VII-A reports.
//!
//! All tunables live in [`RimePerfConfig`]; the defaults are calibrated so
//! the headline factors (Figs. 15–18) land in the paper's reported ranges
//! against the baseline model in `rime-memsim` (see `EXPERIMENTS.md`).

use rime_memristive::{ArrayTiming, OpCounters};

/// Modeled busy time (ns) of the busiest chip given each chip's
/// accumulated counters — the device-side critical path when chips
/// operate concurrently (Fig. 14 activates all spanned chips at once).
pub fn modeled_busy_ns(timing: &ArrayTiming, per_chip: &[OpCounters]) -> f64 {
    per_chip
        .iter()
        .map(|c| timing.time_ns(c))
        .fold(0.0, f64::max)
}

/// Modeled array energy (nJ) summed over all chips given each chip's
/// accumulated counters. Energy is linear in the counters, so summing
/// per-chip contributions equals pricing the aggregated totals.
pub fn modeled_energy_nj(timing: &ArrayTiming, per_chip: &[OpCounters]) -> f64 {
    per_chip.iter().map(|c| timing.energy_nj(c)).sum()
}

/// How a dataset is laid out across the RIME chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One contiguous region (single `rime_malloc`): spans
    /// `ceil(n / keys_per_chip)` chips.
    Contiguous,
    /// The application allocates one region per chip and stripes data
    /// (Fig. 12's explicit-address `rime_malloc` permits this), engaging
    /// every chip even for small datasets. The RIME sort kernels use this.
    Striped,
}

/// Tunable parameters of the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RimePerfConfig {
    /// Device timing (Table I).
    pub timing: ArrayTiming,
    /// RIME channels.
    pub channels: u32,
    /// Chips per channel (Table I: 8).
    pub chips_per_channel: u32,
    /// Key slots per chip (Table I geometry: 2 Mi slots).
    pub keys_per_chip: u64,
    /// Key width in bits (column-search steps per extraction).
    pub key_bits: u16,
    /// Latency of one in-order strong-uncacheable interface access (ns).
    pub uc_access_ns: f64,
    /// Interface accesses per extracted value (result read + amortized
    /// refill command).
    pub interface_accesses_per_value: f64,
    /// CPU cycles per value for the library's cross-chip reduce.
    pub cpu_reduce_cycles: f64,
    /// Cores available to the library.
    pub cores: u32,
    /// CPU clock (GHz).
    pub clock_ghz: f64,
    /// Overhead of one `rime_init` (ns): H-tree walk + register writes.
    pub init_ns: f64,
    /// Interface bandwidth per channel for bulk data loads (GB/s).
    pub load_gbps_per_channel: f64,
    /// Minimum keys per striped stream for striping to be worthwhile.
    pub min_keys_per_chip_stream: u64,
}

impl RimePerfConfig {
    /// The calibrated Table I configuration (4 channels × 8 chips).
    pub fn table1() -> RimePerfConfig {
        RimePerfConfig {
            timing: ArrayTiming::table1(),
            channels: 4,
            chips_per_channel: 8,
            keys_per_chip: 1024 * 4 * 512, // ChipGeometry::table1 slots
            key_bits: 64,
            uc_access_ns: 70.0,
            interface_accesses_per_value: 1.6,
            cpu_reduce_cycles: 20.0,
            cores: 64,
            clock_ghz: 2.0,
            init_ns: 2_000.0,
            load_gbps_per_channel: 12.8,
            min_keys_per_chip_stream: 1024,
        }
    }

    /// Total chips.
    pub fn total_chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// One in-situ extraction: full `k`-step compute plus the result row
    /// read (ns).
    pub fn extract_ns(&self) -> f64 {
        self.timing.extraction_time_ns(self.key_bits) + self.timing.t_read_ns
    }

    /// Number of chips engaged for `n` keys under `placement`.
    pub fn active_chips(&self, n: u64, placement: Placement) -> u32 {
        let max = self.total_chips() as u64;
        let chips = match placement {
            Placement::Contiguous => n.div_ceil(self.keys_per_chip.max(1)),
            Placement::Striped => n / self.min_keys_per_chip_stream.max(1),
        };
        chips.clamp(1, max) as u32
    }

    /// Number of channels engaged by `chips` active chips.
    fn active_channels(&self, chips: u32) -> u32 {
        chips.div_ceil(self.chips_per_channel).max(1)
    }

    /// Steady-state sorted-stream rate in values per second for `n` keys.
    pub fn stream_rate_vps(&self, n: u64, placement: Placement) -> f64 {
        let chips = self.active_chips(n, placement);
        let channels = self.active_channels(chips);
        let chip_rate = chips as f64 / (self.extract_ns() * 1e-9);
        let interface_rate =
            channels as f64 / (self.interface_accesses_per_value * self.uc_access_ns * 1e-9);
        let cpu_rate = self.cores as f64 * self.clock_ghz * 1e9 / self.cpu_reduce_cycles;
        chip_rate.min(interface_rate).min(cpu_rate)
    }

    /// Wall-clock seconds to stream `extractions` ordered values out of
    /// `n` stored keys (sort: `extractions = n`; rank-k: `k`).
    pub fn stream_seconds(&self, n: u64, extractions: u64, placement: Placement) -> f64 {
        let inits = self.active_chips(n, placement) as f64;
        inits * self.init_ns * 1e-9 + extractions as f64 / self.stream_rate_vps(n, placement)
    }

    /// Sort throughput in million keys per second (Fig. 15's y-axis).
    pub fn sort_throughput_mkps(&self, n: u64, placement: Placement) -> f64 {
        n as f64 / self.stream_seconds(n, n, placement) / 1e6
    }

    /// Seconds to bulk-load `n` keys of `bytes_per_key` into the device
    /// over the DDR4 interface (ordinary writes; array `tWrite` is hidden
    /// by mat-level parallelism).
    pub fn load_seconds(&self, n: u64, bytes_per_key: u64, placement: Placement) -> f64 {
        let chips = self.active_chips(n, placement);
        let channels = self.active_channels(chips);
        let gbps = self.load_gbps_per_channel * channels as f64;
        (n * bytes_per_key) as f64 / (gbps * 1e9)
    }

    /// Average chip power while one chip computes continuously (W) —
    /// the §VII-B budget check.
    pub fn chip_compute_power_w(&self) -> f64 {
        self.timing.extraction_energy_nj(self.key_bits) / self.extract_ns()
    }

    /// Energy of extracting `extractions` values (nJ), array side only.
    pub fn extraction_energy_nj(&self, extractions: u64) -> f64 {
        self.timing.extraction_energy_nj(self.key_bits) * extractions as f64
    }
}

impl Default for RimePerfConfig {
    fn default() -> Self {
        RimePerfConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_ns_is_max_energy_is_sum() {
        let timing = ArrayTiming::table1();
        let mut a = OpCounters::new();
        a.row_reads = 10;
        let mut b = OpCounters::new();
        b.row_reads = 3;
        let per_chip = [a, b];
        assert!((modeled_busy_ns(&timing, &per_chip) - timing.time_ns(&a)).abs() < 1e-9);
        let want = timing.energy_nj(&a) + timing.energy_nj(&b);
        assert!((modeled_energy_nj(&timing, &per_chip) - want).abs() < 1e-9);
        assert_eq!(modeled_busy_ns(&timing, &[]), 0.0);
    }

    #[test]
    fn extraction_latency_matches_table1() {
        let cfg = RimePerfConfig::table1();
        assert!((cfg.extract_ns() - 286.8).abs() < 1e-6);
        assert_eq!(cfg.total_chips(), 32);
    }

    #[test]
    fn striped_engages_all_chips_early() {
        let cfg = RimePerfConfig::table1();
        assert_eq!(cfg.active_chips(500_000, Placement::Striped), 32);
        assert_eq!(cfg.active_chips(500_000, Placement::Contiguous), 1);
        assert_eq!(cfg.active_chips(5_000, Placement::Striped), 4);
        assert_eq!(cfg.active_chips(1, Placement::Striped), 1);
        // 65M keys / 2Mi slots per chip = 31 chips.
        assert_eq!(cfg.active_chips(65_000_000, Placement::Contiguous), 31);
    }

    #[test]
    fn throughput_in_paper_range_and_flat() {
        // Fig. 15: RIME sorts tens of MKps, insensitive to data size.
        let cfg = RimePerfConfig::table1();
        let t1 = cfg.sort_throughput_mkps(500_000, Placement::Striped);
        let t2 = cfg.sort_throughput_mkps(65_000_000, Placement::Striped);
        assert!(t1 > 20.0 && t1 < 80.0, "t1 = {t1}");
        assert!((t1 - t2).abs() / t2 < 0.1, "flat: {t1} vs {t2}");
    }

    #[test]
    fn single_chip_rate_is_extraction_bound() {
        let cfg = RimePerfConfig::table1();
        let rate = cfg.stream_rate_vps(1000, Placement::Contiguous);
        let chip_bound = 1.0 / (cfg.extract_ns() * 1e-9);
        assert!((rate - chip_bound).abs() / chip_bound < 1e-9);
    }

    #[test]
    fn rank_k_cost_scales_with_k_not_n() {
        let cfg = RimePerfConfig::table1();
        let t_k100 = cfg.stream_seconds(65_000_000, 100, Placement::Striped);
        let t_k10000 = cfg.stream_seconds(65_000_000, 10_000, Placement::Striped);
        let t_full = cfg.stream_seconds(65_000_000, 65_000_000, Placement::Striped);
        assert!(t_k100 < t_k10000);
        assert!(t_k10000 < t_full / 100.0);
    }

    #[test]
    fn power_within_an_order_of_the_1w_budget() {
        // §VII-B: the library keeps peak power at 1 W; one computing chip
        // draws ~0.18 W in our model.
        let cfg = RimePerfConfig::table1();
        let p = cfg.chip_compute_power_w();
        assert!(p > 0.05 && p < 0.5, "chip power {p} W");
    }

    #[test]
    fn load_time_scales_with_bytes() {
        let cfg = RimePerfConfig::table1();
        let t1 = cfg.load_seconds(1_000_000, 8, Placement::Striped);
        let t2 = cfg.load_seconds(2_000_000, 8, Placement::Striped);
        assert!(t2 > 1.9 * t1);
    }
}
