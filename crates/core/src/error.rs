//! Error type for the RIME device API.

use std::error::Error as StdError;
use std::fmt;

use rime_memristive::Error as ChipError;

/// Errors reported by the RIME device and its API library.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RimeError {
    /// `rime_malloc` could not find a contiguous physical extent of the
    /// requested size (§V: the API returns null in this case; callers may
    /// `rime_free` and retry).
    OutOfContiguousMemory {
        /// Requested size in key slots.
        requested: u64,
        /// Largest available contiguous extent.
        largest_free: u64,
    },
    /// A region handle was stale (already freed) or foreign to the device.
    InvalidRegion,
    /// An offset/length fell outside the region.
    OutOfBounds {
        /// Offending offset (in key slots, region-relative).
        offset: u64,
        /// Region length in key slots.
        len: u64,
    },
    /// A ranking call was issued before `rime_init` for that range.
    NotInitialized,
    /// The stored key format differs from the operation's format.
    TypeMismatch {
        /// Format recorded when the region was written/initialized.
        stored: &'static str,
        /// Format the operation requested.
        requested: &'static str,
    },
    /// An underlying chip-model fault (address decode, width, …).
    Chip(ChipError),
    /// The write-ahead journal failed (I/O, corruption, or a recovery
    /// that could not reconstruct a bit-identical device).
    Journal(crate::journal::JournalError),
}

impl fmt::Display for RimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RimeError::OutOfContiguousMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "no contiguous extent of {requested} slots (largest free: {largest_free})"
            ),
            RimeError::InvalidRegion => write!(f, "stale or foreign region handle"),
            RimeError::OutOfBounds { offset, len } => {
                write!(f, "offset {offset} outside region of {len} slots")
            }
            RimeError::NotInitialized => write!(f, "rime_min/rime_max before rime_init"),
            RimeError::TypeMismatch { stored, requested } => {
                write!(
                    f,
                    "region holds {stored} keys but {requested} was requested"
                )
            }
            RimeError::Chip(e) => write!(f, "chip fault: {e}"),
            RimeError::Journal(e) => write!(f, "journal fault: {e}"),
        }
    }
}

impl StdError for RimeError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            RimeError::Chip(e) => Some(e),
            RimeError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipError> for RimeError {
    fn from(e: ChipError) -> RimeError {
        RimeError::Chip(e)
    }
}

impl From<crate::journal::JournalError> for RimeError {
    fn from(e: crate::journal::JournalError) -> RimeError {
        RimeError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RimeError::OutOfContiguousMemory {
            requested: 100,
            largest_free: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(RimeError::NotInitialized.to_string().contains("rime_init"));
    }

    #[test]
    fn chip_errors_convert_and_chain() {
        let chip = ChipError::NotInitialized;
        let e: RimeError = chip.clone().into();
        assert_eq!(e, RimeError::Chip(chip));
        assert!(StdError::source(&e).is_some());
    }

    #[test]
    fn journal_errors_convert_and_chain() {
        let journal = crate::journal::JournalError::BadMagic;
        let e: RimeError = journal.clone().into();
        assert_eq!(e, RimeError::Journal(journal));
        assert!(e.to_string().contains("journal"));
        assert!(StdError::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RimeError>();
    }
}
