//! The RIME device: DIMMs of ranking chips behind a DDR4 interface (§V).
//!
//! [`RimeDevice`] is the functional model of a full RIME memory system —
//! multiple single-DIMM channels, eight chips per DIMM (Table I) — together
//! with the userspace API library of Fig. 12:
//!
//! | paper API      | here                                   |
//! |----------------|----------------------------------------|
//! | `rime_malloc`  | [`RimeDevice::alloc`]                  |
//! | `rime_free`    | [`RimeDevice::free`]                   |
//! | loads/stores   | [`RimeDevice::write`] / [`RimeDevice::read`] |
//! | `rime_init`    | [`RimeDevice::init`]                   |
//! | `rime_min`     | [`RimeDevice::rime_min`]               |
//! | `rime_max`     | [`RimeDevice::rime_max`]               |
//!
//! Every public method is a thin *encoder*: it builds the corresponding
//! typed [`Command`] and hands it to the device's single
//! [`crate::cmd::Executor`], which owns validation, chip dispatch, and
//! result marshalling. The MMIO register file ([`crate::mmio`]) and
//! trace replay ([`crate::trace`]) lower into the same executor, so all
//! three front-ends share one semantics and one telemetry stream.
//!
//! A RIME DIMM forbids fine-grained channel interleaving (§V): contiguous
//! key ranges map contiguously onto chips, so one region spans as few
//! chips as possible and each spanned chip can rank its local sub-range
//! independently. `rime_min`/`rime_max` implement Fig. 14's multi-chip
//! coordination: every spanned chip keeps one buffered candidate in the
//! library; the CPU picks the global winner and only the winning chip
//! recomputes.

use std::borrow::Cow;

use rime_memristive::{
    ArrayTiming, ChipGeometry, Direction, KeyFormat, OpCounters, ParallelPolicy, SortableBits,
};

use crate::cmd::{Command, Executor, Outcome};
use crate::driver::DriverConfig;
use crate::error::RimeError;
use crate::metrics::{MetricsRegistry, Snapshot};
use crate::telemetry::SharedSink;

/// System-level RIME configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RimeConfig {
    /// Single-DIMM memory channels dedicated to RIME.
    pub channels: u32,
    /// Chips per DIMM (Table I: 8).
    pub chips_per_channel: u32,
    /// Geometry of each chip.
    pub chip_geometry: ChipGeometry,
    /// Device timing/energy characterization.
    pub timing: ArrayTiming,
    /// Driver allocator tunables.
    pub driver: DriverConfig,
}

impl RimeConfig {
    /// The Table I full-scale system: 4 channels × 8 × 1 Gb chips.
    pub fn table1() -> RimeConfig {
        RimeConfig {
            channels: 4,
            chips_per_channel: 8,
            chip_geometry: ChipGeometry::table1(),
            timing: ArrayTiming::table1(),
            driver: DriverConfig::default(),
        }
    }

    /// A reduced functional configuration for tests and examples:
    /// 2 channels × 2 small chips (32 Ki key slots).
    pub fn small() -> RimeConfig {
        RimeConfig {
            channels: 2,
            chips_per_channel: 2,
            chip_geometry: ChipGeometry::small(),
            timing: ArrayTiming::table1(),
            driver: DriverConfig::default(),
        }
    }

    /// Total chips in the system.
    pub fn total_chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// Key slots per chip.
    pub fn chip_slots(&self) -> u64 {
        self.chip_geometry.capacity_slots()
    }

    /// Total key slots across all chips.
    pub fn total_slots(&self) -> u64 {
        self.total_chips() as u64 * self.chip_slots()
    }
}

/// A handle to a physically contiguous allocation (`rime_malloc` result).
///
/// `Region` is a plain handle — cheap to copy, validated by the device on
/// every use, and invalidated by [`RimeDevice::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    pub(crate) id: u64,
    pub(crate) start: u64,
    pub(crate) len: u64,
}

impl Region {
    /// Length in key slots.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region holds zero slots (never true for live regions).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Starting global key-slot address.
    pub fn start(&self) -> u64 {
        self.start
    }
}

/// The functional RIME memory device plus API library state.
///
/// A thin encoder over the unified command executor: every method takes
/// `&self` and lowers into [`RimeDevice::execute`], so a shared
/// `&RimeDevice` supports the concurrent multi-range operation §III-B.3
/// requires (e.g. the merge scenario of Fig. 14, one thread per input
/// run). See [`crate::cmd`] for the locking discipline.
#[derive(Debug)]
pub struct RimeDevice {
    exec: Executor,
}

impl RimeDevice {
    /// Creates a device with the given configuration.
    pub fn new(config: RimeConfig) -> RimeDevice {
        RimeDevice {
            exec: Executor::new(config),
        }
    }

    /// Executes one typed command — the general entry point all the
    /// convenience methods below encode into. Useful directly when
    /// commands are built programmatically (e.g. trace replay).
    ///
    /// # Errors
    ///
    /// The command's validation or dispatch error.
    pub fn execute(&self, command: Command<'_>) -> Result<Outcome, RimeError> {
        self.exec.execute(command)
    }

    /// Attaches a telemetry sink to the device's event stream (see
    /// [`crate::telemetry`]). Events from every front-end sharing this
    /// device are delivered to it in execution order.
    pub fn attach_telemetry(&self, sink: SharedSink) {
        self.exec.attach_sink(sink);
    }

    /// The device configuration.
    pub fn config(&self) -> &RimeConfig {
        self.exec.config()
    }

    /// Total key-slot capacity.
    pub fn capacity(&self) -> u64 {
        self.exec.capacity()
    }

    /// `rime_malloc`: allocates `len` physically contiguous key slots.
    ///
    /// # Errors
    ///
    /// [`RimeError::OutOfContiguousMemory`] under fragmentation/exhaustion.
    pub fn alloc(&self, len: u64) -> Result<Region, RimeError> {
        match self.execute(Command::Alloc { len })? {
            Outcome::Region(region) => Ok(region),
            other => unreachable!("Alloc produced {other:?}"),
        }
    }

    /// `rime_free`: releases a region and drops any active session.
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`] for stale handles.
    pub fn free(&self, region: Region) -> Result<(), RimeError> {
        self.execute(Command::Free { region }).map(|_| ())
    }

    /// Stores keys at `offset` within the region (ordinary DDR4 writes).
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`], [`RimeError::OutOfBounds`], or a chip
    /// fault for over-wide key formats.
    pub fn write<T: SortableBits>(
        &self,
        region: Region,
        offset: u64,
        keys: &[T],
    ) -> Result<(), RimeError> {
        let raw: Vec<u64> = keys.iter().map(|k| k.to_raw_bits()).collect();
        self.execute(Command::Write {
            region,
            offset,
            raw: Cow::Owned(raw),
            format: T::FORMAT,
        })
        .map(|_| ())
    }

    /// Format-explicit store of raw bit patterns — the form the
    /// memory-mapped interface ([`crate::mmio`]) uses, where the key type
    /// is a register value rather than a Rust type.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::write`].
    pub fn write_raw(
        &self,
        region: Region,
        offset: u64,
        raw_keys: &[u64],
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        self.execute(Command::Write {
            region,
            offset,
            raw: Cow::Borrowed(raw_keys),
            format,
        })
        .map(|_| ())
    }

    /// Loads `n` keys from `offset` within the region (ordinary reads).
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`] or [`RimeError::OutOfBounds`].
    pub fn read<T: SortableBits>(
        &self,
        region: Region,
        offset: u64,
        n: u64,
    ) -> Result<Vec<T>, RimeError> {
        Ok(self
            .read_raw(region, offset, n)?
            .into_iter()
            .map(T::from_raw_bits)
            .collect())
    }

    /// Raw-bit-pattern load (see [`RimeDevice::write_raw`]).
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::read`].
    pub fn read_raw(&self, region: Region, offset: u64, n: u64) -> Result<Vec<u64>, RimeError> {
        match self.execute(Command::Read { region, offset, n })? {
            Outcome::Keys(keys) => Ok(keys),
            other => unreachable!("Read produced {other:?}"),
        }
    }

    /// `rime_init`: prepares `[offset, offset+len)` of the region for a
    /// new sort/rank/merge operation. Any previously buffered values for
    /// the region are discarded (§VI, Fig. 14).
    ///
    /// # Errors
    ///
    /// Region/bounds errors, or a chip-level format mismatch.
    pub fn init<T: SortableBits>(
        &self,
        region: Region,
        offset: u64,
        len: u64,
    ) -> Result<(), RimeError> {
        self.init_raw(region, offset, len, T::FORMAT)
    }

    /// Format-explicit `rime_init` (see [`RimeDevice::write_raw`]).
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::init`].
    pub fn init_raw(
        &self,
        region: Region,
        offset: u64,
        len: u64,
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        self.execute(Command::Init {
            region,
            offset,
            len,
            format,
        })
        .map(|_| ())
    }

    /// Convenience: `rime_init` over the whole region.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::init`].
    pub fn init_all<T: SortableBits>(&self, region: Region) -> Result<(), RimeError> {
        self.init::<T>(region, 0, region.len)
    }

    fn next_extreme<T: SortableBits>(
        &self,
        region: Region,
        direction: Direction,
    ) -> Result<Option<(u64, T)>, RimeError> {
        Ok(self
            .next_extreme_raw(region, T::FORMAT, direction)?
            .map(|(slot, raw)| (slot, T::from_raw_bits(raw))))
    }

    /// Format-explicit extraction core shared by the typed API and the
    /// memory-mapped interface: returns the next extreme's (global slot,
    /// raw bits).
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::rime_min`].
    pub fn next_extreme_raw(
        &self,
        region: Region,
        want_format: KeyFormat,
        direction: Direction,
    ) -> Result<Option<(u64, u64)>, RimeError> {
        match self.execute(Command::Extract {
            region,
            format: want_format,
            direction,
        })? {
            Outcome::Hit(hit) => Ok(hit),
            other => unreachable!("Extract produced {other:?}"),
        }
    }

    /// Format-explicit top-k extraction core: up to `k` consecutive
    /// extremes in order, equivalent to calling
    /// [`RimeDevice::next_extreme_raw`] until `k` results are collected
    /// or the range is exhausted — but with the per-chip candidate
    /// buffers of Fig. 14 prefilled to depth `k` via the chips' batched
    /// extraction, so select-vector setup and H-tree index traversals
    /// amortize across the whole batch. Unconsumed candidates stay
    /// buffered for subsequent calls of either form.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::rime_min`].
    pub fn next_extremes_raw(
        &self,
        region: Region,
        want_format: KeyFormat,
        direction: Direction,
        k: usize,
    ) -> Result<Vec<(u64, u64)>, RimeError> {
        match self.execute(Command::ExtractBatch {
            region,
            format: want_format,
            direction,
            k,
        })? {
            Outcome::Hits(hits) => Ok(hits),
            other => unreachable!("ExtractBatch produced {other:?}"),
        }
    }

    /// Drains one already-buffered candidate from the region's session
    /// (Fig. 14's per-chip buffers) *without* re-engaging any chip.
    /// `None` means the buffers are dry — not that the range is
    /// exhausted; a subsequent extraction may still find more.
    ///
    /// # Errors
    ///
    /// [`RimeError::NotInitialized`] without a prior
    /// [`RimeDevice::init`]; [`RimeError::InvalidRegion`] for stale
    /// handles.
    pub fn fifo_next_raw(&self, region: Region) -> Result<Option<(u64, u64)>, RimeError> {
        match self.execute(Command::FifoNext { region })? {
            Outcome::Hit(hit) => Ok(hit),
            other => unreachable!("FifoNext produced {other:?}"),
        }
    }

    /// `rime_min_k`: the next `k` smallest keys of the initialized range
    /// in ascending order (with their global slot addresses). Returns
    /// fewer when the range runs dry. Equivalent to — but cheaper than —
    /// `k` successive [`RimeDevice::rime_min`] calls.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::rime_min`].
    pub fn rime_min_k<T: SortableBits>(
        &self,
        region: Region,
        k: usize,
    ) -> Result<Vec<(u64, T)>, RimeError> {
        Ok(self
            .next_extremes_raw(region, T::FORMAT, Direction::Min, k)?
            .into_iter()
            .map(|(slot, raw)| (slot, T::from_raw_bits(raw)))
            .collect())
    }

    /// `rime_max_k`: the next `k` largest keys in descending order. See
    /// [`RimeDevice::rime_min_k`].
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::rime_min`].
    pub fn rime_max_k<T: SortableBits>(
        &self,
        region: Region,
        k: usize,
    ) -> Result<Vec<(u64, T)>, RimeError> {
        Ok(self
            .next_extremes_raw(region, T::FORMAT, Direction::Max, k)?
            .into_iter()
            .map(|(slot, raw)| (slot, T::from_raw_bits(raw)))
            .collect())
    }

    /// `rime_min`: returns the next smallest key of the initialized range
    /// (with its global slot address), or `None` when exhausted.
    ///
    /// # Errors
    ///
    /// [`RimeError::NotInitialized`] without a prior [`RimeDevice::init`];
    /// [`RimeError::TypeMismatch`] if `T` differs from the stored format.
    pub fn rime_min<T: SortableBits>(&self, region: Region) -> Result<Option<(u64, T)>, RimeError> {
        self.next_extreme(region, Direction::Min)
    }

    /// `rime_max`: returns the next largest key of the initialized range.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::rime_min`].
    pub fn rime_max<T: SortableBits>(&self, region: Region) -> Result<Option<(u64, T)>, RimeError> {
        self.next_extreme(region, Direction::Max)
    }

    /// Number of chips a region's initialized range spans (the concurrency
    /// the performance model exploits).
    pub fn spanned_chips(&self, region: Region) -> u32 {
        self.exec.spanned_chips(region)
    }

    /// Values transferred over the DDR4 interface so far (perf model).
    pub fn interface_transfers(&self) -> u64 {
        self.exec.interface_transfers()
    }

    /// Sets every chip's mat fan-out policy (model-execution knob; see
    /// [`ParallelPolicy`] — results and counters are unaffected).
    /// `Threads(n)` leases each chip's in-range mats to a persistent
    /// shard pool; `SpawnPerStep(n)` keeps the legacy per-step scoped
    /// fan-out as a benchmark baseline. Independent of this knob,
    /// multi-chip batched commands dispatch each chip's prefill on its
    /// own thread with a deterministic chip-order merge (DESIGN.md §10).
    pub fn set_parallel_policy(&self, policy: ParallelPolicy) {
        self.exec.set_parallel_policy(policy);
    }

    /// Aggregated operation counters across all chips, read from the
    /// telemetry spine's built-in stats sink.
    pub fn counters(&self) -> OpCounters {
        self.exec.counters()
    }

    /// Per-chip accumulated counters, indexed by chip — the inputs to
    /// the per-chip performance helpers in [`crate::perf`].
    pub fn per_chip_counters(&self) -> Vec<OpCounters> {
        self.exec.per_chip_counters()
    }

    /// Resets all chips' counters (and the telemetry stats they feed).
    pub fn reset_counters(&self) {
        self.exec.reset_counters();
    }

    /// Modeled array energy of everything done so far (nJ): Table I
    /// per-operation energies applied to the aggregated counters.
    pub fn modeled_energy_nj(&self) -> f64 {
        self.exec.modeled_energy_nj()
    }

    /// Modeled busy time of the *busiest* chip (ns) — the device-side
    /// critical path when chips operate concurrently (Fig. 14).
    pub fn modeled_busy_ns(&self) -> f64 {
        self.exec.modeled_busy_ns()
    }

    /// Hottest-block write count across all chips (endurance study).
    pub fn max_wear(&self) -> u32 {
        self.exec.max_wear()
    }

    /// Largest free contiguous extent (driver diagnostics).
    pub fn largest_free(&self) -> u64 {
        self.exec.largest_free()
    }

    /// The device's built-in metrics registry (see [`crate::metrics`]).
    /// Per-command metrics are always published; per-phase chip and pool
    /// metrics appear after [`RimeDevice::enable_extraction_metrics`].
    pub fn metrics(&self) -> &MetricsRegistry {
        self.exec.metrics()
    }

    /// A consistent point-in-time snapshot of every registered metric,
    /// exportable as Prometheus text or JSON.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.exec.metrics_snapshot()
    }

    /// Turns on deep per-phase extraction and mat-pool instrumentation
    /// by installing a registry-backed probe on every chip. Off by
    /// default — the probes read the host clock on every phase, so
    /// benchmarks leave them uninstalled.
    pub fn enable_extraction_metrics(&self) {
        self.exec.enable_extraction_probes();
    }

    /// Cumulative per-mat write counts, indexed `[chip][mat]` — the
    /// matrix behind wear heatmaps.
    pub fn wear_matrix(&self) -> Vec<Vec<u64>> {
        self.exec.wear_matrix()
    }

    // ---- Durability (see `crate::journal` and DESIGN.md §12) ----

    /// Attaches a write-ahead journal: every subsequent command is
    /// logged intent-first, outcome-after, with periodic checkpoints.
    ///
    /// # Errors
    ///
    /// [`RimeError::Journal`] when the store cannot be written or holds
    /// a foreign file.
    pub fn attach_journal(
        &self,
        store: Box<dyn crate::journal::JournalStore>,
        config: crate::journal::JournalConfig,
    ) -> Result<(), RimeError> {
        self.exec.attach_journal(store, config)
    }

    /// Detaches the journal. Returns whether one was attached.
    pub fn detach_journal(&self) -> bool {
        self.exec.detach_journal()
    }

    /// Commands committed to the attached journal (`None` without one).
    pub fn journal_committed(&self) -> Option<u64> {
        self.exec.journal_committed()
    }

    /// Forces a checkpoint now; `Ok(false)` when no journal is attached.
    ///
    /// # Errors
    ///
    /// [`RimeError::Journal`] when the checkpoint cannot be appended.
    pub fn checkpoint_now(&self) -> Result<bool, RimeError> {
        self.exec.checkpoint_now()
    }

    /// Reconstructs a bit-identical device from a journal and reports
    /// what recovery found (see [`crate::journal::RecoveryReport`]).
    ///
    /// # Errors
    ///
    /// [`RimeError::Journal`] on store I/O failures, interior
    /// corruption, a checkpoint for a different device shape, or a
    /// replay that diverges from the recorded outcomes.
    pub fn recover(
        config: RimeConfig,
        store: Box<dyn crate::journal::JournalStore>,
        journal_config: crate::journal::JournalConfig,
    ) -> Result<(RimeDevice, crate::journal::RecoveryReport), RimeError> {
        let (exec, report) = Executor::recover(config, store, journal_config)?;
        Ok((RimeDevice { exec }, report))
    }

    /// Per-chip raw snapshots — what checkpoints marshal, and the
    /// bit-identity fingerprint recovery is checked against.
    pub fn chip_states(&self) -> Vec<rime_memristive::ChipState> {
        self.exec.chip_states()
    }

    /// The driver allocation map as `(reserved_slots, sorted live
    /// (start, len) extents)`.
    pub fn allocation_map(&self) -> (u64, Vec<(u64, u64)>) {
        self.exec.allocation_map()
    }

    /// Live region handles, sorted by id — how a process that
    /// [`RimeDevice::recover`]ed a device rehydrates the handles its
    /// predecessor allocated and resumes region-scoped work.
    pub fn regions(&self) -> Vec<Region> {
        self.exec.regions()
    }

    /// Installs (or clears) the crash-site fault injector (see
    /// [`crate::journal::CrashPoint`]).
    #[cfg(feature = "crash-test")]
    pub fn install_crash_point(&self, point: Option<std::sync::Arc<crate::journal::CrashPoint>>) {
        self.exec.install_crash_point(point);
    }

    /// Queues a one-shot error for `chip`'s next batched extraction.
    #[cfg(feature = "crash-test")]
    pub fn inject_extract_fault(&self, chip: u32, error: RimeError) {
        self.exec.inject_extract_fault(chip, error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RimeError;

    fn device() -> RimeDevice {
        RimeDevice::new(RimeConfig::small())
    }

    #[test]
    fn config_capacity() {
        let cfg = RimeConfig::small();
        assert_eq!(cfg.total_chips(), 4);
        assert_eq!(
            cfg.total_slots(),
            4 * ChipGeometry::small().capacity_slots()
        );
        assert_eq!(RimeConfig::table1().total_chips(), 32);
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let dev = device();
        let region = dev.alloc(100).unwrap();
        let keys: Vec<u32> = (0..100).map(|i| i * 3).collect();
        dev.write(region, 0, &keys).unwrap();
        let back: Vec<u32> = dev.read(region, 0, 100).unwrap();
        assert_eq!(back, keys);
        let mid: Vec<u32> = dev.read(region, 10, 5).unwrap();
        assert_eq!(mid, vec![30, 33, 36, 39, 42]);
    }

    #[test]
    fn rime_min_streams_sorted_values() {
        let dev = device();
        let region = dev.alloc(8).unwrap();
        dev.write(region, 0, &[5u32, 1, 3, 7, 10, 4, 8, 5]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let mut got = Vec::new();
        while let Some((_, v)) = dev.rime_min::<u32>(region).unwrap() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 3, 4, 5, 5, 7, 8, 10]);
    }

    #[test]
    fn region_spanning_chips_sorts_globally() {
        let dev = device();
        let per_chip = dev.config().chip_slots();
        // Allocate more than one chip's worth.
        let n = per_chip + 10;
        let region = dev.alloc(n).unwrap();
        let keys: Vec<u32> = (0..n as u32).rev().collect();
        dev.write(region, 0, &keys).unwrap();
        dev.init_all::<u32>(region).unwrap();
        assert!(dev.spanned_chips(region) >= 2);
        // First three minima are 0, 1, 2 — they live in the *last* slots.
        for want in 0..3u32 {
            let (_, v) = dev.rime_min::<u32>(region).unwrap().unwrap();
            assert_eq!(v, want);
        }
    }

    #[test]
    fn rank_example_from_fig12() {
        // Fig. 12: find the 100 least values of a large range in order.
        let dev = device();
        let n = 1000u64;
        let region = dev.alloc(n).unwrap();
        let keys: Vec<u64> = (0..n).map(|i| (i * 7919) % 104729).collect();
        dev.write(region, 0, &keys).unwrap();
        dev.init_all::<u64>(region).unwrap();
        let mut sorted_list = Vec::with_capacity(100);
        for _ in 0..100 {
            sorted_list.push(dev.rime_min::<u64>(region).unwrap().unwrap().1);
        }
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(sorted_list, want[..100]);
    }

    #[test]
    fn reinit_discards_buffered_values() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4u32, 3, 2, 1]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 1);
        dev.init_all::<u32>(region).unwrap();
        assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 1);
    }

    #[test]
    fn sub_range_init() {
        let dev = device();
        let region = dev.alloc(10).unwrap();
        dev.write(region, 0, &[9u32, 8, 7, 6, 5, 4, 3, 2, 1, 0])
            .unwrap();
        dev.init::<u32>(region, 2, 4).unwrap(); // keys 7,6,5,4
        assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 4);
        assert_eq!(dev.rime_max::<u32>(region).unwrap().unwrap().1, 7);
    }

    #[test]
    fn direction_switch_rearms() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4i32, -3, 2, -1]).unwrap();
        dev.init_all::<i32>(region).unwrap();
        assert_eq!(dev.rime_min::<i32>(region).unwrap().unwrap().1, -3);
        // Switching to max re-initializes: the full set is back.
        assert_eq!(dev.rime_max::<i32>(region).unwrap().unwrap().1, 4);
        assert_eq!(dev.rime_max::<i32>(region).unwrap().unwrap().1, 2);
    }

    #[test]
    fn errors_on_misuse() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        assert_eq!(dev.rime_min::<u32>(region), Err(RimeError::NotInitialized));
        dev.write(region, 0, &[1u32, 2, 3, 4]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        assert!(matches!(
            dev.rime_min::<f32>(region),
            Err(RimeError::TypeMismatch { .. })
        ));
        assert!(matches!(
            dev.write(region, 3, &[1u32, 2]),
            Err(RimeError::OutOfBounds { .. })
        ));
        dev.free(region).unwrap();
        assert_eq!(dev.free(region), Err(RimeError::InvalidRegion));
        assert_eq!(dev.rime_min::<u32>(region), Err(RimeError::InvalidRegion));
    }

    #[test]
    fn write_invalidates_session() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4u32, 3, 2, 1]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let _ = dev.rime_min::<u32>(region).unwrap();
        dev.write(region, 0, &[0u32]).unwrap();
        assert_eq!(dev.rime_min::<u32>(region), Err(RimeError::NotInitialized));
    }

    #[test]
    fn floats_sort_in_total_order() {
        let dev = device();
        let region = dev.alloc(5).unwrap();
        dev.write(region, 0, &[18.0f32, -1.625, -0.75, 0.5, -2.5])
            .unwrap();
        dev.init_all::<f32>(region).unwrap();
        let mut got = Vec::new();
        while let Some((_, v)) = dev.rime_min::<f32>(region).unwrap() {
            got.push(v);
        }
        assert_eq!(got, vec![-2.5, -1.625, -0.75, 0.5, 18.0]);
    }

    #[test]
    fn modeled_time_and_energy_track_activity() {
        let dev = device();
        let region = dev.alloc(64).unwrap();
        let keys: Vec<u32> = (0..64).rev().collect();
        dev.write(region, 0, &keys).unwrap();
        let after_load_ns = dev.modeled_busy_ns();
        assert!(after_load_ns > 0.0, "writes cost tWrite");
        dev.init_all::<u32>(region).unwrap();
        for _ in 0..8 {
            let _ = dev.rime_min::<u32>(region).unwrap();
        }
        assert!(dev.modeled_busy_ns() > after_load_ns);
        assert!(dev.modeled_energy_nj() > 0.0);
        // One extraction costs at most tCompute + tRead on the busy chip.
        let per_op_bound = dev.config().timing.t_compute_ns + dev.config().timing.t_read_ns;
        let growth = dev.modeled_busy_ns() - after_load_ns;
        assert!(growth <= 8.0 * per_op_bound + 1e-9, "growth {growth}");
    }

    #[test]
    fn counters_and_transfers_accumulate() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4u32, 3, 2, 1]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let _ = dev.rime_min::<u32>(region).unwrap();
        let c = dev.counters();
        assert_eq!(c.row_writes, 4);
        assert!(c.extractions >= 1);
        assert!(dev.interface_transfers() >= 5);
        dev.reset_counters();
        assert_eq!(dev.counters().row_writes, 0);
    }

    #[test]
    fn rime_min_k_matches_repeated_rime_min() {
        let seq = device();
        let bat = device();
        let keys: Vec<u32> = (0..200u32).map(|i| (i * 7919) % 541).collect();
        let mut regions = Vec::new();
        for dev in [&seq, &bat] {
            let region = dev.alloc(keys.len() as u64).unwrap();
            dev.write(region, 0, &keys).unwrap();
            dev.init_all::<u32>(region).unwrap();
            regions.push(region);
        }
        let mut want = Vec::new();
        for _ in 0..50 {
            match seq.rime_min::<u32>(regions[0]).unwrap() {
                Some(hit) => want.push(hit),
                None => break,
            }
        }
        let got = bat.rime_min_k::<u32>(regions[1], 50).unwrap();
        assert_eq!(got, want);
        // Both streams continue identically after the batch.
        assert_eq!(
            bat.rime_min::<u32>(regions[1]).unwrap(),
            seq.rime_min::<u32>(regions[0]).unwrap()
        );
    }

    #[test]
    fn rime_max_k_spans_chips_and_exhausts() {
        let dev = device();
        let per_chip = dev.config().chip_slots();
        let n = per_chip + 6;
        let region = dev.alloc(n).unwrap();
        let keys: Vec<u32> = (0..n as u32).collect();
        dev.write(region, 0, &keys).unwrap();
        dev.init_all::<u32>(region).unwrap();
        assert!(dev.spanned_chips(region) >= 2);
        // Ask for more than exist: get everything, in descending order.
        let got = dev.rime_max_k::<u32>(region, n as usize + 10).unwrap();
        assert_eq!(got.len(), n as usize);
        let vals: Vec<u32> = got.iter().map(|&(_, v)| v).collect();
        let mut want = keys.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(vals, want);
        assert!(dev.rime_max::<u32>(region).unwrap().is_none());
    }

    #[test]
    fn rime_min_k_direction_switch_rearms() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4i32, -3, 2, -1]).unwrap();
        dev.init_all::<i32>(region).unwrap();
        assert_eq!(
            dev.rime_min_k::<i32>(region, 2)
                .unwrap()
                .iter()
                .map(|&(_, v)| v)
                .collect::<Vec<_>>(),
            vec![-3, -1]
        );
        // Switching to max re-initializes: the full set is back.
        assert_eq!(
            dev.rime_max_k::<i32>(region, 4)
                .unwrap()
                .iter()
                .map(|&(_, v)| v)
                .collect::<Vec<_>>(),
            vec![4, 2, -1, -3]
        );
    }

    #[test]
    fn rime_min_k_zero_and_errors() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[1u32, 2, 3, 4]).unwrap();
        assert_eq!(
            dev.rime_min_k::<u32>(region, 3),
            Err(RimeError::NotInitialized)
        );
        dev.init_all::<u32>(region).unwrap();
        assert_eq!(dev.rime_min_k::<u32>(region, 0).unwrap(), vec![]);
        assert!(matches!(
            dev.rime_min_k::<f32>(region, 3),
            Err(RimeError::TypeMismatch { .. })
        ));
        dev.free(region).unwrap();
        assert_eq!(
            dev.rime_min_k::<u32>(region, 3),
            Err(RimeError::InvalidRegion)
        );
    }

    #[test]
    fn fifo_next_raw_requires_a_session() {
        let dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4u32, 3, 2, 1]).unwrap();
        assert_eq!(dev.fifo_next_raw(region), Err(RimeError::NotInitialized));
        dev.init_all::<u32>(region).unwrap();
        // Dry buffers are a miss, not an error.
        assert_eq!(dev.fifo_next_raw(region), Ok(None));
    }

    #[test]
    fn shared_reference_supports_concurrent_ranges() {
        // Two disjoint regions driven from two threads through &RimeDevice.
        let dev = device();
        let a = dev.alloc(64).unwrap();
        let b = dev.alloc(64).unwrap();
        let ka: Vec<u32> = (0..64u32).rev().collect();
        let kb: Vec<u32> = (0..64u32).map(|i| i * 3 % 101).collect();
        dev.write(a, 0, &ka).unwrap();
        dev.write(b, 0, &kb).unwrap();
        dev.init_all::<u32>(a).unwrap();
        dev.init_all::<u32>(b).unwrap();
        let (got_a, got_b) = std::thread::scope(|s| {
            let ta = s.spawn(|| {
                let mut out = Vec::new();
                while let Some((_, v)) = dev.rime_min::<u32>(a).unwrap() {
                    out.push(v);
                }
                out
            });
            let tb = s.spawn(|| {
                let mut out = Vec::new();
                while let Some((_, v)) = dev.rime_min::<u32>(b).unwrap() {
                    out.push(v);
                }
                out
            });
            (ta.join().unwrap(), tb.join().unwrap())
        });
        let mut want_a = ka.clone();
        want_a.sort_unstable();
        let mut want_b = kb.clone();
        want_b.sort_unstable();
        assert_eq!(got_a, want_a);
        assert_eq!(got_b, want_b);
    }
}
