//! The RIME device: DIMMs of ranking chips behind a DDR4 interface (§V).
//!
//! [`RimeDevice`] is the functional model of a full RIME memory system —
//! multiple single-DIMM channels, eight chips per DIMM (Table I) — together
//! with the userspace API library of Fig. 12:
//!
//! | paper API      | here                                   |
//! |----------------|----------------------------------------|
//! | `rime_malloc`  | [`RimeDevice::alloc`]                  |
//! | `rime_free`    | [`RimeDevice::free`]                   |
//! | loads/stores   | [`RimeDevice::write`] / [`RimeDevice::read`] |
//! | `rime_init`    | [`RimeDevice::init`]                   |
//! | `rime_min`     | [`RimeDevice::rime_min`]               |
//! | `rime_max`     | [`RimeDevice::rime_max`]               |
//!
//! A RIME DIMM forbids fine-grained channel interleaving (§V): contiguous
//! key ranges map contiguously onto chips, so one region spans as few
//! chips as possible and each spanned chip can rank its local sub-range
//! independently. `rime_min`/`rime_max` implement Fig. 14's multi-chip
//! coordination: every spanned chip keeps one buffered candidate in the
//! library; the CPU picks the global winner and only the winning chip
//! recomputes.

use std::collections::HashMap;

use rime_memristive::{
    ArrayTiming, Chip, ChipGeometry, Direction, KeyFormat, OpCounters, SortableBits,
};

use crate::driver::{ContiguousAllocator, DriverConfig};
use crate::error::RimeError;

/// System-level RIME configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RimeConfig {
    /// Single-DIMM memory channels dedicated to RIME.
    pub channels: u32,
    /// Chips per DIMM (Table I: 8).
    pub chips_per_channel: u32,
    /// Geometry of each chip.
    pub chip_geometry: ChipGeometry,
    /// Device timing/energy characterization.
    pub timing: ArrayTiming,
    /// Driver allocator tunables.
    pub driver: DriverConfig,
}

impl RimeConfig {
    /// The Table I full-scale system: 4 channels × 8 × 1 Gb chips.
    pub fn table1() -> RimeConfig {
        RimeConfig {
            channels: 4,
            chips_per_channel: 8,
            chip_geometry: ChipGeometry::table1(),
            timing: ArrayTiming::table1(),
            driver: DriverConfig::default(),
        }
    }

    /// A reduced functional configuration for tests and examples:
    /// 2 channels × 2 small chips (32 Ki key slots).
    pub fn small() -> RimeConfig {
        RimeConfig {
            channels: 2,
            chips_per_channel: 2,
            chip_geometry: ChipGeometry::small(),
            timing: ArrayTiming::table1(),
            driver: DriverConfig::default(),
        }
    }

    /// Total chips in the system.
    pub fn total_chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// Key slots per chip.
    pub fn chip_slots(&self) -> u64 {
        self.chip_geometry.capacity_slots()
    }

    /// Total key slots across all chips.
    pub fn total_slots(&self) -> u64 {
        self.total_chips() as u64 * self.chip_slots()
    }
}

/// A handle to a physically contiguous allocation (`rime_malloc` result).
///
/// `Region` is a plain handle — cheap to copy, validated by the device on
/// every use, and invalidated by [`RimeDevice::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    id: u64,
    start: u64,
    len: u64,
}

impl Region {
    /// Length in key slots.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region holds zero slots (never true for live regions).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Starting global key-slot address.
    pub fn start(&self) -> u64 {
        self.start
    }
}

#[derive(Debug, Clone)]
struct Session {
    direction: Option<Direction>,
    begin: u64,
    end: u64,
    format: KeyFormat,
    /// Per spanned chip: buffered candidate (global slot, raw bits).
    candidates: HashMap<u32, Option<(u64, u64)>>,
}

/// The functional RIME memory device plus API library state.
#[derive(Debug, Clone)]
pub struct RimeDevice {
    config: RimeConfig,
    chips: Vec<Chip>,
    allocator: ContiguousAllocator,
    regions: HashMap<u64, (u64, u64)>, // id → (start, len)
    formats: HashMap<u64, KeyFormat>,  // id → stored key format
    sessions: HashMap<u64, Session>,   // region id → active rime_init state
    next_id: u64,
    /// Values transferred over the DDR4 interface (for the perf model).
    pub interface_transfers: u64,
}

impl RimeDevice {
    /// Creates a device with the given configuration.
    pub fn new(config: RimeConfig) -> RimeDevice {
        RimeDevice {
            chips: (0..config.total_chips())
                .map(|_| Chip::new(config.chip_geometry))
                .collect(),
            allocator: ContiguousAllocator::new(config.total_slots(), config.driver),
            regions: HashMap::new(),
            formats: HashMap::new(),
            sessions: HashMap::new(),
            next_id: 1,
            interface_transfers: 0,
            config,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &RimeConfig {
        &self.config
    }

    /// Total key-slot capacity.
    pub fn capacity(&self) -> u64 {
        self.config.total_slots()
    }

    /// `rime_malloc`: allocates `len` physically contiguous key slots.
    ///
    /// # Errors
    ///
    /// [`RimeError::OutOfContiguousMemory`] under fragmentation/exhaustion.
    pub fn alloc(&mut self, len: u64) -> Result<Region, RimeError> {
        let start = self.allocator.alloc(len)?;
        let id = self.next_id;
        self.next_id += 1;
        self.regions.insert(id, (start, len));
        Ok(Region { id, start, len })
    }

    /// `rime_free`: releases a region and drops any active session.
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`] for stale handles.
    pub fn free(&mut self, region: Region) -> Result<(), RimeError> {
        let (start, _) = self
            .regions
            .remove(&region.id)
            .ok_or(RimeError::InvalidRegion)?;
        self.sessions.remove(&region.id);
        self.formats.remove(&region.id);
        self.allocator.free(start)
    }

    fn check(&self, region: Region, offset: u64, n: u64) -> Result<u64, RimeError> {
        let &(start, len) = self
            .regions
            .get(&region.id)
            .ok_or(RimeError::InvalidRegion)?;
        if offset + n > len {
            return Err(RimeError::OutOfBounds {
                offset: offset + n,
                len,
            });
        }
        Ok(start + offset)
    }

    fn chip_of(&self, slot: u64) -> (u32, u64) {
        let per_chip = self.config.chip_slots();
        ((slot / per_chip) as u32, slot % per_chip)
    }

    /// Stores keys at `offset` within the region (ordinary DDR4 writes).
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`], [`RimeError::OutOfBounds`], or a chip
    /// fault for over-wide key formats.
    pub fn write<T: SortableBits>(
        &mut self,
        region: Region,
        offset: u64,
        keys: &[T],
    ) -> Result<(), RimeError> {
        let raw: Vec<u64> = keys.iter().map(|k| k.to_raw_bits()).collect();
        self.write_raw(region, offset, &raw, T::FORMAT)
    }

    /// Format-explicit store of raw bit patterns — the form the
    /// memory-mapped interface ([`crate::mmio`]) uses, where the key type
    /// is a register value rather than a Rust type.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::write`].
    pub fn write_raw(
        &mut self,
        region: Region,
        offset: u64,
        raw_keys: &[u64],
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        let mut slot = self.check(region, offset, raw_keys.len() as u64)?;
        // Writing invalidates any buffered candidates for this region.
        self.sessions.remove(&region.id);
        let per_chip = self.config.chip_slots();
        let mut idx = 0usize;
        while idx < raw_keys.len() {
            let (chip, local) = self.chip_of(slot);
            let room = (per_chip - local).min((raw_keys.len() - idx) as u64) as usize;
            self.chips[chip as usize].store_keys(local, &raw_keys[idx..idx + room], format)?;
            idx += room;
            slot += room as u64;
        }
        self.interface_transfers += raw_keys.len() as u64;
        self.formats.insert(region.id, format);
        Ok(())
    }

    /// Loads `n` keys from `offset` within the region (ordinary reads).
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`] or [`RimeError::OutOfBounds`].
    pub fn read<T: SortableBits>(
        &mut self,
        region: Region,
        offset: u64,
        n: u64,
    ) -> Result<Vec<T>, RimeError> {
        Ok(self
            .read_raw(region, offset, n)?
            .into_iter()
            .map(T::from_raw_bits)
            .collect())
    }

    /// Raw-bit-pattern load (see [`RimeDevice::write_raw`]).
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::read`].
    pub fn read_raw(&mut self, region: Region, offset: u64, n: u64) -> Result<Vec<u64>, RimeError> {
        let start = self.check(region, offset, n)?;
        let mut out = Vec::with_capacity(n as usize);
        for slot in start..start + n {
            let (chip, local) = self.chip_of(slot);
            out.push(self.chips[chip as usize].read_key(local)?);
        }
        self.interface_transfers += n;
        Ok(out)
    }

    /// `rime_init`: prepares `[offset, offset+len)` of the region for a
    /// new sort/rank/merge operation. Any previously buffered values for
    /// the region are discarded (§VI, Fig. 14).
    ///
    /// # Errors
    ///
    /// Region/bounds errors, or a chip-level format mismatch.
    pub fn init<T: SortableBits>(
        &mut self,
        region: Region,
        offset: u64,
        len: u64,
    ) -> Result<(), RimeError> {
        self.init_raw(region, offset, len, T::FORMAT)
    }

    /// Format-explicit `rime_init` (see [`RimeDevice::write_raw`]).
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::init`].
    pub fn init_raw(
        &mut self,
        region: Region,
        offset: u64,
        len: u64,
        format: KeyFormat,
    ) -> Result<(), RimeError> {
        let begin = self.check(region, offset, len)?;
        if len == 0 {
            return Err(RimeError::OutOfBounds {
                offset,
                len: region.len,
            });
        }
        if let Some(&stored) = self.formats.get(&region.id) {
            if stored != format {
                return Err(RimeError::TypeMismatch {
                    stored: stored.name(),
                    requested: format.name(),
                });
            }
        }
        let end = begin + len;
        let mut candidates = HashMap::new();
        let per_chip = self.config.chip_slots();
        let first_chip = (begin / per_chip) as u32;
        let last_chip = ((end - 1) / per_chip) as u32;
        for chip_idx in first_chip..=last_chip {
            let chip_base = chip_idx as u64 * per_chip;
            let local_begin = begin.saturating_sub(chip_base);
            let local_end = (end - chip_base).min(per_chip);
            self.chips[chip_idx as usize].init_range(local_begin, local_end, format)?;
            candidates.insert(chip_idx, None);
        }
        self.sessions.insert(
            region.id,
            Session {
                direction: None,
                begin,
                end,
                format,
                candidates,
            },
        );
        Ok(())
    }

    /// Convenience: `rime_init` over the whole region.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::init`].
    pub fn init_all<T: SortableBits>(&mut self, region: Region) -> Result<(), RimeError> {
        self.init::<T>(region, 0, region.len)
    }

    fn next_extreme<T: SortableBits>(
        &mut self,
        region: Region,
        direction: Direction,
    ) -> Result<Option<(u64, T)>, RimeError> {
        Ok(self
            .next_extreme_raw(region, T::FORMAT, direction)?
            .map(|(slot, raw)| (slot, T::from_raw_bits(raw))))
    }

    /// Format-explicit extraction core shared by the typed API and the
    /// memory-mapped interface: returns the next extreme's (global slot,
    /// raw bits).
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::rime_min`].
    pub fn next_extreme_raw(
        &mut self,
        region: Region,
        want_format: KeyFormat,
        direction: Direction,
    ) -> Result<Option<(u64, u64)>, RimeError> {
        if !self.regions.contains_key(&region.id) {
            return Err(RimeError::InvalidRegion);
        }
        let (format, begin, end, active, mut chip_ids) = {
            let session = self
                .sessions
                .get(&region.id)
                .ok_or(RimeError::NotInitialized)?;
            let ids: Vec<u32> = session.candidates.keys().copied().collect();
            (
                session.format,
                session.begin,
                session.end,
                session.direction,
                ids,
            )
        };
        chip_ids.sort_unstable();
        if format != want_format {
            return Err(RimeError::TypeMismatch {
                stored: format.name(),
                requested: want_format.name(),
            });
        }
        let per_chip = self.config.chip_slots();
        // Direction changes mid-stream require a fresh init: the buffered
        // candidates and exclusion flags encode the old direction.
        match active {
            Some(d) if d != direction => {
                for &chip_idx in &chip_ids {
                    let chip_base = chip_idx as u64 * per_chip;
                    let local_begin = begin.saturating_sub(chip_base);
                    let local_end = (end - chip_base).min(per_chip);
                    self.chips[chip_idx as usize].init_range(local_begin, local_end, format)?;
                }
                let session = self.sessions.get_mut(&region.id).expect("session exists");
                for c in session.candidates.values_mut() {
                    *c = None;
                }
                session.direction = Some(direction);
            }
            _ => {
                self.sessions
                    .get_mut(&region.id)
                    .expect("session exists")
                    .direction = Some(direction);
            }
        }

        // Fig. 14: fill empty per-chip buffers, then reduce on the CPU.
        for &chip_idx in &chip_ids {
            let needs_fill = self.sessions[&region.id].candidates[&chip_idx].is_none();
            if needs_fill {
                let chip_base = chip_idx as u64 * per_chip;
                let local_begin = begin.saturating_sub(chip_base);
                let local_end = (end - chip_base).min(per_chip);
                let hit = self.chips[chip_idx as usize].extract_range(
                    local_begin,
                    local_end,
                    format,
                    direction,
                )?;
                let global = hit.map(|h| (chip_base + h.slot, h.raw_bits));
                self.sessions
                    .get_mut(&region.id)
                    .expect("session exists")
                    .candidates
                    .insert(chip_idx, global);
            }
        }
        let session = self.sessions.get_mut(&region.id).expect("session exists");

        // CPU-side comparison across the buffered per-chip values.
        let mut best: Option<(u32, u64, u64)> = None; // (chip, slot, raw)
        for (&chip_idx, cand) in &session.candidates {
            if let Some((slot, raw)) = *cand {
                let better = match best {
                    None => true,
                    Some((_, bslot, braw)) => {
                        let ord = format.compare_bits(raw, braw);
                        match direction {
                            Direction::Min => ord.is_lt() || (ord.is_eq() && slot < bslot),
                            Direction::Max => ord.is_gt() || (ord.is_eq() && slot < bslot),
                        }
                    }
                };
                if better {
                    best = Some((chip_idx, slot, raw));
                }
            }
        }
        match best {
            None => Ok(None),
            Some((chip_idx, slot, raw)) => {
                session.candidates.insert(chip_idx, None); // refilled next call
                self.interface_transfers += 1;
                Ok(Some((slot, raw)))
            }
        }
    }

    /// `rime_min`: returns the next smallest key of the initialized range
    /// (with its global slot address), or `None` when exhausted.
    ///
    /// # Errors
    ///
    /// [`RimeError::NotInitialized`] without a prior [`RimeDevice::init`];
    /// [`RimeError::TypeMismatch`] if `T` differs from the stored format.
    pub fn rime_min<T: SortableBits>(
        &mut self,
        region: Region,
    ) -> Result<Option<(u64, T)>, RimeError> {
        self.next_extreme(region, Direction::Min)
    }

    /// `rime_max`: returns the next largest key of the initialized range.
    ///
    /// # Errors
    ///
    /// As for [`RimeDevice::rime_min`].
    pub fn rime_max<T: SortableBits>(
        &mut self,
        region: Region,
    ) -> Result<Option<(u64, T)>, RimeError> {
        self.next_extreme(region, Direction::Max)
    }

    /// Number of chips a region's initialized range spans (the concurrency
    /// the performance model exploits).
    pub fn spanned_chips(&self, region: Region) -> u32 {
        self.sessions
            .get(&region.id)
            .map_or(0, |s| s.candidates.len() as u32)
    }

    /// Aggregated operation counters across all chips.
    pub fn counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for chip in &self.chips {
            total += *chip.counters();
        }
        total
    }

    /// Resets all chips' counters.
    pub fn reset_counters(&mut self) {
        for chip in &mut self.chips {
            chip.reset_counters();
        }
        self.interface_transfers = 0;
    }

    /// Modeled array energy of everything done so far (nJ): Table I
    /// per-operation energies applied to the aggregated counters.
    pub fn modeled_energy_nj(&self) -> f64 {
        self.chips
            .iter()
            .map(|c| self.config.timing.energy_nj(c.counters()))
            .sum()
    }

    /// Modeled busy time of the *busiest* chip (ns) — the device-side
    /// critical path when chips operate concurrently (Fig. 14).
    pub fn modeled_busy_ns(&self) -> f64 {
        self.chips
            .iter()
            .map(|c| self.config.timing.time_ns(c.counters()))
            .fold(0.0, f64::max)
    }

    /// Hottest-block write count across all chips (endurance study).
    pub fn max_wear(&self) -> u32 {
        self.chips.iter().map(Chip::max_wear).max().unwrap_or(0)
    }

    /// Largest free contiguous extent (driver diagnostics).
    pub fn largest_free(&self) -> u64 {
        self.allocator.largest_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> RimeDevice {
        RimeDevice::new(RimeConfig::small())
    }

    #[test]
    fn config_capacity() {
        let cfg = RimeConfig::small();
        assert_eq!(cfg.total_chips(), 4);
        assert_eq!(
            cfg.total_slots(),
            4 * ChipGeometry::small().capacity_slots()
        );
        assert_eq!(RimeConfig::table1().total_chips(), 32);
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut dev = device();
        let region = dev.alloc(100).unwrap();
        let keys: Vec<u32> = (0..100).map(|i| i * 3).collect();
        dev.write(region, 0, &keys).unwrap();
        let back: Vec<u32> = dev.read(region, 0, 100).unwrap();
        assert_eq!(back, keys);
        let mid: Vec<u32> = dev.read(region, 10, 5).unwrap();
        assert_eq!(mid, vec![30, 33, 36, 39, 42]);
    }

    #[test]
    fn rime_min_streams_sorted_values() {
        let mut dev = device();
        let region = dev.alloc(8).unwrap();
        dev.write(region, 0, &[5u32, 1, 3, 7, 10, 4, 8, 5]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let mut got = Vec::new();
        while let Some((_, v)) = dev.rime_min::<u32>(region).unwrap() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 3, 4, 5, 5, 7, 8, 10]);
    }

    #[test]
    fn region_spanning_chips_sorts_globally() {
        let mut dev = device();
        let per_chip = dev.config().chip_slots();
        // Allocate more than one chip's worth.
        let n = per_chip + 10;
        let region = dev.alloc(n).unwrap();
        let keys: Vec<u32> = (0..n as u32).rev().collect();
        dev.write(region, 0, &keys).unwrap();
        dev.init_all::<u32>(region).unwrap();
        assert!(dev.spanned_chips(region) >= 2);
        // First three minima are 0, 1, 2 — they live in the *last* slots.
        for want in 0..3u32 {
            let (_, v) = dev.rime_min::<u32>(region).unwrap().unwrap();
            assert_eq!(v, want);
        }
    }

    #[test]
    fn rank_example_from_fig12() {
        // Fig. 12: find the 100 least values of a large range in order.
        let mut dev = device();
        let n = 1000u64;
        let region = dev.alloc(n).unwrap();
        let keys: Vec<u64> = (0..n).map(|i| (i * 7919) % 104729).collect();
        dev.write(region, 0, &keys).unwrap();
        dev.init_all::<u64>(region).unwrap();
        let mut sorted_list = Vec::with_capacity(100);
        for _ in 0..100 {
            sorted_list.push(dev.rime_min::<u64>(region).unwrap().unwrap().1);
        }
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(sorted_list, want[..100]);
    }

    #[test]
    fn reinit_discards_buffered_values() {
        let mut dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4u32, 3, 2, 1]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 1);
        dev.init_all::<u32>(region).unwrap();
        assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 1);
    }

    #[test]
    fn sub_range_init() {
        let mut dev = device();
        let region = dev.alloc(10).unwrap();
        dev.write(region, 0, &[9u32, 8, 7, 6, 5, 4, 3, 2, 1, 0])
            .unwrap();
        dev.init::<u32>(region, 2, 4).unwrap(); // keys 7,6,5,4
        assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 4);
        assert_eq!(dev.rime_max::<u32>(region).unwrap().unwrap().1, 7);
    }

    #[test]
    fn direction_switch_rearms() {
        let mut dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4i32, -3, 2, -1]).unwrap();
        dev.init_all::<i32>(region).unwrap();
        assert_eq!(dev.rime_min::<i32>(region).unwrap().unwrap().1, -3);
        // Switching to max re-initializes: the full set is back.
        assert_eq!(dev.rime_max::<i32>(region).unwrap().unwrap().1, 4);
        assert_eq!(dev.rime_max::<i32>(region).unwrap().unwrap().1, 2);
    }

    #[test]
    fn errors_on_misuse() {
        let mut dev = device();
        let region = dev.alloc(4).unwrap();
        assert_eq!(dev.rime_min::<u32>(region), Err(RimeError::NotInitialized));
        dev.write(region, 0, &[1u32, 2, 3, 4]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        assert!(matches!(
            dev.rime_min::<f32>(region),
            Err(RimeError::TypeMismatch { .. })
        ));
        assert!(matches!(
            dev.write(region, 3, &[1u32, 2]),
            Err(RimeError::OutOfBounds { .. })
        ));
        dev.free(region).unwrap();
        assert_eq!(dev.free(region), Err(RimeError::InvalidRegion));
        assert_eq!(dev.rime_min::<u32>(region), Err(RimeError::InvalidRegion));
    }

    #[test]
    fn write_invalidates_session() {
        let mut dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4u32, 3, 2, 1]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let _ = dev.rime_min::<u32>(region).unwrap();
        dev.write(region, 0, &[0u32]).unwrap();
        assert_eq!(dev.rime_min::<u32>(region), Err(RimeError::NotInitialized));
    }

    #[test]
    fn floats_sort_in_total_order() {
        let mut dev = device();
        let region = dev.alloc(5).unwrap();
        dev.write(region, 0, &[18.0f32, -1.625, -0.75, 0.5, -2.5])
            .unwrap();
        dev.init_all::<f32>(region).unwrap();
        let mut got = Vec::new();
        while let Some((_, v)) = dev.rime_min::<f32>(region).unwrap() {
            got.push(v);
        }
        assert_eq!(got, vec![-2.5, -1.625, -0.75, 0.5, 18.0]);
    }

    #[test]
    fn modeled_time_and_energy_track_activity() {
        let mut dev = device();
        let region = dev.alloc(64).unwrap();
        let keys: Vec<u32> = (0..64).rev().collect();
        dev.write(region, 0, &keys).unwrap();
        let after_load_ns = dev.modeled_busy_ns();
        assert!(after_load_ns > 0.0, "writes cost tWrite");
        dev.init_all::<u32>(region).unwrap();
        for _ in 0..8 {
            let _ = dev.rime_min::<u32>(region).unwrap();
        }
        assert!(dev.modeled_busy_ns() > after_load_ns);
        assert!(dev.modeled_energy_nj() > 0.0);
        // One extraction costs at most tCompute + tRead on the busy chip.
        let per_op_bound = dev.config().timing.t_compute_ns + dev.config().timing.t_read_ns;
        let growth = dev.modeled_busy_ns() - after_load_ns;
        assert!(growth <= 8.0 * per_op_bound + 1e-9, "growth {growth}");
    }

    #[test]
    fn counters_and_transfers_accumulate() {
        let mut dev = device();
        let region = dev.alloc(4).unwrap();
        dev.write(region, 0, &[4u32, 3, 2, 1]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let _ = dev.rime_min::<u32>(region).unwrap();
        let c = dev.counters();
        assert_eq!(c.row_writes, 4);
        assert!(c.extractions >= 1);
        assert!(dev.interface_transfers >= 5);
        dev.reset_counters();
        assert_eq!(dev.counters().row_writes, 0);
    }
}
