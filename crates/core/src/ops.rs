//! Rank, sort, merge, and merge-join operations (§III-B).
//!
//! These are thin compositions over the `rime_min`/`rime_max` primitive —
//! exactly the point of the paper's API design: once the memory can hand
//! back the next extreme of any range in O(1) bandwidth, sorting is `N`
//! repeated accesses, ranking is `k`, and merging `m` ranges costs one
//! candidate buffer per range plus CPU-side winner selection (Fig. 6,
//! Fig. 14).

use rime_memristive::{Direction, SortableBits};

use crate::device::{Region, RimeDevice};
use crate::error::RimeError;

/// Streaming handle over one initialized region, yielding keys in order.
///
/// Created by [`sorted`] / [`sorted_desc`]; call
/// [`SortedStream::try_next`] until it returns `Ok(None)`.
#[derive(Debug)]
pub struct SortedStream<'d, T> {
    device: &'d mut RimeDevice,
    region: Region,
    direction: Direction,
    _marker: std::marker::PhantomData<T>,
}

impl<T: SortableBits> SortedStream<'_, T> {
    /// The next key in order, or `None` when the range is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates device errors (stale region, format mismatch, …).
    pub fn try_next(&mut self) -> Result<Option<T>, RimeError> {
        Ok(match self.direction {
            Direction::Min => self.device.rime_min::<T>(self.region)?,
            Direction::Max => self.device.rime_max::<T>(self.region)?,
        }
        .map(|(_, v)| v))
    }

    /// Drains the remaining keys into a vector.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn collect_remaining(&mut self) -> Result<Vec<T>, RimeError> {
        let mut out = Vec::new();
        while let Some(v) = self.try_next()? {
            out.push(v);
        }
        Ok(out)
    }
}

impl<'d, T: SortableBits> SortedStream<'d, T> {
    /// Adapts the stream into a plain [`Iterator`] that ends on the first
    /// error, latching it for inspection via [`IterSorted::error`].
    pub fn by_ref_iter(&mut self) -> IterSorted<'_, 'd, T> {
        IterSorted {
            stream: self,
            error: None,
        }
    }
}

/// Infallible-looking iterator over a [`SortedStream`]; produced by
/// [`SortedStream::by_ref_iter`]. Errors end the iteration and are
/// latched instead of panicking.
#[derive(Debug)]
pub struct IterSorted<'s, 'd, T> {
    stream: &'s mut SortedStream<'d, T>,
    error: Option<RimeError>,
}

impl<T: SortableBits> IterSorted<'_, '_, T> {
    /// The error that ended iteration early, if any.
    pub fn error(&self) -> Option<&RimeError> {
        self.error.as_ref()
    }
}

impl<T: SortableBits> Iterator for IterSorted<'_, '_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.error.is_some() {
            return None;
        }
        match self.stream.try_next() {
            Ok(item) => item,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// Begins an ascending sorted stream over the whole region
/// (initializes it first).
///
/// # Errors
///
/// Propagates [`RimeDevice::init`] errors.
///
/// # Example
///
/// ```
/// use rime_core::{ops, RimeConfig, RimeDevice};
///
/// # fn main() -> Result<(), rime_core::RimeError> {
/// let mut dev = RimeDevice::new(RimeConfig::small());
/// let region = dev.alloc(4)?;
/// dev.write(region, 0, &[3u32, 1, 4, 1])?;
/// let mut stream = ops::sorted::<u32>(&mut dev, region)?;
/// assert_eq!(stream.collect_remaining()?, vec![1, 1, 3, 4]);
/// # Ok(())
/// # }
/// ```
pub fn sorted<T: SortableBits>(
    device: &mut RimeDevice,
    region: Region,
) -> Result<SortedStream<'_, T>, RimeError> {
    device.init_all::<T>(region)?;
    Ok(SortedStream {
        device,
        region,
        direction: Direction::Min,
        _marker: std::marker::PhantomData,
    })
}

/// Begins a descending sorted stream over the whole region.
///
/// # Errors
///
/// Propagates [`RimeDevice::init`] errors.
pub fn sorted_desc<T: SortableBits>(
    device: &mut RimeDevice,
    region: Region,
) -> Result<SortedStream<'_, T>, RimeError> {
    device.init_all::<T>(region)?;
    Ok(SortedStream {
        device,
        region,
        direction: Direction::Max,
        _marker: std::marker::PhantomData,
    })
}

/// Sorts the whole region ascending into a vector (`N` sort accesses).
///
/// # Errors
///
/// Propagates device errors.
pub fn sort_into_vec<T: SortableBits>(
    device: &mut RimeDevice,
    region: Region,
) -> Result<Vec<T>, RimeError> {
    sorted::<T>(device, region)?.collect_remaining()
}

/// The `k`-th smallest key (0-based) of the region — §III-B.2's O(k)
/// ranking operation.
///
/// Returns `None` when `k` is at least the region's key count.
///
/// # Errors
///
/// Propagates device errors.
pub fn kth_smallest<T: SortableBits>(
    device: &mut RimeDevice,
    region: Region,
    k: u64,
) -> Result<Option<T>, RimeError> {
    device.init_all::<T>(region)?;
    let mut last = None;
    for _ in 0..=k {
        last = device.rime_min::<T>(region)?;
        if last.is_none() {
            return Ok(None);
        }
    }
    Ok(last.map(|(_, v)| v))
}

/// The `k`-th largest key (0-based) of the region.
///
/// # Errors
///
/// Propagates device errors.
pub fn kth_largest<T: SortableBits>(
    device: &mut RimeDevice,
    region: Region,
    k: u64,
) -> Result<Option<T>, RimeError> {
    device.init_all::<T>(region)?;
    let mut last = None;
    for _ in 0..=k {
        last = device.rime_max::<T>(region)?;
        if last.is_none() {
            return Ok(None);
        }
    }
    Ok(last.map(|(_, v)| v))
}

/// Merges any number of regions into one ascending stream (Fig. 6):
/// each region supplies its running minimum; the CPU repeatedly takes the
/// global winner and refills only that region's candidate.
///
/// # Errors
///
/// Propagates device errors.
pub fn merge<T: SortableBits + PartialOrd>(
    device: &mut RimeDevice,
    regions: &[Region],
) -> Result<Vec<T>, RimeError> {
    for &r in regions {
        device.init_all::<T>(r)?;
    }
    let format = T::FORMAT;
    let mut candidates: Vec<Option<T>> = Vec::with_capacity(regions.len());
    for &r in regions {
        candidates.push(device.rime_min::<T>(r)?.map(|(_, v)| v));
    }
    let mut out = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for (idx, cand) in candidates.iter().enumerate() {
            if let Some(v) = cand {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let cur = candidates[b].as_ref().expect("best is set");
                        format
                            .compare_bits(v.to_raw_bits(), cur.to_raw_bits())
                            .is_lt()
                    }
                };
                if better {
                    best = Some(idx);
                }
            }
        }
        let Some(winner) = best else { break };
        let value = candidates[winner].take().expect("winner had a candidate");
        out.push(value);
        candidates[winner] = device.rime_min::<T>(regions[winner])?.map(|(_, v)| v);
    }
    Ok(out)
}

/// Merge-join (Fig. 6's `join` output): the ascending stream of keys
/// present in *both* regions; duplicate keys match pairwise, so a key
/// appearing `a` times in one region and `b` times in the other is
/// emitted `min(a, b)` times.
///
/// # Errors
///
/// Propagates device errors.
pub fn merge_join<T: SortableBits>(
    device: &mut RimeDevice,
    left: Region,
    right: Region,
) -> Result<Vec<T>, RimeError> {
    device.init_all::<T>(left)?;
    device.init_all::<T>(right)?;
    let format = T::FORMAT;
    let mut a = device.rime_min::<T>(left)?.map(|(_, v)| v);
    let mut b = device.rime_min::<T>(right)?.map(|(_, v)| v);
    let mut out = Vec::new();
    while let (Some(av), Some(bv)) = (&a, &b) {
        match format.compare_bits(av.to_raw_bits(), bv.to_raw_bits()) {
            std::cmp::Ordering::Less => a = device.rime_min::<T>(left)?.map(|(_, v)| v),
            std::cmp::Ordering::Greater => b = device.rime_min::<T>(right)?.map(|(_, v)| v),
            std::cmp::Ordering::Equal => {
                out.push(*av);
                a = device.rime_min::<T>(left)?.map(|(_, v)| v);
                b = device.rime_min::<T>(right)?.map(|(_, v)| v);
            }
        }
    }
    Ok(out)
}

/// Multi-way merge-join: the ascending stream of keys present in *every*
/// region (§III-B.3's "data points that exists in all input sets").
/// Duplicates match tuple-wise: a key appearing `cᵢ` times in region `i`
/// is emitted `min(cᵢ)` times.
///
/// # Errors
///
/// Propagates device errors.
pub fn merge_join_all<T: SortableBits>(
    device: &mut RimeDevice,
    regions: &[Region],
) -> Result<Vec<T>, RimeError> {
    if regions.is_empty() {
        return Ok(Vec::new());
    }
    for &r in regions {
        device.init_all::<T>(r)?;
    }
    let format = T::FORMAT;
    let mut heads: Vec<Option<T>> = Vec::with_capacity(regions.len());
    for &r in regions {
        heads.push(device.rime_min::<T>(r)?.map(|(_, v)| v));
    }
    let mut out = Vec::new();
    'outer: loop {
        // Find the largest head: every stream must reach it to match.
        let mut target: Option<u64> = None;
        for head in &heads {
            match head {
                None => break 'outer,
                Some(v) => {
                    let raw = v.to_raw_bits();
                    target = Some(match target {
                        None => raw,
                        Some(t) if format.compare_bits(raw, t).is_gt() => raw,
                        Some(t) => t,
                    });
                }
            }
        }
        let target = target.expect("non-empty regions have heads");
        // Advance every stream up to the target.
        let mut all_match = true;
        for (idx, &r) in regions.iter().enumerate() {
            loop {
                match &heads[idx] {
                    None => break 'outer,
                    Some(v) => {
                        let ord = format.compare_bits(v.to_raw_bits(), target);
                        if ord.is_lt() {
                            heads[idx] = device.rime_min::<T>(r)?.map(|(_, v)| v);
                        } else {
                            if ord.is_gt() {
                                all_match = false;
                            }
                            break;
                        }
                    }
                }
            }
        }
        if all_match {
            out.push(T::from_raw_bits(target));
            // Consume one instance from every stream.
            for (idx, &r) in regions.iter().enumerate() {
                heads[idx] = device.rime_min::<T>(r)?.map(|(_, v)| v);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RimeConfig;

    fn dev_with<T: SortableBits>(sets: &[&[T]]) -> (RimeDevice, Vec<Region>) {
        let mut dev = RimeDevice::new(RimeConfig::small());
        let mut regions = Vec::new();
        for set in sets {
            let r = dev.alloc(set.len() as u64).unwrap();
            dev.write(r, 0, set).unwrap();
            regions.push(r);
        }
        (dev, regions)
    }

    #[test]
    fn sort_into_vec_ascending() {
        let (mut dev, rs) = dev_with(&[&[5u32, 1, 4, 1, 3][..]]);
        assert_eq!(
            sort_into_vec::<u32>(&mut dev, rs[0]).unwrap(),
            vec![1, 1, 3, 4, 5]
        );
    }

    #[test]
    fn iterator_adapter_streams_and_composes() {
        let (mut dev, rs) = dev_with(&[&[5u32, 1, 4, 1, 3][..]]);
        let mut stream = sorted::<u32>(&mut dev, rs[0]).unwrap();
        let mut iter = stream.by_ref_iter();
        let first_two: Vec<u32> = iter.by_ref().take(2).collect();
        assert_eq!(first_two, vec![1, 1]);
        let rest: Vec<u32> = iter.collect();
        assert_eq!(rest, vec![3, 4, 5]);
        assert!(stream.by_ref_iter().error().is_none());
    }

    #[test]
    fn iterator_adapter_latches_errors() {
        let mut dev = RimeDevice::new(RimeConfig::small());
        let region = dev.alloc(2).unwrap();
        dev.write(region, 0, &[2u32, 1]).unwrap();
        let mut stream = sorted::<u32>(&mut dev, region).unwrap();
        // Free the region out from under the stream.
        // (Streams borrow the device mutably, so emulate via a second
        // device handle is impossible — instead drive the error through a
        // type confusion at the session level.)
        let _ = stream.try_next().unwrap();
        let mut iter = stream.by_ref_iter();
        assert_eq!(iter.next(), Some(2));
        assert_eq!(iter.next(), None);
        assert!(iter.error().is_none(), "clean exhaustion has no error");
    }

    #[test]
    fn sorted_desc_descends() {
        let (mut dev, rs) = dev_with(&[&[5i32, -1, 4][..]]);
        let mut s = sorted_desc::<i32>(&mut dev, rs[0]).unwrap();
        assert_eq!(s.collect_remaining().unwrap(), vec![5, 4, -1]);
    }

    #[test]
    fn kth_statistics() {
        let (mut dev, rs) = dev_with(&[&[9u64, 2, 7, 4, 4][..]]);
        assert_eq!(kth_smallest::<u64>(&mut dev, rs[0], 0).unwrap(), Some(2));
        assert_eq!(kth_smallest::<u64>(&mut dev, rs[0], 2).unwrap(), Some(4));
        assert_eq!(kth_smallest::<u64>(&mut dev, rs[0], 4).unwrap(), Some(9));
        assert_eq!(kth_smallest::<u64>(&mut dev, rs[0], 5).unwrap(), None);
        assert_eq!(kth_largest::<u64>(&mut dev, rs[0], 0).unwrap(), Some(9));
        assert_eq!(kth_largest::<u64>(&mut dev, rs[0], 1).unwrap(), Some(7));
    }

    #[test]
    fn fig6_merge_example() {
        // A = {5,1,3,7,10}, B = {4,8,5} → merge = 1,3,4,5,5,7,8,10
        let (mut dev, rs) = dev_with(&[&[5u32, 1, 3, 7, 10][..], &[4, 8, 5][..]]);
        let merged = merge::<u32>(&mut dev, &rs).unwrap();
        assert_eq!(merged, vec![1, 3, 4, 5, 5, 7, 8, 10]);
    }

    #[test]
    fn fig6_join_example() {
        // join = {5}: the only key in both sets.
        let (mut dev, rs) = dev_with(&[&[5u32, 1, 3, 7, 10][..], &[4, 8, 5][..]]);
        let joined = merge_join::<u32>(&mut dev, rs[0], rs[1]).unwrap();
        assert_eq!(joined, vec![5]);
    }

    #[test]
    fn join_duplicates_match_pairwise() {
        let (mut dev, rs) = dev_with(&[&[2u32, 2, 2, 5][..], &[2, 2, 7][..]]);
        let joined = merge_join::<u32>(&mut dev, rs[0], rs[1]).unwrap();
        assert_eq!(joined, vec![2, 2]);
    }

    #[test]
    fn three_way_merge() {
        let (mut dev, rs) = dev_with(&[&[3u32, 9][..], &[1, 7][..], &[5, 2][..]]);
        let merged = merge::<u32>(&mut dev, &rs).unwrap();
        assert_eq!(merged, vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn merge_of_floats_uses_total_order() {
        let (mut dev, rs) = dev_with(&[&[-1.5f32, 2.0][..], &[0.0, -3.25][..]]);
        let merged = merge::<f32>(&mut dev, &rs).unwrap();
        assert_eq!(merged, vec![-3.25, -1.5, 0.0, 2.0]);
    }

    #[test]
    fn merge_empty_region_list() {
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(merge::<u32>(&mut dev, &[]).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn multiway_join_intersects_all_sets() {
        let (mut dev, rs) = dev_with(&[&[5u32, 1, 3, 7][..], &[4, 5, 3][..], &[3, 9, 5, 5][..]]);
        let joined = merge_join_all::<u32>(&mut dev, &rs).unwrap();
        assert_eq!(joined, vec![3, 5]);
    }

    #[test]
    fn multiway_join_duplicates_take_minimum_count() {
        let (mut dev, rs) = dev_with(&[&[2u32, 2, 2][..], &[2, 2][..], &[2, 2, 2, 2][..]]);
        let joined = merge_join_all::<u32>(&mut dev, &rs).unwrap();
        assert_eq!(joined, vec![2, 2]);
    }

    #[test]
    fn multiway_join_matches_pairwise_for_two_sets() {
        let (mut dev, rs) = dev_with(&[&[5u32, 1, 3, 7, 10][..], &[4, 8, 5][..]]);
        let multi = merge_join_all::<u32>(&mut dev, &rs).unwrap();
        let pair = merge_join::<u32>(&mut dev, rs[0], rs[1]).unwrap();
        assert_eq!(multi, pair);
    }

    #[test]
    fn multiway_join_empty_inputs() {
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert!(merge_join_all::<u32>(&mut dev, &[]).unwrap().is_empty());
        let (mut dev, rs) = dev_with(&[&[1u32][..], &[2][..]]);
        assert!(merge_join_all::<u32>(&mut dev, &rs).unwrap().is_empty());
    }

    #[test]
    fn streams_over_disjoint_regions_interleave() {
        // Two regions on the same device, consumed alternately — the
        // concurrent-range support in the chips makes this legal.
        let (mut dev, rs) = dev_with(&[&[4u32, 2][..], &[3, 1][..]]);
        dev.init_all::<u32>(rs[0]).unwrap();
        dev.init_all::<u32>(rs[1]).unwrap();
        assert_eq!(dev.rime_min::<u32>(rs[0]).unwrap().unwrap().1, 2);
        assert_eq!(dev.rime_min::<u32>(rs[1]).unwrap().unwrap().1, 1);
        assert_eq!(dev.rime_min::<u32>(rs[0]).unwrap().unwrap().1, 4);
        assert_eq!(dev.rime_min::<u32>(rs[1]).unwrap().unwrap().1, 3);
    }
}
