//! Rank, sort, merge, and merge-join operations (§III-B).
//!
//! These are thin compositions over the `rime_min`/`rime_max` primitive —
//! exactly the point of the paper's API design: once the memory can hand
//! back the next extreme of any range in O(1) bandwidth, sorting is `N`
//! repeated accesses, ranking is `k`, and merging `m` ranges costs one
//! candidate buffer per range plus CPU-side winner selection (Fig. 6,
//! Fig. 14).
//!
//! Streaming operations fetch keys through the batched
//! [`RimeDevice::rime_min_k`] / [`RimeDevice::rime_max_k`] primitives,
//! which amortize select-vector setup and H-tree traversal across a whole
//! batch of consecutive extractions. Every operation takes the device by
//! shared reference, so disjoint regions can be driven from different
//! threads concurrently (see [`merge_parallel`]).
//!
//! Like every other consumer of the device, these compositions bottom
//! out in the unified command plane ([`crate::cmd`]): each primitive
//! call lowers into one typed `Command`, so telemetry sinks observe
//! rank/sort/merge workloads as the same event stream any front-end
//! produces.

use std::collections::VecDeque;

use rime_memristive::{Direction, SortableBits};

use crate::device::{Region, RimeDevice};
use crate::error::RimeError;

/// How many keys a [`SortedStream`] requests from the device per refill.
///
/// Large enough to amortize select-vector setup across the batch, small
/// enough that over-asking near exhaustion stays cheap.
const STREAM_BATCH: usize = 32;

/// Streaming handle over one initialized region, yielding keys in order.
///
/// Created by [`sorted`] / [`sorted_desc`]; call
/// [`SortedStream::try_next`] until it returns `Ok(None)`.
///
/// The stream pulls keys from the device in batches of `STREAM_BATCH`
/// and buffers them host-side, so device errors (stale region, format
/// mismatch, …) surface at refill boundaries rather than on every call.
#[derive(Debug)]
pub struct SortedStream<'d, T> {
    device: &'d RimeDevice,
    region: Region,
    direction: Direction,
    buffer: VecDeque<T>,
    exhausted: bool,
}

impl<T: SortableBits> SortedStream<'_, T> {
    /// The next key in order, or `None` when the range is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates device errors (stale region, format mismatch, …).
    pub fn try_next(&mut self) -> Result<Option<T>, RimeError> {
        if self.buffer.is_empty() && !self.exhausted {
            let batch = match self.direction {
                Direction::Min => self.device.rime_min_k::<T>(self.region, STREAM_BATCH)?,
                Direction::Max => self.device.rime_max_k::<T>(self.region, STREAM_BATCH)?,
            };
            if batch.len() < STREAM_BATCH {
                self.exhausted = true;
            }
            self.buffer.extend(batch.into_iter().map(|(_, v)| v));
        }
        Ok(self.buffer.pop_front())
    }

    /// Drains the remaining keys into a vector.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn collect_remaining(&mut self) -> Result<Vec<T>, RimeError> {
        let mut out = Vec::new();
        while let Some(v) = self.try_next()? {
            out.push(v);
        }
        Ok(out)
    }
}

impl<'d, T: SortableBits> SortedStream<'d, T> {
    /// Adapts the stream into a plain [`Iterator`] that ends on the first
    /// error, latching it for inspection via [`IterSorted::error`].
    pub fn by_ref_iter(&mut self) -> IterSorted<'_, 'd, T> {
        IterSorted {
            stream: self,
            error: None,
        }
    }
}

/// Infallible-looking iterator over a [`SortedStream`]; produced by
/// [`SortedStream::by_ref_iter`]. Errors end the iteration and are
/// latched instead of panicking.
#[derive(Debug)]
pub struct IterSorted<'s, 'd, T> {
    stream: &'s mut SortedStream<'d, T>,
    error: Option<RimeError>,
}

impl<T: SortableBits> IterSorted<'_, '_, T> {
    /// The error that ended iteration early, if any.
    pub fn error(&self) -> Option<&RimeError> {
        self.error.as_ref()
    }
}

impl<T: SortableBits> Iterator for IterSorted<'_, '_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.error.is_some() {
            return None;
        }
        match self.stream.try_next() {
            Ok(item) => item,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// Begins an ascending sorted stream over the whole region
/// (initializes it first).
///
/// # Errors
///
/// Propagates [`RimeDevice::init`] errors.
///
/// # Example
///
/// ```
/// use rime_core::{ops, RimeConfig, RimeDevice};
///
/// # fn main() -> Result<(), rime_core::RimeError> {
/// let dev = RimeDevice::new(RimeConfig::small());
/// let region = dev.alloc(4)?;
/// dev.write(region, 0, &[3u32, 1, 4, 1])?;
/// let mut stream = ops::sorted::<u32>(&dev, region)?;
/// assert_eq!(stream.collect_remaining()?, vec![1, 1, 3, 4]);
/// # Ok(())
/// # }
/// ```
pub fn sorted<T: SortableBits>(
    device: &RimeDevice,
    region: Region,
) -> Result<SortedStream<'_, T>, RimeError> {
    device.init_all::<T>(region)?;
    Ok(SortedStream {
        device,
        region,
        direction: Direction::Min,
        buffer: VecDeque::new(),
        exhausted: false,
    })
}

/// Begins a descending sorted stream over the whole region.
///
/// # Errors
///
/// Propagates [`RimeDevice::init`] errors.
pub fn sorted_desc<T: SortableBits>(
    device: &RimeDevice,
    region: Region,
) -> Result<SortedStream<'_, T>, RimeError> {
    device.init_all::<T>(region)?;
    Ok(SortedStream {
        device,
        region,
        direction: Direction::Max,
        buffer: VecDeque::new(),
        exhausted: false,
    })
}

/// Sorts the whole region ascending into a vector (`N` sort accesses).
///
/// # Errors
///
/// Propagates device errors.
pub fn sort_into_vec<T: SortableBits>(
    device: &RimeDevice,
    region: Region,
) -> Result<Vec<T>, RimeError> {
    sorted::<T>(device, region)?.collect_remaining()
}

/// The `k` smallest keys of the region, ascending — one batched
/// top-k extraction (§III-B.2).
///
/// Returns fewer than `k` keys when the region holds fewer.
///
/// # Errors
///
/// Propagates device errors.
pub fn smallest_k<T: SortableBits>(
    device: &RimeDevice,
    region: Region,
    k: u64,
) -> Result<Vec<T>, RimeError> {
    device.init_all::<T>(region)?;
    Ok(device
        .rime_min_k::<T>(region, usize::try_from(k).unwrap_or(usize::MAX))?
        .into_iter()
        .map(|(_, v)| v)
        .collect())
}

/// The `k` largest keys of the region, descending.
///
/// # Errors
///
/// Propagates device errors.
pub fn largest_k<T: SortableBits>(
    device: &RimeDevice,
    region: Region,
    k: u64,
) -> Result<Vec<T>, RimeError> {
    device.init_all::<T>(region)?;
    Ok(device
        .rime_max_k::<T>(region, usize::try_from(k).unwrap_or(usize::MAX))?
        .into_iter()
        .map(|(_, v)| v)
        .collect())
}

/// The `k`-th smallest key (0-based) of the region — §III-B.2's O(k)
/// ranking operation, served by a single batched extraction.
///
/// Returns `None` when `k` is at least the region's key count.
///
/// # Errors
///
/// Propagates device errors.
pub fn kth_smallest<T: SortableBits>(
    device: &RimeDevice,
    region: Region,
    k: u64,
) -> Result<Option<T>, RimeError> {
    device.init_all::<T>(region)?;
    let want = k.saturating_add(1);
    let batch = device.rime_min_k::<T>(region, usize::try_from(want).unwrap_or(usize::MAX))?;
    if (batch.len() as u64) < want {
        return Ok(None);
    }
    Ok(batch.last().map(|&(_, v)| v))
}

/// The `k`-th largest key (0-based) of the region.
///
/// # Errors
///
/// Propagates device errors.
pub fn kth_largest<T: SortableBits>(
    device: &RimeDevice,
    region: Region,
    k: u64,
) -> Result<Option<T>, RimeError> {
    device.init_all::<T>(region)?;
    let want = k.saturating_add(1);
    let batch = device.rime_max_k::<T>(region, usize::try_from(want).unwrap_or(usize::MAX))?;
    if (batch.len() as u64) < want {
        return Ok(None);
    }
    Ok(batch.last().map(|&(_, v)| v))
}

/// Merges any number of regions into one ascending stream (Fig. 6):
/// each region supplies its running minimum; the CPU repeatedly takes the
/// global winner and refills only that region's candidate.
///
/// # Errors
///
/// Propagates device errors.
pub fn merge<T: SortableBits + PartialOrd>(
    device: &RimeDevice,
    regions: &[Region],
) -> Result<Vec<T>, RimeError> {
    for &r in regions {
        device.init_all::<T>(r)?;
    }
    let format = T::FORMAT;
    let mut candidates: Vec<Option<T>> = Vec::with_capacity(regions.len());
    for &r in regions {
        candidates.push(device.rime_min::<T>(r)?.map(|(_, v)| v));
    }
    let mut out = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for (idx, cand) in candidates.iter().enumerate() {
            if let Some(v) = cand {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let cur = candidates[b].as_ref().expect("best is set");
                        format
                            .compare_bits(v.to_raw_bits(), cur.to_raw_bits())
                            .is_lt()
                    }
                };
                if better {
                    best = Some(idx);
                }
            }
        }
        let Some(winner) = best else { break };
        let value = candidates[winner].take().expect("winner had a candidate");
        out.push(value);
        candidates[winner] = device.rime_min::<T>(regions[winner])?.map(|(_, v)| v);
    }
    Ok(out)
}

/// Merges regions like [`merge`], but drains every region on its own
/// thread through the shared device before a CPU-side k-way merge of the
/// sorted runs.
///
/// This is the Fig. 14 merge scenario with the ranges actually running
/// concurrently: each worker streams its region through the batched
/// extraction path while the others do the same. The worker count is
/// bounded by the host's parallelism — regions are striped across a
/// fixed set of workers instead of spawning one OS thread per region,
/// so a thousand-way merge costs the same handful of threads as a
/// four-way one. The output is identical to [`merge`] — ties between
/// runs resolve toward the earlier region in `regions`, matching the
/// sequential candidate-buffer walk; each worker's runs are placed back
/// by region index, so the k-way merge sees them in `regions` order
/// regardless of scheduling.
///
/// # Errors
///
/// Propagates device errors from any worker.
pub fn merge_parallel<T: SortableBits + Send>(
    device: &RimeDevice,
    regions: &[Region],
) -> Result<Vec<T>, RimeError> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(regions.len().max(1));
    merge_parallel_with_workers(device, regions, workers)
}

/// Drains one region to a sorted run via the batched extraction stream.
fn drain_region<T: SortableBits>(device: &RimeDevice, region: Region) -> Result<Vec<T>, RimeError> {
    let mut stream = SortedStream::<T> {
        device,
        region,
        direction: Direction::Min,
        buffer: VecDeque::new(),
        exhausted: false,
    };
    stream.collect_remaining()
}

/// [`merge_parallel`] with an explicit worker bound (exposed to tests so
/// the striping is exercised regardless of the host's core count).
fn merge_parallel_with_workers<T: SortableBits + Send>(
    device: &RimeDevice,
    regions: &[Region],
    workers: usize,
) -> Result<Vec<T>, RimeError> {
    for &r in regions {
        device.init_all::<T>(r)?;
    }
    let results: Vec<Result<Vec<T>, RimeError>> = if workers <= 1 || regions.len() <= 1 {
        regions.iter().map(|&r| drain_region(device, r)).collect()
    } else {
        // Stripe regions across the bounded worker set; every worker
        // tags its runs with the region index so the merge below sees
        // them in `regions` order whatever the scheduling.
        let mut slots: Vec<Option<Result<Vec<T>, RimeError>>> =
            regions.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        regions
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(idx, &region)| (idx, drain_region(device, region)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (idx, res) in handle.join().expect("merge worker panicked") {
                    slots[idx] = Some(res);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every region is striped to a worker"))
            .collect()
    };
    let mut runs = Vec::with_capacity(results.len());
    for res in results {
        runs.push(res?);
    }
    // CPU-side k-way merge of the already-sorted runs.
    let format = T::FORMAT;
    let mut cursors = vec![0usize; runs.len()];
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<usize> = None;
        for (idx, run) in runs.iter().enumerate() {
            let Some(v) = run.get(cursors[idx]) else {
                continue;
            };
            let better = match best {
                None => true,
                Some(b) => {
                    let cur = &runs[b][cursors[b]];
                    format
                        .compare_bits(v.to_raw_bits(), cur.to_raw_bits())
                        .is_lt()
                }
            };
            if better {
                best = Some(idx);
            }
        }
        let winner = best.expect("out.len() < total implies a live run");
        out.push(runs[winner][cursors[winner]]);
        cursors[winner] += 1;
    }
    Ok(out)
}

/// Merge-join (Fig. 6's `join` output): the ascending stream of keys
/// present in *both* regions; duplicate keys match pairwise, so a key
/// appearing `a` times in one region and `b` times in the other is
/// emitted `min(a, b)` times.
///
/// # Errors
///
/// Propagates device errors.
pub fn merge_join<T: SortableBits>(
    device: &RimeDevice,
    left: Region,
    right: Region,
) -> Result<Vec<T>, RimeError> {
    device.init_all::<T>(left)?;
    device.init_all::<T>(right)?;
    let format = T::FORMAT;
    let mut a = device.rime_min::<T>(left)?.map(|(_, v)| v);
    let mut b = device.rime_min::<T>(right)?.map(|(_, v)| v);
    let mut out = Vec::new();
    while let (Some(av), Some(bv)) = (&a, &b) {
        match format.compare_bits(av.to_raw_bits(), bv.to_raw_bits()) {
            std::cmp::Ordering::Less => a = device.rime_min::<T>(left)?.map(|(_, v)| v),
            std::cmp::Ordering::Greater => b = device.rime_min::<T>(right)?.map(|(_, v)| v),
            std::cmp::Ordering::Equal => {
                out.push(*av);
                a = device.rime_min::<T>(left)?.map(|(_, v)| v);
                b = device.rime_min::<T>(right)?.map(|(_, v)| v);
            }
        }
    }
    Ok(out)
}

/// Multi-way merge-join: the ascending stream of keys present in *every*
/// region (§III-B.3's "data points that exists in all input sets").
/// Duplicates match tuple-wise: a key appearing `cᵢ` times in region `i`
/// is emitted `min(cᵢ)` times.
///
/// # Errors
///
/// Propagates device errors.
pub fn merge_join_all<T: SortableBits>(
    device: &RimeDevice,
    regions: &[Region],
) -> Result<Vec<T>, RimeError> {
    if regions.is_empty() {
        return Ok(Vec::new());
    }
    for &r in regions {
        device.init_all::<T>(r)?;
    }
    let format = T::FORMAT;
    let mut heads: Vec<Option<T>> = Vec::with_capacity(regions.len());
    for &r in regions {
        heads.push(device.rime_min::<T>(r)?.map(|(_, v)| v));
    }
    let mut out = Vec::new();
    'outer: loop {
        // Find the largest head: every stream must reach it to match.
        let mut target: Option<u64> = None;
        for head in &heads {
            match head {
                None => break 'outer,
                Some(v) => {
                    let raw = v.to_raw_bits();
                    target = Some(match target {
                        None => raw,
                        Some(t) if format.compare_bits(raw, t).is_gt() => raw,
                        Some(t) => t,
                    });
                }
            }
        }
        let target = target.expect("non-empty regions have heads");
        // Advance every stream up to the target.
        let mut all_match = true;
        for (idx, &r) in regions.iter().enumerate() {
            loop {
                match &heads[idx] {
                    None => break 'outer,
                    Some(v) => {
                        let ord = format.compare_bits(v.to_raw_bits(), target);
                        if ord.is_lt() {
                            heads[idx] = device.rime_min::<T>(r)?.map(|(_, v)| v);
                        } else {
                            if ord.is_gt() {
                                all_match = false;
                            }
                            break;
                        }
                    }
                }
            }
        }
        if all_match {
            out.push(T::from_raw_bits(target));
            // Consume one instance from every stream.
            for (idx, &r) in regions.iter().enumerate() {
                heads[idx] = device.rime_min::<T>(r)?.map(|(_, v)| v);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RimeConfig;

    fn dev_with<T: SortableBits>(sets: &[&[T]]) -> (RimeDevice, Vec<Region>) {
        let dev = RimeDevice::new(RimeConfig::small());
        let mut regions = Vec::new();
        for set in sets {
            let r = dev.alloc(set.len() as u64).unwrap();
            dev.write(r, 0, set).unwrap();
            regions.push(r);
        }
        (dev, regions)
    }

    #[test]
    fn sort_into_vec_ascending() {
        let (dev, rs) = dev_with(&[&[5u32, 1, 4, 1, 3][..]]);
        assert_eq!(
            sort_into_vec::<u32>(&dev, rs[0]).unwrap(),
            vec![1, 1, 3, 4, 5]
        );
    }

    #[test]
    fn sort_spanning_multiple_stream_batches() {
        // More keys than STREAM_BATCH so the stream refills mid-sort.
        let keys: Vec<u64> = (0..100).map(|i| (i * 7919) % 541).collect();
        let (dev, rs) = dev_with(&[&keys[..]]);
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(sort_into_vec::<u64>(&dev, rs[0]).unwrap(), want);
    }

    #[test]
    fn iterator_adapter_streams_and_composes() {
        let (dev, rs) = dev_with(&[&[5u32, 1, 4, 1, 3][..]]);
        let mut stream = sorted::<u32>(&dev, rs[0]).unwrap();
        let mut iter = stream.by_ref_iter();
        let first_two: Vec<u32> = iter.by_ref().take(2).collect();
        assert_eq!(first_two, vec![1, 1]);
        let rest: Vec<u32> = iter.collect();
        assert_eq!(rest, vec![3, 4, 5]);
        assert!(stream.by_ref_iter().error().is_none());
    }

    #[test]
    fn iterator_adapter_latches_errors() {
        let dev = RimeDevice::new(RimeConfig::small());
        let region = dev.alloc(2).unwrap();
        dev.write(region, 0, &[2u32, 1]).unwrap();
        let mut stream = sorted::<u32>(&dev, region).unwrap();
        let _ = stream.try_next().unwrap();
        let mut iter = stream.by_ref_iter();
        assert_eq!(iter.next(), Some(2));
        assert_eq!(iter.next(), None);
        assert!(iter.error().is_none(), "clean exhaustion has no error");
    }

    #[test]
    fn sorted_desc_descends() {
        let (dev, rs) = dev_with(&[&[5i32, -1, 4][..]]);
        let mut s = sorted_desc::<i32>(&dev, rs[0]).unwrap();
        assert_eq!(s.collect_remaining().unwrap(), vec![5, 4, -1]);
    }

    #[test]
    fn kth_statistics() {
        let (dev, rs) = dev_with(&[&[9u64, 2, 7, 4, 4][..]]);
        assert_eq!(kth_smallest::<u64>(&dev, rs[0], 0).unwrap(), Some(2));
        assert_eq!(kth_smallest::<u64>(&dev, rs[0], 2).unwrap(), Some(4));
        assert_eq!(kth_smallest::<u64>(&dev, rs[0], 4).unwrap(), Some(9));
        assert_eq!(kth_smallest::<u64>(&dev, rs[0], 5).unwrap(), None);
        assert_eq!(kth_largest::<u64>(&dev, rs[0], 0).unwrap(), Some(9));
        assert_eq!(kth_largest::<u64>(&dev, rs[0], 1).unwrap(), Some(7));
    }

    #[test]
    fn top_k_helpers() {
        let (dev, rs) = dev_with(&[&[9u64, 2, 7, 4, 4][..]]);
        assert_eq!(smallest_k::<u64>(&dev, rs[0], 3).unwrap(), vec![2, 4, 4]);
        assert_eq!(largest_k::<u64>(&dev, rs[0], 2).unwrap(), vec![9, 7]);
        // Over-asking returns everything.
        assert_eq!(
            smallest_k::<u64>(&dev, rs[0], 99).unwrap(),
            vec![2, 4, 4, 7, 9]
        );
        assert!(smallest_k::<u64>(&dev, rs[0], 0).unwrap().is_empty());
    }

    #[test]
    fn fig6_merge_example() {
        // A = {5,1,3,7,10}, B = {4,8,5} → merge = 1,3,4,5,5,7,8,10
        let (dev, rs) = dev_with(&[&[5u32, 1, 3, 7, 10][..], &[4, 8, 5][..]]);
        let merged = merge::<u32>(&dev, &rs).unwrap();
        assert_eq!(merged, vec![1, 3, 4, 5, 5, 7, 8, 10]);
    }

    #[test]
    fn fig6_join_example() {
        // join = {5}: the only key in both sets.
        let (dev, rs) = dev_with(&[&[5u32, 1, 3, 7, 10][..], &[4, 8, 5][..]]);
        let joined = merge_join::<u32>(&dev, rs[0], rs[1]).unwrap();
        assert_eq!(joined, vec![5]);
    }

    #[test]
    fn join_duplicates_match_pairwise() {
        let (dev, rs) = dev_with(&[&[2u32, 2, 2, 5][..], &[2, 2, 7][..]]);
        let joined = merge_join::<u32>(&dev, rs[0], rs[1]).unwrap();
        assert_eq!(joined, vec![2, 2]);
    }

    #[test]
    fn three_way_merge() {
        let (dev, rs) = dev_with(&[&[3u32, 9][..], &[1, 7][..], &[5, 2][..]]);
        let merged = merge::<u32>(&dev, &rs).unwrap();
        assert_eq!(merged, vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn merge_of_floats_uses_total_order() {
        let (dev, rs) = dev_with(&[&[-1.5f32, 2.0][..], &[0.0, -3.25][..]]);
        let merged = merge::<f32>(&dev, &rs).unwrap();
        assert_eq!(merged, vec![-3.25, -1.5, 0.0, 2.0]);
    }

    #[test]
    fn merge_empty_region_list() {
        let dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(merge::<u32>(&dev, &[]).unwrap(), Vec::<u32>::new());
        assert_eq!(merge_parallel::<u32>(&dev, &[]).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn parallel_merge_matches_sequential_merge() {
        let sets: Vec<Vec<u64>> = (0..4)
            .map(|s| {
                (0..40)
                    .map(|i| (i * 2654435761u64 + s * 97) % 733)
                    .collect()
            })
            .collect();
        let slices: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let (dev, rs) = dev_with(&slices);
        let par = merge_parallel::<u64>(&dev, &rs).unwrap();
        let seq = merge::<u64>(&dev, &rs).unwrap();
        assert_eq!(par, seq);
        let mut want: Vec<u64> = sets.into_iter().flatten().collect();
        want.sort_unstable();
        assert_eq!(par, want);
    }

    #[test]
    fn many_region_merge_stays_bounded_and_unchanged() {
        // Far more regions than any sane core count: the striped worker
        // bound must not change the output. Exercise the striping at
        // several explicit worker counts (including counts that do not
        // divide the region count) plus the host-derived default.
        let sets: Vec<Vec<u32>> = (0..24)
            .map(|s| {
                (0..6)
                    .map(|i| ((i * 2654435761u64 + s * 193) % 509) as u32)
                    .collect()
            })
            .collect();
        let slices: Vec<&[u32]> = sets.iter().map(Vec::as_slice).collect();
        let (dev, rs) = dev_with(&slices);
        let mut want: Vec<u32> = sets.into_iter().flatten().collect();
        want.sort_unstable();
        for workers in [1, 3, 7, 24, 64] {
            let got = merge_parallel_with_workers::<u32>(&dev, &rs, workers).unwrap();
            assert_eq!(got, want, "workers = {workers}");
        }
        assert_eq!(merge_parallel::<u32>(&dev, &rs).unwrap(), want);
        assert_eq!(merge::<u32>(&dev, &rs).unwrap(), want);
    }

    #[test]
    fn multiway_join_intersects_all_sets() {
        let (dev, rs) = dev_with(&[&[5u32, 1, 3, 7][..], &[4, 5, 3][..], &[3, 9, 5, 5][..]]);
        let joined = merge_join_all::<u32>(&dev, &rs).unwrap();
        assert_eq!(joined, vec![3, 5]);
    }

    #[test]
    fn multiway_join_duplicates_take_minimum_count() {
        let (dev, rs) = dev_with(&[&[2u32, 2, 2][..], &[2, 2][..], &[2, 2, 2, 2][..]]);
        let joined = merge_join_all::<u32>(&dev, &rs).unwrap();
        assert_eq!(joined, vec![2, 2]);
    }

    #[test]
    fn multiway_join_matches_pairwise_for_two_sets() {
        let (dev, rs) = dev_with(&[&[5u32, 1, 3, 7, 10][..], &[4, 8, 5][..]]);
        let multi = merge_join_all::<u32>(&dev, &rs).unwrap();
        let pair = merge_join::<u32>(&dev, rs[0], rs[1]).unwrap();
        assert_eq!(multi, pair);
    }

    #[test]
    fn multiway_join_empty_inputs() {
        let dev = RimeDevice::new(RimeConfig::small());
        assert!(merge_join_all::<u32>(&dev, &[]).unwrap().is_empty());
        let (dev, rs) = dev_with(&[&[1u32][..], &[2][..]]);
        assert!(merge_join_all::<u32>(&dev, &rs).unwrap().is_empty());
    }

    #[test]
    fn streams_over_disjoint_regions_interleave() {
        // Two regions on the same device, consumed alternately — the
        // concurrent-range support in the chips makes this legal.
        let (dev, rs) = dev_with(&[&[4u32, 2][..], &[3, 1][..]]);
        dev.init_all::<u32>(rs[0]).unwrap();
        dev.init_all::<u32>(rs[1]).unwrap();
        assert_eq!(dev.rime_min::<u32>(rs[0]).unwrap().unwrap().1, 2);
        assert_eq!(dev.rime_min::<u32>(rs[1]).unwrap().unwrap().1, 1);
        assert_eq!(dev.rime_min::<u32>(rs[0]).unwrap().unwrap().1, 4);
        assert_eq!(dev.rime_min::<u32>(rs[1]).unwrap().unwrap().1, 3);
    }
}
