//! DIMM organization and boot-time mode configuration (§V).
//!
//! A system mixes RIME DIMMs with conventional storage DIMMs. Each DIMM
//! is configured **at boot** to operate either in RIME mode or in normal
//! storage mode; runtime reconfiguration is not allowed ("owing to
//! constraints imposed by the tree-based index reduction architecture").
//! RIME DIMMs additionally forbid fine-grained channel interleaving: the
//! paper's example maps `0x00000000–0x3FFFFFFF` to RIME 0 and
//! `0x40000000–0x7FFFFFFF` to RIME 1, using address bit 2³⁰ to extract
//! the DIMM index.
//!
//! [`DimmSystem`] models that boot-time partition: a byte-addressable
//! space where RIME-mode ranges are backed by a [`RimeDevice`] and
//! normal-mode ranges by conventional storage, with ranking operations
//! rejected on the latter.

use rime_memristive::{Chip, NormalStorageView};

use crate::device::{Region, RimeConfig, RimeDevice};
use crate::error::RimeError;

/// Per-DIMM operating mode, fixed at boot (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimmMode {
    /// In-situ ranking enabled; contiguous allocation required.
    Rime,
    /// Conventional storage; ordinary allocation, no ranking.
    NormalStorage,
}

/// The paper's single-DIMM channel size: 1 GB, so bit 2³⁰ selects the
/// DIMM.
pub const DIMM_BYTES: u64 = 1 << 30;

/// Extracts the DIMM index from a physical byte address (§V footnote:
/// "the bit location 2³⁰ is used to extract the DIMM address").
pub fn dimm_of_addr(addr: u64) -> u64 {
    addr / DIMM_BYTES
}

/// A booted system: an ordered list of DIMMs with fixed modes.
#[derive(Debug)]
pub struct DimmSystem {
    modes: Vec<DimmMode>,
    rime: RimeDevice,
    /// Normal-storage DIMMs are memristive chips too (same cells, wear,
    /// and fault model) — just served through the byte datapath.
    normal: Vec<Option<Chip>>,
}

impl DimmSystem {
    /// Boots a system with the given per-DIMM modes. The RIME device's
    /// channels are assigned to the RIME-mode DIMMs in order.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is empty.
    pub fn boot(modes: Vec<DimmMode>, rime_config: RimeConfig) -> DimmSystem {
        assert!(!modes.is_empty(), "a system needs at least one DIMM");
        let normal = modes
            .iter()
            .map(|m| match m {
                DimmMode::NormalStorage => Some(Chip::new(rime_config.chip_geometry)),
                DimmMode::Rime => None,
            })
            .collect();
        DimmSystem {
            modes,
            rime: RimeDevice::new(rime_config),
            normal,
        }
    }

    /// A convenient small system for tests: one RIME DIMM and one
    /// normal-storage DIMM.
    pub fn small_mixed() -> DimmSystem {
        DimmSystem::boot(
            vec![DimmMode::Rime, DimmMode::NormalStorage],
            RimeConfig::small(),
        )
    }

    /// Number of DIMMs.
    pub fn dimm_count(&self) -> usize {
        self.modes.len()
    }

    /// The boot-time mode of `dimm`.
    pub fn mode(&self, dimm: u64) -> Option<DimmMode> {
        self.modes.get(dimm as usize).copied()
    }

    /// Mode of the DIMM holding byte address `addr`.
    pub fn mode_of_addr(&self, addr: u64) -> Option<DimmMode> {
        self.mode(dimm_of_addr(addr))
    }

    /// §V: runtime reconfiguration between modes is not allowed. Always
    /// fails; present so callers get a truthful error instead of UB.
    ///
    /// # Errors
    ///
    /// Always [`RimeError::InvalidRegion`].
    pub fn reconfigure(&mut self, _dimm: u64, _mode: DimmMode) -> Result<(), RimeError> {
        Err(RimeError::InvalidRegion)
    }

    /// Access to the RIME device backing the RIME-mode DIMMs.
    pub fn rime_device(&mut self) -> &mut RimeDevice {
        &mut self.rime
    }

    /// `rime_malloc` — only meaningful on the RIME DIMMs.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures.
    pub fn rime_malloc(&mut self, len: u64) -> Result<Region, RimeError> {
        self.rime.alloc(len)
    }

    /// Stores one word into a normal-storage DIMM.
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`] when `addr` is not on a normal DIMM
    /// (RIME-mode data goes through regions, not raw addresses).
    pub fn store_normal(&mut self, addr: u64, value: u64) -> Result<(), RimeError> {
        let dimm = dimm_of_addr(addr) as usize;
        match self.normal.get_mut(dimm).and_then(Option::as_mut) {
            Some(chip) => {
                let local = (addr % DIMM_BYTES) & !7;
                NormalStorageView::new(chip).write_u64(local, value)?;
                Ok(())
            }
            None => Err(RimeError::InvalidRegion),
        }
    }

    /// Loads one word from a normal-storage DIMM.
    ///
    /// # Errors
    ///
    /// [`RimeError::InvalidRegion`] when `addr` is not on a normal DIMM.
    pub fn load_normal(&mut self, addr: u64) -> Result<u64, RimeError> {
        let dimm = dimm_of_addr(addr) as usize;
        match self.normal.get_mut(dimm).and_then(Option::as_mut) {
            Some(chip) => Ok(NormalStorageView::new(chip).read_u64((addr % DIMM_BYTES) & !7)?),
            None => Err(RimeError::InvalidRegion),
        }
    }

    /// Whether ranking commands are legal at `addr` — true only on
    /// RIME-mode DIMMs.
    pub fn ranking_allowed(&self, addr: u64) -> bool {
        self.mode_of_addr(addr) == Some(DimmMode::Rime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn paper_address_example() {
        // §V: 0x00000000–0x3FFFFFFF → RIME 0; 0x40000000–0x7FFFFFFF → RIME 1.
        assert_eq!(dimm_of_addr(0x0000_0000), 0);
        assert_eq!(dimm_of_addr(0x3FFF_FFFF), 0);
        assert_eq!(dimm_of_addr(0x4000_0000), 1);
        assert_eq!(dimm_of_addr(0x7FFF_FFFF), 1);
    }

    #[test]
    fn boot_assigns_modes() {
        let sys = DimmSystem::small_mixed();
        assert_eq!(sys.dimm_count(), 2);
        assert_eq!(sys.mode(0), Some(DimmMode::Rime));
        assert_eq!(sys.mode(1), Some(DimmMode::NormalStorage));
        assert_eq!(sys.mode(2), None);
        assert!(sys.ranking_allowed(0));
        assert!(!sys.ranking_allowed(DIMM_BYTES + 64));
    }

    #[test]
    fn runtime_reconfiguration_is_rejected() {
        let mut sys = DimmSystem::small_mixed();
        assert!(sys.reconfigure(1, DimmMode::Rime).is_err());
        assert_eq!(sys.mode(1), Some(DimmMode::NormalStorage));
    }

    #[test]
    fn normal_storage_roundtrips_and_rejects_rime_side() {
        let mut sys = DimmSystem::small_mixed();
        let addr = DIMM_BYTES + 128;
        sys.store_normal(addr, 0xDEAD).unwrap();
        assert_eq!(sys.load_normal(addr).unwrap(), 0xDEAD);
        // The RIME DIMM does not accept raw normal stores.
        assert!(sys.store_normal(64, 1).is_err());
        assert!(sys.load_normal(64).is_err());
    }

    #[test]
    fn ranking_runs_on_the_rime_dimm() {
        let mut sys = DimmSystem::small_mixed();
        let region = sys.rime_malloc(4).unwrap();
        let dev = sys.rime_device();
        dev.write(region, 0, &[4u32, 1, 3, 2]).unwrap();
        assert_eq!(
            ops::sort_into_vec::<u32>(dev, region).unwrap(),
            vec![1, 2, 3, 4]
        );
    }
}
