//! The telemetry spine: an observer interface over the command executor.
//!
//! Every command the [`crate::cmd::Executor`] runs — no matter whether it
//! entered through the typed [`crate::device::RimeDevice`] API, the MMIO
//! register file ([`crate::mmio`]), or trace replay ([`crate::trace`]) —
//! is published exactly once as a [`TelemetryEvent`] to every attached
//! [`Telemetry`] sink. Publication happens under a single hub lock with a
//! monotonically increasing sequence number, so all sinks observe the
//! *same* event order (deterministic fan-in): counters, energy, wear, and
//! trace recordings all describe one event stream instead of each layer
//! keeping ad-hoc private plumbing.
//!
//! The built-in [`DeviceStats`] sink is always attached; it is what
//! `RimeDevice::{counters, interface_transfers, modeled_energy_nj,
//! modeled_busy_ns}` read. [`CounterSink`] and [`WearSink`] are optional
//! reusable sinks; `rime-energy` provides an energy-accounting sink over
//! the same trait.
//!
//! Sinks run synchronously inside the executor, so a sink must never call
//! back into the device that feeds it (the hub lock is held during
//! [`Telemetry::record`]).

use std::sync::{Arc, Mutex};

use rime_memristive::OpCounters;

use crate::cmd::{Command, Outcome};
use crate::error::RimeError;

/// Measured side effects of one executed command.
///
/// The executor snapshots each touched chip's [`OpCounters`] around every
/// chip interaction and publishes the per-chip deltas here, together with
/// the number of values that crossed the DDR4 interface. Deltas from
/// multiple interactions with the same chip within one command are merged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    chip_deltas: Vec<(u32, OpCounters)>,
    interface_transfers: u64,
}

impl Effects {
    /// Merges a chip's counter delta into the effect set.
    pub(crate) fn record_chip(&mut self, chip: u32, delta: OpCounters) {
        if delta == OpCounters::default() {
            return;
        }
        if let Some((_, acc)) = self.chip_deltas.iter_mut().find(|(c, _)| *c == chip) {
            *acc += delta;
        } else {
            self.chip_deltas.push((chip, delta));
        }
    }

    /// Counts `n` values transferred over the interface.
    pub(crate) fn add_transfers(&mut self, n: u64) {
        self.interface_transfers += n;
    }

    /// Per-chip counter deltas `(chip index, delta)`, one entry per chip
    /// the command touched, in first-touch order.
    pub fn chip_deltas(&self) -> &[(u32, OpCounters)] {
        &self.chip_deltas
    }

    /// Values transferred over the DDR4 interface by this command.
    pub fn interface_transfers(&self) -> u64 {
        self.interface_transfers
    }

    /// Sum of all per-chip deltas (device-wide counter delta).
    pub fn total(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for (_, delta) in &self.chip_deltas {
            total += *delta;
        }
        total
    }
}

/// One executed command, as observed at the executor boundary.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryEvent<'a> {
    /// Position in the device's event stream (0-based, gap-free; every
    /// sink sees events in strictly increasing `seq` order).
    pub seq: u64,
    /// The command that ran.
    pub command: &'a Command<'a>,
    /// What it produced: the marshalled outcome or the typed error.
    pub result: Result<&'a Outcome, &'a RimeError>,
    /// The chip/interface work it performed.
    pub effects: &'a Effects,
}

/// An observer of the executor's event stream.
///
/// Implementations must not call back into the publishing device from
/// [`Telemetry::record`]: sinks run under the telemetry hub lock.
pub trait Telemetry: Send {
    /// Observes one executed command. Called exactly once per command,
    /// in execution order, for successes *and* failures.
    fn record(&mut self, event: &TelemetryEvent<'_>);
}

/// The shareable handle form every external sink is attached as.
pub type SharedSink = Arc<Mutex<dyn Telemetry>>;

/// Wraps a sink for attachment while keeping a typed handle to read
/// results back out later.
///
/// ```
/// use rime_core::telemetry::{shared, CounterSink};
/// use rime_core::{RimeConfig, RimeDevice};
///
/// let dev = RimeDevice::new(RimeConfig::small());
/// let counters = shared(CounterSink::default());
/// dev.attach_telemetry(counters.clone());
/// let region = dev.alloc(4).unwrap();
/// dev.write(region, 0, &[3u32, 1, 2, 0]).unwrap();
/// let commands = counters
///     .lock()
///     .unwrap_or_else(std::sync::PoisonError::into_inner)
///     .commands();
/// assert_eq!(commands, 2); // alloc + write
/// ```
pub fn shared<T: Telemetry + 'static>(sink: T) -> Arc<Mutex<T>> {
    Arc::new(Mutex::new(sink))
}

/// The built-in statistics sink: per-chip counter totals plus interface
/// transfers, accumulated from the event stream. One instance lives
/// inside every executor; `RimeDevice::counters()` and the modeled
/// time/energy queries read from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceStats {
    per_chip: Vec<OpCounters>,
    interface_transfers: u64,
}

impl DeviceStats {
    /// A zeroed stats block for `chips` chips.
    pub fn new(chips: usize) -> DeviceStats {
        DeviceStats {
            per_chip: vec![OpCounters::new(); chips],
            interface_transfers: 0,
        }
    }

    /// Per-chip accumulated counters, indexed by chip.
    pub fn per_chip(&self) -> &[OpCounters] {
        &self.per_chip
    }

    /// Device-wide accumulated counters (sum over chips).
    pub fn counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for c in &self.per_chip {
            total += *c;
        }
        total
    }

    /// Values transferred over the DDR4 interface.
    pub fn interface_transfers(&self) -> u64 {
        self.interface_transfers
    }

    /// Zeroes everything.
    pub fn reset(&mut self) {
        for c in &mut self.per_chip {
            c.reset();
        }
        self.interface_transfers = 0;
    }

    /// Rebuilds a stats block from checkpointed values (journal
    /// recovery); replayed events then re-accumulate on top.
    pub(crate) fn restore(per_chip: Vec<OpCounters>, interface_transfers: u64) -> DeviceStats {
        DeviceStats {
            per_chip,
            interface_transfers,
        }
    }
}

impl Telemetry for DeviceStats {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        for &(chip, delta) in event.effects.chip_deltas() {
            if let Some(c) = self.per_chip.get_mut(chip as usize) {
                *c += delta;
            }
        }
        self.interface_transfers += event.effects.interface_transfers();
    }
}

/// A simple aggregating sink: device-wide counter totals plus command
/// and fault counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSink {
    total: OpCounters,
    transfers: u64,
    commands: u64,
    faults: u64,
}

impl CounterSink {
    /// Accumulated device-wide counters.
    pub fn counters(&self) -> OpCounters {
        self.total
    }

    /// Accumulated interface transfers.
    pub fn interface_transfers(&self) -> u64 {
        self.transfers
    }

    /// Commands observed (successes and failures).
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Commands that returned an error.
    pub fn faults(&self) -> u64 {
        self.faults
    }
}

impl Telemetry for CounterSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        self.total += event.effects.total();
        self.transfers += event.effects.interface_transfers();
        self.commands += 1;
        if event.result.is_err() {
            self.faults += 1;
        }
    }
}

/// Device-level wear tracking: cumulative row writes per chip, derived
/// from the event stream (row writes are the only wear-inducing
/// operation, §VII-C). Complements `RimeDevice::max_wear()`, which reads
/// the chips' per-block high-water marks directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WearSink {
    writes_per_chip: Vec<u64>,
}

impl WearSink {
    /// Cumulative row writes per chip (indexed by chip; chips beyond the
    /// last written one are omitted).
    pub fn writes_per_chip(&self) -> &[u64] {
        &self.writes_per_chip
    }

    /// Total row writes across the device.
    pub fn total_writes(&self) -> u64 {
        self.writes_per_chip.iter().sum()
    }

    /// The chip with the most row writes, as `(chip, writes)`.
    pub fn hottest_chip(&self) -> Option<(u32, u64)> {
        self.writes_per_chip
            .iter()
            .enumerate()
            .max_by_key(|&(_, w)| w)
            .filter(|&(_, w)| *w > 0)
            .map(|(c, &w)| (c as u32, w))
    }
}

impl Telemetry for WearSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        for &(chip, delta) in event.effects.chip_deltas() {
            if delta.row_writes == 0 {
                continue;
            }
            let idx = chip as usize;
            if self.writes_per_chip.len() <= idx {
                self.writes_per_chip.resize(idx + 1, 0);
            }
            self.writes_per_chip[idx] += delta.row_writes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::lock_recover;
    use crate::device::{RimeConfig, RimeDevice};

    fn loaded_device() -> (RimeDevice, crate::device::Region) {
        let dev = RimeDevice::new(RimeConfig::small());
        let region = dev.alloc(8).unwrap();
        dev.write(region, 0, &[9u32, 2, 7, 4, 5, 1, 8, 3]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        (dev, region)
    }

    #[test]
    fn counter_sink_matches_device_stats() {
        let (dev, region) = loaded_device();
        let sink = shared(CounterSink::default());
        dev.attach_telemetry(sink.clone());
        // Only activity after attachment is seen by the sink.
        let before = dev.counters();
        let _ = dev.rime_min_k::<u32>(region, 4).unwrap();
        let sunk = lock_recover(&sink).counters();
        let grown = dev.counters().delta_since(&before);
        assert_eq!(sunk, grown);
        assert!(sunk.extractions >= 4);
        assert_eq!(lock_recover(&sink).commands(), 1);
        assert_eq!(lock_recover(&sink).faults(), 0);
    }

    #[test]
    fn sinks_see_one_deterministic_stream() {
        let (dev, region) = loaded_device();
        let a = shared(CounterSink::default());
        let b = shared(CounterSink::default());
        dev.attach_telemetry(a.clone());
        dev.attach_telemetry(b.clone());
        let _ = dev.rime_min::<u32>(region).unwrap();
        let _ = dev.rime_min::<f32>(region); // TypeMismatch fault
        dev.free(region).unwrap();
        let a = lock_recover(&a).clone();
        let b = lock_recover(&b).clone();
        assert_eq!(a, b, "both sinks observed the identical stream");
        assert_eq!(a.commands(), 3);
        assert_eq!(a.faults(), 1);
    }

    #[test]
    fn wear_sink_tracks_row_writes_per_chip() {
        let dev = RimeDevice::new(RimeConfig::small());
        let wear = shared(WearSink::default());
        dev.attach_telemetry(wear.clone());
        let per_chip = dev.config().chip_slots();
        let region = dev.alloc(per_chip + 4).unwrap();
        let keys: Vec<u32> = (0..per_chip as u32 + 4).collect();
        dev.write(region, 0, &keys).unwrap();
        let wear = lock_recover(&wear).clone();
        assert_eq!(wear.total_writes(), keys.len() as u64);
        assert_eq!(wear.writes_per_chip().len(), 2, "write spans two chips");
        assert_eq!(wear.hottest_chip(), Some((0, per_chip)));
    }

    #[test]
    fn effects_merge_repeated_chip_touches() {
        let mut fx = Effects::default();
        let mut d = OpCounters::new();
        d.row_reads = 2;
        fx.record_chip(1, d);
        fx.record_chip(1, d);
        fx.record_chip(0, d);
        fx.record_chip(2, OpCounters::new()); // empty deltas are dropped
        assert_eq!(fx.chip_deltas().len(), 2);
        assert_eq!(fx.chip_deltas()[0].1.row_reads, 4);
        assert_eq!(fx.total().row_reads, 6);
    }
}
