//! The unified command plane: one typed command IR and one executor.
//!
//! The paper's §V defines a *single* hardware command interface — ranges
//! and formats programmed into registers, a command doorbell, results
//! read back over the DDR4 interface. This module is that interface in
//! typed form: every mutation of a RIME device is a [`Command`], and one
//! [`Executor`] owns validation, chip dispatch, and result marshalling
//! into an [`Outcome`]. The three front-ends are encoders over it:
//!
//! * [`crate::device::RimeDevice`] — the Fig. 12 userspace API; each
//!   method builds the corresponding `Command`;
//! * [`crate::mmio::MmioInterface`] — decodes register writes into the
//!   same `Command`s and translates errors to register codes;
//! * [`crate::trace`] — records commands from the executor's telemetry
//!   stream and replays them by feeding `Command`s back in.
//!
//! Because every path funnels through [`Executor::execute`], the
//! [`crate::telemetry`] spine observes *all* device activity in one
//! deterministic event stream, and future queueing/sharding/async work
//! is an executor feature rather than a three-way rewrite.
//!
//! Internal locks use poison *recovery* (`PoisonError::into_inner`), not
//! `expect`: a worker thread that panics mid-operation may leave its own
//! range in an undefined state, but it cannot cascade into a panic for
//! every other thread sharing the device.

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rime_memristive::{
    Chip, ChipState, Direction, ExtractHit, KeyFormat, OpCounters, ParallelPolicy,
};

use crate::device::{Region, RimeConfig};
use crate::driver::ContiguousAllocator;
use crate::error::RimeError;
#[cfg(feature = "crash-test")]
use crate::journal::CrashPoint;
use crate::journal::{
    self, Journal, JournalConfig, JournalError, JournalRecord, JournalStore, RecoveryReport,
};
use crate::metrics::{ChipProbe, MetricsRegistry, MetricsSink, Snapshot};
use crate::telemetry::{DeviceStats, Effects, SharedSink, Telemetry, TelemetryEvent};

/// Locks a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks an `RwLock`, recovering from poison.
fn read_recover<T: ?Sized>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks an `RwLock`, recovering from poison.
fn write_recover<T: ?Sized>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// One typed device command — the IR every front-end lowers into.
///
/// Commands borrow bulk payloads (`Cow`) so encoding a store does not
/// copy the key buffer; an owning form (`Cow::Owned`) exists for feeders
/// that build commands from recorded data.
#[derive(Debug, Clone, PartialEq)]
pub enum Command<'a> {
    /// `rime_malloc(len)`: allocate `len` contiguous key slots.
    Alloc {
        /// Requested length in key slots.
        len: u64,
    },
    /// `rime_free`: release a region and drop any active session.
    Free {
        /// The region to release.
        region: Region,
    },
    /// Ordinary DDR4 stores of raw key bits at `offset` in the region.
    Write {
        /// Target region.
        region: Region,
        /// Region-relative slot offset.
        offset: u64,
        /// Raw key patterns to store.
        raw: Cow<'a, [u64]>,
        /// Key format the bits are encoded in.
        format: KeyFormat,
    },
    /// Ordinary DDR4 loads of `n` raw keys from `offset`.
    Read {
        /// Source region.
        region: Region,
        /// Region-relative slot offset.
        offset: u64,
        /// Number of keys to load.
        n: u64,
    },
    /// `rime_init` over `[offset, offset + len)` of the region.
    Init {
        /// Target region.
        region: Region,
        /// Region-relative start.
        offset: u64,
        /// Length in slots.
        len: u64,
        /// Key format for the ranking session.
        format: KeyFormat,
    },
    /// `rime_min`/`rime_max`: extract the next extreme of the session.
    Extract {
        /// Target region.
        region: Region,
        /// Format the caller requests (checked against the session).
        format: KeyFormat,
        /// Min or max.
        direction: Direction,
    },
    /// `rime_min_k`/`rime_max_k`: extract up to `k` consecutive extremes
    /// with the per-chip candidate buffers prefilled to depth `k`
    /// (Fig. 14's buffer, generalized).
    ExtractBatch {
        /// Target region.
        region: Region,
        /// Format the caller requests.
        format: KeyFormat,
        /// Min or max.
        direction: Direction,
        /// Batch size.
        k: usize,
    },
    /// Drains one already-buffered candidate from the session's per-chip
    /// queues *without* re-engaging the chips. Returns `None` once the
    /// buffers are dry — which is not the same as the range being
    /// exhausted: an `Extract` may still find more.
    FifoNext {
        /// Target region.
        region: Region,
    },
}

impl Command<'_> {
    /// Stable lowercase label of the command kind, used as a metric
    /// label value (`rime_commands_total{command="extract_batch"}`).
    pub fn kind(&self) -> &'static str {
        match self {
            Command::Alloc { .. } => "alloc",
            Command::Free { .. } => "free",
            Command::Write { .. } => "write",
            Command::Read { .. } => "read",
            Command::Init { .. } => "init",
            Command::Extract { .. } => "extract",
            Command::ExtractBatch { .. } => "extract_batch",
            Command::FifoNext { .. } => "fifo_next",
        }
    }

    /// The region this command addresses, if any.
    pub fn region(&self) -> Option<Region> {
        match self {
            Command::Alloc { .. } => None,
            Command::Free { region }
            | Command::Write { region, .. }
            | Command::Read { region, .. }
            | Command::Init { region, .. }
            | Command::Extract { region, .. }
            | Command::ExtractBatch { region, .. }
            | Command::FifoNext { region } => Some(*region),
        }
    }
}

/// The marshalled result of a successfully executed [`Command`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `Alloc` → the new region handle.
    Region(Region),
    /// `Free` / `Write` / `Init` → completion without a payload.
    Done,
    /// `Read` → the loaded raw key bits.
    Keys(Vec<u64>),
    /// `Extract` / `FifoNext` → the next `(global slot, raw bits)`, or
    /// `None` on exhaustion (empty buffers, for `FifoNext`).
    Hit(Option<(u64, u64)>),
    /// `ExtractBatch` → up to `k` `(global slot, raw bits)` in order.
    Hits(Vec<(u64, u64)>),
}

/// An active ranking session (`rime_init` state) for one region.
#[derive(Debug, Clone)]
struct Session {
    direction: Option<Direction>,
    begin: u64,
    end: u64,
    format: KeyFormat,
    /// Per spanned chip: FIFO of buffered candidates (global slot, raw
    /// bits), in extraction order. Depth 1 under `Extract`; the batch
    /// command prefills deeper so one call drains `k` results (Fig. 14's
    /// buffer, generalized).
    queues: HashMap<u32, VecDeque<(u64, u64)>>,
}

/// Region/format bookkeeping shared under one lock: a region's extent
/// and its stored key format are always consulted together.
#[derive(Debug, Default)]
struct Tables {
    regions: HashMap<u64, (u64, u64)>, // id → (start, len)
    formats: HashMap<u64, KeyFormat>,  // id → stored key format
}

/// The telemetry hub: sequence counter, built-in stats, external sinks.
/// One lock — every event is published to all sinks under it, so sinks
/// observe a single deterministic stream.
struct Hub {
    seq: u64,
    stats: DeviceStats,
    sinks: Vec<SharedSink>,
}

impl fmt::Debug for Hub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hub")
            .field("seq", &self.seq)
            .field("stats", &self.stats)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// The single command executor behind every front-end.
///
/// Owns the chips, the driver allocator, region/format tables, and the
/// active sessions; validates and dispatches every [`Command`] and
/// publishes one [`TelemetryEvent`] per command to the telemetry hub.
///
/// Every method takes `&self`: chips, allocator, and session state sit
/// behind their own locks, so a shared executor supports the concurrent
/// multi-range operation §III-B.3 requires. Lock order is tables →
/// sessions map → one session → one chip at a time → telemetry hub; no
/// path holds two chips or two sessions simultaneously, so the
/// hierarchy is deadlock-free.
#[derive(Debug)]
pub struct Executor {
    config: RimeConfig,
    chips: Vec<Mutex<Chip>>,
    allocator: Mutex<ContiguousAllocator>,
    tables: RwLock<Tables>,
    sessions: RwLock<HashMap<u64, Arc<Mutex<Session>>>>, // region id → rime_init state
    next_id: AtomicU64,
    hub: Mutex<Hub>,
    /// Built-in metrics publisher: always on, lock-free after metric
    /// registration, feeding the registry behind [`Executor::metrics`].
    metrics: MetricsSink,
    /// Write-ahead journal, when attached. Doubles as the serialization
    /// point for journaled execution: [`Executor::execute`] holds this
    /// lock across intent → dispatch → outcome, so the log order *is*
    /// the execution order and recovery replay is deterministic.
    journal: Mutex<Option<Journal>>,
    /// Set while [`Executor::recover`] replays the journal tail:
    /// replayed commands skip the regular per-command metrics and tick
    /// only the nondeterministic-flagged replay counter, keeping masked
    /// snapshots of a recovered device identical to an uncrashed run's.
    replaying: AtomicBool,
    /// Fault injector for the crash harness; `None` keeps every crash
    /// site a no-op.
    #[cfg(feature = "crash-test")]
    crash: Mutex<Option<Arc<CrashPoint>>>,
    /// One-shot per-chip errors substituted for the *next* batched
    /// extraction result on that chip — models a chip failing
    /// mid-`ExtractBatch` after its work (and counter delta) happened.
    #[cfg(feature = "crash-test")]
    extract_faults: Mutex<Vec<(u32, RimeError)>>,
}

impl Executor {
    /// Brings up an executor with fresh chips for `config`.
    pub fn new(config: RimeConfig) -> Executor {
        Executor {
            chips: (0..config.total_chips())
                .map(|_| Mutex::new(Chip::new(config.chip_geometry)))
                .collect(),
            allocator: Mutex::new(ContiguousAllocator::new(
                config.total_slots(),
                config.driver,
            )),
            tables: RwLock::new(Tables::default()),
            sessions: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            hub: Mutex::new(Hub {
                seq: 0,
                stats: DeviceStats::new(config.total_chips() as usize),
                sinks: Vec::new(),
            }),
            metrics: MetricsSink::new(MetricsRegistry::new(), config.timing),
            journal: Mutex::new(None),
            replaying: AtomicBool::new(false),
            #[cfg(feature = "crash-test")]
            crash: Mutex::new(None),
            #[cfg(feature = "crash-test")]
            extract_faults: Mutex::new(Vec::new()),
            config,
        }
    }

    /// Validates, dispatches, and marshals one command, publishing the
    /// resulting event (success or failure) to every telemetry sink.
    /// With a journal attached, the command rides the commit-marker
    /// protocol: intent logged before dispatch, outcome after.
    pub fn execute(&self, command: Command<'_>) -> Result<Outcome, RimeError> {
        let guard = lock_recover(&self.journal);
        if guard.is_some() {
            self.execute_journaled(guard, &command)
        } else {
            drop(guard);
            self.run(&command).0
        }
    }

    /// Dispatches one command and publishes its telemetry event,
    /// returning both the result and the captured effects — the pair
    /// the journal records and recovery replay compares against.
    fn run(&self, command: &Command<'_>) -> (Result<Outcome, RimeError>, Effects) {
        let _span = crate::span!(
            self.metrics.registry(),
            "rime_command",
            command = command.kind()
        );
        let mut effects = Effects::default();
        let result = self.dispatch(command, &mut effects);
        self.publish(command, &result, &effects);
        (result, effects)
    }

    /// The journaled path: intent durable before dispatch, outcome
    /// durable after, a checkpoint every `checkpoint_every` commits —
    /// with a crash site at every step boundary. A journal append
    /// failure refuses the command *before* it runs (the durability
    /// contract is write-ahead, not best-effort).
    fn execute_journaled(
        &self,
        mut guard: MutexGuard<'_, Option<Journal>>,
        command: &Command<'_>,
    ) -> Result<Outcome, RimeError> {
        let journal = guard.as_mut().expect("journaled path");
        let ordinal = journal.committed();
        journal.record_intent(ordinal, command)?;
        self.crash_point(); // intent durable, nothing dispatched
        let (result, effects) = self.run(command);
        self.crash_point(); // dispatched + published, outcome not durable
        journal.record_outcome(ordinal, &result, &effects)?;
        self.crash_point(); // committed; checkpoint may still be due
        let every = journal.config().checkpoint_every;
        if every > 0 && journal.committed().is_multiple_of(every) {
            let state = self.checkpoint_bytes();
            self.crash_point(); // mid-checkpoint: state built, not appended
            journal.record_checkpoint(&state)?;
            self.crash_point(); // checkpoint durable
        }
        result
    }

    /// Attaches an external telemetry sink. Events from this point on
    /// are delivered to it in execution order.
    pub fn attach_sink(&self, sink: SharedSink) {
        lock_recover(&self.hub).sinks.push(sink);
    }

    fn publish(
        &self,
        command: &Command<'_>,
        result: &Result<Outcome, RimeError>,
        effects: &Effects,
    ) {
        let mut hub = lock_recover(&self.hub);
        let event = TelemetryEvent {
            seq: hub.seq,
            command,
            result: match result {
                Ok(outcome) => Ok(outcome),
                Err(error) => Err(error),
            },
            effects,
        };
        hub.seq += 1;
        hub.stats.record(&event);
        if self.replaying.load(Ordering::Relaxed) {
            self.metrics.note_replayed();
        } else {
            self.metrics.observe(&event);
        }
        for sink in &hub.sinks {
            lock_recover(sink).record(&event);
        }
    }

    fn dispatch(&self, command: &Command<'_>, fx: &mut Effects) -> Result<Outcome, RimeError> {
        match command {
            Command::Alloc { len } => self.do_alloc(*len).map(Outcome::Region),
            Command::Free { region } => self.do_free(*region).map(|()| Outcome::Done),
            Command::Write {
                region,
                offset,
                raw,
                format,
            } => self
                .do_write(*region, *offset, raw, *format, fx)
                .map(|()| Outcome::Done),
            Command::Read { region, offset, n } => {
                self.do_read(*region, *offset, *n, fx).map(Outcome::Keys)
            }
            Command::Init {
                region,
                offset,
                len,
                format,
            } => self
                .do_init(*region, *offset, *len, *format, fx)
                .map(|()| Outcome::Done),
            Command::Extract {
                region,
                format,
                direction,
            } => self
                .do_extract(*region, *format, *direction, fx)
                .map(Outcome::Hit),
            Command::ExtractBatch {
                region,
                format,
                direction,
                k,
            } => self
                .do_extract_batch(*region, *format, *direction, *k, fx)
                .map(Outcome::Hits),
            Command::FifoNext { region } => self.do_fifo_next(*region, fx).map(Outcome::Hit),
        }
    }

    /// Runs `f` under one chip's lock, publishing the chip's counter
    /// delta into `fx` — the single point where chip work becomes
    /// telemetry. Deltas are captured even when `f` fails, so partially
    /// performed work is still accounted.
    fn with_chip<R>(&self, idx: u32, fx: &mut Effects, f: impl FnOnce(&mut Chip) -> R) -> R {
        let mut chip = lock_recover(&self.chips[idx as usize]);
        let before = *chip.counters();
        let out = f(&mut chip);
        let delta = chip.counters().delta_since(&before);
        drop(chip);
        fx.record_chip(idx, delta);
        // Crash site: the chip mutated and its delta is captured, but
        // the command has not committed (mid-write, mid-init, mid-rearm).
        self.crash_point();
        out
    }

    fn do_alloc(&self, len: u64) -> Result<Region, RimeError> {
        let start = lock_recover(&self.allocator).alloc(len)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        write_recover(&self.tables).regions.insert(id, (start, len));
        Ok(Region { id, start, len })
    }

    fn do_free(&self, region: Region) -> Result<(), RimeError> {
        let (start, _) = {
            let mut tables = write_recover(&self.tables);
            let extent = tables
                .regions
                .remove(&region.id)
                .ok_or(RimeError::InvalidRegion)?;
            tables.formats.remove(&region.id);
            extent
        };
        write_recover(&self.sessions).remove(&region.id);
        lock_recover(&self.allocator).free(start)
    }

    /// Validates region + bounds, returning the global start slot.
    fn check(&self, region: Region, offset: u64, n: u64) -> Result<u64, RimeError> {
        let tables = read_recover(&self.tables);
        let &(start, len) = tables
            .regions
            .get(&region.id)
            .ok_or(RimeError::InvalidRegion)?;
        if offset + n > len {
            return Err(RimeError::OutOfBounds {
                offset: offset + n,
                len,
            });
        }
        Ok(start + offset)
    }

    fn chip_of(&self, slot: u64) -> (u32, u64) {
        let per_chip = self.config.chip_slots();
        ((slot / per_chip) as u32, slot % per_chip)
    }

    fn do_write(
        &self,
        region: Region,
        offset: u64,
        raw_keys: &[u64],
        format: KeyFormat,
        fx: &mut Effects,
    ) -> Result<(), RimeError> {
        let mut slot = self.check(region, offset, raw_keys.len() as u64)?;
        // Writing invalidates any buffered candidates for this region.
        write_recover(&self.sessions).remove(&region.id);
        let per_chip = self.config.chip_slots();
        let mut idx = 0usize;
        while idx < raw_keys.len() {
            let (chip, local) = self.chip_of(slot);
            let room = (per_chip - local).min((raw_keys.len() - idx) as u64) as usize;
            self.with_chip(chip, fx, |c| {
                c.store_keys(local, &raw_keys[idx..idx + room], format)
            })?;
            idx += room;
            slot += room as u64;
        }
        fx.add_transfers(raw_keys.len() as u64);
        write_recover(&self.tables)
            .formats
            .insert(region.id, format);
        Ok(())
    }

    fn do_read(
        &self,
        region: Region,
        offset: u64,
        n: u64,
        fx: &mut Effects,
    ) -> Result<Vec<u64>, RimeError> {
        let start = self.check(region, offset, n)?;
        let mut out = Vec::with_capacity(n as usize);
        for slot in start..start + n {
            let (chip, local) = self.chip_of(slot);
            out.push(self.with_chip(chip, fx, |c| c.read_key(local))?);
        }
        fx.add_transfers(n);
        Ok(out)
    }

    fn do_init(
        &self,
        region: Region,
        offset: u64,
        len: u64,
        format: KeyFormat,
        fx: &mut Effects,
    ) -> Result<(), RimeError> {
        let begin = self.check(region, offset, len)?;
        if len == 0 {
            return Err(RimeError::OutOfBounds {
                offset,
                len: region.len,
            });
        }
        if let Some(&stored) = read_recover(&self.tables).formats.get(&region.id) {
            if stored != format {
                return Err(RimeError::TypeMismatch {
                    stored: stored.name(),
                    requested: format.name(),
                });
            }
        }
        let end = begin + len;
        let mut queues = HashMap::new();
        let per_chip = self.config.chip_slots();
        let first_chip = (begin / per_chip) as u32;
        let last_chip = ((end - 1) / per_chip) as u32;
        for chip_idx in first_chip..=last_chip {
            let chip_base = chip_idx as u64 * per_chip;
            let local_begin = begin.saturating_sub(chip_base);
            let local_end = (end - chip_base).min(per_chip);
            self.with_chip(chip_idx, fx, |c| {
                c.init_range(local_begin, local_end, format)
            })?;
            queues.insert(chip_idx, VecDeque::new());
        }
        write_recover(&self.sessions).insert(
            region.id,
            Arc::new(Mutex::new(Session {
                direction: None,
                begin,
                end,
                format,
                queues,
            })),
        );
        Ok(())
    }

    /// Looks up the live session for `region`, validating the region
    /// handle first. The returned `Arc` lets the caller lock the session
    /// without holding the sessions-map lock.
    fn session(&self, region: Region) -> Result<Arc<Mutex<Session>>, RimeError> {
        if !read_recover(&self.tables).regions.contains_key(&region.id) {
            return Err(RimeError::InvalidRegion);
        }
        read_recover(&self.sessions)
            .get(&region.id)
            .cloned()
            .ok_or(RimeError::NotInitialized)
    }

    fn chip_local_range(&self, session: &Session, chip_idx: u32) -> (u64, u64, u64) {
        let per_chip = self.config.chip_slots();
        let chip_base = chip_idx as u64 * per_chip;
        let local_begin = session.begin.saturating_sub(chip_base);
        let local_end = (session.end - chip_base).min(per_chip);
        (chip_base, local_begin, local_end)
    }

    /// Applies the requested direction to the session, re-initializing
    /// every spanned chip when it flips mid-stream: the buffered
    /// candidates and exclusion flags encode the old direction.
    fn apply_direction(
        &self,
        session: &mut Session,
        direction: Direction,
        fx: &mut Effects,
    ) -> Result<(), RimeError> {
        if let Some(d) = session.direction {
            if d != direction {
                let mut chip_ids: Vec<u32> = session.queues.keys().copied().collect();
                chip_ids.sort_unstable();
                for chip_idx in chip_ids {
                    let (_, local_begin, local_end) = self.chip_local_range(session, chip_idx);
                    self.with_chip(chip_idx, fx, |c| {
                        c.init_range(local_begin, local_end, session.format)
                    })?;
                }
                for queue in session.queues.values_mut() {
                    queue.clear();
                }
            }
        }
        session.direction = Some(direction);
        Ok(())
    }

    /// Fig. 14: tops up each spanned chip's candidate buffer to `depth`
    /// using the chip's batched extraction, so one command can drain
    /// several results without re-engaging every chip in between.
    ///
    /// Chips are independent devices behind their own locks, so when a
    /// session spans more than one, the per-chip extractions dispatch
    /// concurrently on scoped threads — the executor-level mirror of the
    /// chip's mat fan-out. The merge is deterministic by construction:
    /// per-chip results come back keyed by chip index and are folded in
    /// ascending chip order, so buffered candidates, `Outcome::Hits`,
    /// and the per-chip [`Effects`] deltas the telemetry spine observes
    /// are identical to the serial walk regardless of scheduling. On
    /// failure every chip's partial delta is still recorded (all chips
    /// ran) and the lowest-chip-index error is returned.
    fn prefill_queues(
        &self,
        session: &mut Session,
        direction: Direction,
        depth: usize,
        fx: &mut Effects,
    ) -> Result<(), RimeError> {
        let mut chip_ids: Vec<u32> = session.queues.keys().copied().collect();
        chip_ids.sort_unstable();
        // (chip, need, chip_base, local_begin, local_end) per chip that
        // actually needs a refill, in ascending chip order.
        let mut work: Vec<(u32, usize, u64, u64, u64)> = Vec::new();
        for &chip_idx in &chip_ids {
            let have = session.queues[&chip_idx].len();
            if have >= depth {
                continue;
            }
            let (chip_base, local_begin, local_end) = self.chip_local_range(session, chip_idx);
            work.push((chip_idx, depth - have, chip_base, local_begin, local_end));
        }
        let format = session.format;
        let refill = |&(chip_idx, need, chip_base, begin, end): &(u32, usize, u64, u64, u64)| {
            let mut chip = lock_recover(&self.chips[chip_idx as usize]);
            let before = *chip.counters();
            let res = chip
                .extract_range_batch(begin, end, format, direction, need)
                .map_err(RimeError::from);
            let delta = chip.counters().delta_since(&before);
            drop(chip);
            // Harness hook: a chip "fails" mid-batch *after* doing the
            // work — its partial delta must still reach the journal.
            let res = match self.take_extract_fault(chip_idx) {
                Some(err) => Err(err),
                None => res,
            };
            // Crash site: mid-extraction, possibly on a worker thread.
            self.crash_point();
            (chip_idx, chip_base, delta, res)
        };
        type Refill = (u32, u64, OpCounters, Result<Vec<ExtractHit>, RimeError>);
        let results: Vec<Refill> = if work.len() <= 1 {
            work.iter().map(refill).collect()
        } else {
            std::thread::scope(|scope| {
                let refill = &refill;
                let handles: Vec<_> = work
                    .iter()
                    .map(|item| scope.spawn(move || refill(item)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chip dispatch worker panicked"))
                    .collect()
            })
        };
        let mut first_err = None;
        for (chip_idx, chip_base, delta, res) in results {
            fx.record_chip(chip_idx, delta);
            match res {
                Ok(hits) => {
                    let queue = session.queues.get_mut(&chip_idx).expect("spanned chip");
                    queue.extend(hits.iter().map(|h| (chip_base + h.slot, h.raw_bits)));
                }
                Err(err) => {
                    if first_err.is_none() {
                        first_err = Some(err);
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(err) => Err(err),
        }
    }

    /// CPU-side reduction across the buffered per-chip queue fronts:
    /// pops and returns the global winner, breaking value ties toward
    /// the lower global slot (stable, like the H-tree's priority rule).
    fn pop_winner(session: &mut Session, direction: Direction) -> Option<(u64, u64)> {
        let format = session.format;
        let mut best: Option<(u32, u64, u64)> = None; // (chip, slot, raw)
        for (&chip_idx, queue) in &session.queues {
            if let Some(&(slot, raw)) = queue.front() {
                let better = match best {
                    None => true,
                    Some((_, bslot, braw)) => {
                        let ord = format.compare_bits(raw, braw);
                        match direction {
                            Direction::Min => ord.is_lt() || (ord.is_eq() && slot < bslot),
                            Direction::Max => ord.is_gt() || (ord.is_eq() && slot < bslot),
                        }
                    }
                };
                if better {
                    best = Some((chip_idx, slot, raw));
                }
            }
        }
        best.map(|(chip_idx, slot, raw)| {
            session
                .queues
                .get_mut(&chip_idx)
                .expect("winning chip is spanned")
                .pop_front();
            (slot, raw)
        })
    }

    /// Checks an extraction-family command's requested format against
    /// the session's stored one.
    fn check_format(session: &Session, want_format: KeyFormat) -> Result<(), RimeError> {
        if session.format != want_format {
            return Err(RimeError::TypeMismatch {
                stored: session.format.name(),
                requested: want_format.name(),
            });
        }
        Ok(())
    }

    fn do_extract(
        &self,
        region: Region,
        want_format: KeyFormat,
        direction: Direction,
        fx: &mut Effects,
    ) -> Result<Option<(u64, u64)>, RimeError> {
        let session = self.session(region)?;
        let mut session = lock_recover(&session);
        Self::check_format(&session, want_format)?;
        self.apply_direction(&mut session, direction, fx)?;
        self.prefill_queues(&mut session, direction, 1, fx)?;
        match Self::pop_winner(&mut session, direction) {
            None => Ok(None),
            Some(hit) => {
                fx.add_transfers(1);
                Ok(Some(hit))
            }
        }
    }

    fn do_extract_batch(
        &self,
        region: Region,
        want_format: KeyFormat,
        direction: Direction,
        k: usize,
        fx: &mut Effects,
    ) -> Result<Vec<(u64, u64)>, RimeError> {
        let session = self.session(region)?;
        let mut session = lock_recover(&session);
        Self::check_format(&session, want_format)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        self.apply_direction(&mut session, direction, fx)?;
        self.prefill_queues(&mut session, direction, k, fx)?;
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match Self::pop_winner(&mut session, direction) {
                None => break,
                Some(hit) => {
                    fx.add_transfers(1);
                    out.push(hit);
                }
            }
        }
        Ok(out)
    }

    fn do_fifo_next(
        &self,
        region: Region,
        fx: &mut Effects,
    ) -> Result<Option<(u64, u64)>, RimeError> {
        let session = self.session(region)?;
        let mut session = lock_recover(&session);
        let Some(direction) = session.direction else {
            // Nothing has been extracted yet, so nothing is buffered.
            return Ok(None);
        };
        match Self::pop_winner(&mut session, direction) {
            None => Ok(None),
            Some(hit) => {
                fx.add_transfers(1);
                Ok(Some(hit))
            }
        }
    }

    // ---- Queries (reads of executor/telemetry state, not commands) ----

    /// The device configuration.
    pub fn config(&self) -> &RimeConfig {
        &self.config
    }

    /// Total key-slot capacity.
    pub fn capacity(&self) -> u64 {
        self.config.total_slots()
    }

    /// Aggregated operation counters across all chips, read from the
    /// built-in telemetry stats.
    pub fn counters(&self) -> OpCounters {
        lock_recover(&self.hub).stats.counters()
    }

    /// Per-chip accumulated counters (indexed by chip), read from the
    /// built-in telemetry stats.
    pub fn per_chip_counters(&self) -> Vec<OpCounters> {
        lock_recover(&self.hub).stats.per_chip().to_vec()
    }

    /// Values transferred over the DDR4 interface so far (perf model).
    pub fn interface_transfers(&self) -> u64 {
        lock_recover(&self.hub).stats.interface_transfers()
    }

    /// Resets all chips' counters and the telemetry stats.
    pub fn reset_counters(&self) {
        for chip in &self.chips {
            lock_recover(chip).reset_counters();
        }
        lock_recover(&self.hub).stats.reset();
    }

    /// Modeled array energy of everything done so far (nJ).
    pub fn modeled_energy_nj(&self) -> f64 {
        crate::perf::modeled_energy_nj(
            &self.config.timing,
            lock_recover(&self.hub).stats.per_chip(),
        )
    }

    /// Modeled busy time of the *busiest* chip (ns) — the device-side
    /// critical path when chips operate concurrently (Fig. 14).
    pub fn modeled_busy_ns(&self) -> f64 {
        crate::perf::modeled_busy_ns(
            &self.config.timing,
            lock_recover(&self.hub).stats.per_chip(),
        )
    }

    /// Hottest-block write count across all chips (endurance study).
    pub fn max_wear(&self) -> u32 {
        self.chips
            .iter()
            .map(|c| lock_recover(c).max_wear())
            .max()
            .unwrap_or(0)
    }

    /// Largest free contiguous extent (driver diagnostics).
    pub fn largest_free(&self) -> u64 {
        lock_recover(&self.allocator).largest_free()
    }

    /// Number of chips a region's initialized range spans (the
    /// concurrency the performance model exploits).
    pub fn spanned_chips(&self, region: Region) -> u32 {
        read_recover(&self.sessions)
            .get(&region.id)
            .map_or(0, |s| lock_recover(s).queues.len() as u32)
    }

    /// Sets every chip's mat fan-out policy (model-execution knob; see
    /// [`ParallelPolicy`] — results and counters are unaffected).
    pub fn set_parallel_policy(&self, policy: ParallelPolicy) {
        for chip in &self.chips {
            lock_recover(chip).set_parallel_policy(policy);
        }
    }

    /// The built-in metrics registry. Per-command metrics are always
    /// published here; per-phase chip and pool metrics appear once
    /// [`Executor::enable_extraction_probes`] has run.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.metrics.registry()
    }

    /// A consistent point-in-time snapshot of the built-in registry.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.registry().snapshot()
    }

    /// Installs a registry-backed [`ChipProbe`] on every chip (and, via
    /// the chip, on its mat pool), turning on deep per-phase and pool
    /// instrumentation. Off by default: the probes read the host clock,
    /// so benchmarks leave them uninstalled.
    pub fn enable_extraction_probes(&self) {
        for (idx, chip) in self.chips.iter().enumerate() {
            let probe = ChipProbe::new(self.metrics.registry(), self.config.timing, idx as u32);
            lock_recover(chip).set_probe(Some(Arc::new(probe)));
        }
    }

    /// Cumulative per-mat write counts, indexed `[chip][mat]` — the raw
    /// matrix behind wear heatmaps (absent mats report zero).
    pub fn wear_matrix(&self) -> Vec<Vec<u64>> {
        self.chips
            .iter()
            .map(|c| lock_recover(c).wear_by_mat())
            .collect()
    }

    // ---- Durability (write-ahead journal + recovery) ----

    /// Attaches a write-ahead journal: every subsequent command is
    /// logged intent-first, outcome-after, with periodic checkpoints.
    /// An initial checkpoint of the *current* state is written
    /// immediately, so the journal alone reconstructs the device even
    /// when commands ran before attach. Call while quiescent (no
    /// concurrent `execute` in flight).
    pub fn attach_journal(
        &self,
        store: Box<dyn JournalStore>,
        config: JournalConfig,
    ) -> Result<(), RimeError> {
        let mut guard = lock_recover(&self.journal);
        let mut journal = Journal::new(store, config)?;
        journal.record_checkpoint(&self.checkpoint_bytes())?;
        *guard = Some(journal);
        Ok(())
    }

    /// Detaches the journal (no further records are written). Returns
    /// whether one was attached.
    pub fn detach_journal(&self) -> bool {
        lock_recover(&self.journal).take().is_some()
    }

    /// Commands committed to the attached journal, or `None` without
    /// one.
    pub fn journal_committed(&self) -> Option<u64> {
        lock_recover(&self.journal).as_ref().map(Journal::committed)
    }

    /// Forces a checkpoint now. `Ok(true)` when one was written,
    /// `Ok(false)` when no journal is attached.
    pub fn checkpoint_now(&self) -> Result<bool, RimeError> {
        let mut guard = lock_recover(&self.journal);
        match guard.as_mut() {
            None => Ok(false),
            Some(journal) => {
                let state = self.checkpoint_bytes();
                journal.record_checkpoint(&state)?;
                Ok(true)
            }
        }
    }

    /// Per-chip raw snapshots (the crash harness's bit-identity
    /// fingerprint; also what checkpoints marshal).
    pub fn chip_states(&self) -> Vec<ChipState> {
        self.chips.iter().map(|c| lock_recover(c).state()).collect()
    }

    /// The driver allocation map as `(reserved_slots, sorted live
    /// (start, len) extents)` — canonical, so two bit-identical devices
    /// compare equal.
    pub fn allocation_map(&self) -> (u64, Vec<(u64, u64)>) {
        let allocator = lock_recover(&self.allocator);
        (allocator.reserved_slots(), allocator.live_allocations())
    }

    /// Live region handles, sorted by id. `Region` is otherwise only
    /// obtainable from `Alloc`, so this is how a process that recovered
    /// a device from a journal rehydrates its handles and resumes.
    pub fn regions(&self) -> Vec<Region> {
        let tables = read_recover(&self.tables);
        let mut regions: Vec<Region> = tables
            .regions
            .iter()
            .map(|(&id, &(start, len))| Region { id, start, len })
            .collect();
        regions.sort_by_key(|r| r.id);
        regions
    }

    /// Marshals the full executor state into a checkpoint blob:
    /// configuration fingerprint, telemetry seq + stats, driver
    /// allocator, region/format tables, sessions (with buffered
    /// candidates), and every chip's raw snapshot. All map-backed state
    /// is serialized in sorted key order, so equal devices produce
    /// byte-equal checkpoints.
    fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        journal::put_u32(&mut buf, self.chips.len() as u32);
        journal::put_u64(&mut buf, self.config.chip_slots());
        journal::put_u64(&mut buf, self.next_id.load(Ordering::SeqCst));
        {
            let hub = lock_recover(&self.hub);
            journal::put_u64(&mut buf, hub.seq);
            for counters in hub.stats.per_chip() {
                journal::put_counters(&mut buf, counters);
            }
            journal::put_u64(&mut buf, hub.stats.interface_transfers());
        }
        {
            let allocator = lock_recover(&self.allocator);
            journal::put_u64(&mut buf, allocator.total_slots());
            journal::put_u64(&mut buf, allocator.reserved_slots());
            let free = allocator.free_extents();
            journal::put_u32(&mut buf, free.len() as u32);
            for &(start, len) in free {
                journal::put_u64(&mut buf, start);
                journal::put_u64(&mut buf, len);
            }
            let live = allocator.live_allocations();
            journal::put_u32(&mut buf, live.len() as u32);
            for (start, len) in live {
                journal::put_u64(&mut buf, start);
                journal::put_u64(&mut buf, len);
            }
        }
        {
            let tables = read_recover(&self.tables);
            let mut regions: Vec<(u64, u64, u64)> = tables
                .regions
                .iter()
                .map(|(&id, &(start, len))| (id, start, len))
                .collect();
            regions.sort_unstable();
            journal::put_u32(&mut buf, regions.len() as u32);
            for (id, start, len) in regions {
                journal::put_u64(&mut buf, id);
                journal::put_u64(&mut buf, start);
                journal::put_u64(&mut buf, len);
            }
            let mut formats: Vec<(u64, KeyFormat)> =
                tables.formats.iter().map(|(&id, &f)| (id, f)).collect();
            formats.sort_unstable_by_key(|&(id, _)| id);
            journal::put_u32(&mut buf, formats.len() as u32);
            for (id, format) in formats {
                journal::put_u64(&mut buf, id);
                journal::put_format(&mut buf, format);
            }
        }
        {
            let sessions = read_recover(&self.sessions);
            let mut ids: Vec<u64> = sessions.keys().copied().collect();
            ids.sort_unstable();
            journal::put_u32(&mut buf, ids.len() as u32);
            for id in ids {
                let session = lock_recover(&sessions[&id]);
                journal::put_u64(&mut buf, id);
                journal::put_u8(
                    &mut buf,
                    match session.direction {
                        None => 0,
                        Some(Direction::Min) => 1,
                        Some(Direction::Max) => 2,
                    },
                );
                journal::put_u64(&mut buf, session.begin);
                journal::put_u64(&mut buf, session.end);
                journal::put_format(&mut buf, session.format);
                let mut chips: Vec<u32> = session.queues.keys().copied().collect();
                chips.sort_unstable();
                journal::put_u32(&mut buf, chips.len() as u32);
                for chip in chips {
                    journal::put_u32(&mut buf, chip);
                    let queue = &session.queues[&chip];
                    journal::put_u32(&mut buf, queue.len() as u32);
                    for &(slot, raw) in queue {
                        journal::put_u64(&mut buf, slot);
                        journal::put_u64(&mut buf, raw);
                    }
                }
            }
        }
        for chip in &self.chips {
            journal::put_chip_state(&mut buf, &lock_recover(chip).state());
        }
        buf
    }

    /// Rebuilds an executor from a checkpoint blob, validating the
    /// configuration fingerprint against `config` first.
    fn from_checkpoint(config: RimeConfig, bytes: &[u8]) -> Result<Executor, JournalError> {
        let mut d = journal::Dec::new(bytes);
        let chip_count = d.u32()? as usize;
        if chip_count != config.total_chips() as usize {
            return Err(JournalError::CheckpointMismatch {
                what: format!(
                    "checkpoint has {chip_count} chips, device has {}",
                    config.total_chips()
                ),
            });
        }
        let chip_slots = d.u64()?;
        if chip_slots != config.chip_slots() {
            return Err(JournalError::CheckpointMismatch {
                what: format!(
                    "checkpoint chips hold {chip_slots} slots, configured chips hold {}",
                    config.chip_slots()
                ),
            });
        }
        let next_id = d.u64()?;
        let seq = d.u64()?;
        let per_chip: Vec<OpCounters> = (0..chip_count)
            .map(|_| journal::get_counters(&mut d))
            .collect::<Result<_, _>>()?;
        let transfers = d.u64()?;
        let total_slots = d.u64()?;
        if total_slots != config.total_slots() {
            return Err(JournalError::CheckpointMismatch {
                what: format!(
                    "checkpoint spans {total_slots} slots, device spans {}",
                    config.total_slots()
                ),
            });
        }
        let reserved_slots = d.u64()?;
        let nfree = d.len_prefix(16)?;
        let free: Vec<(u64, u64)> = (0..nfree)
            .map(|_| Ok((d.u64()?, d.u64()?)))
            .collect::<Result<_, JournalError>>()?;
        let nlive = d.len_prefix(16)?;
        let live: Vec<(u64, u64)> = (0..nlive)
            .map(|_| Ok((d.u64()?, d.u64()?)))
            .collect::<Result<_, JournalError>>()?;
        let allocator =
            ContiguousAllocator::from_parts(config.driver, total_slots, reserved_slots, free, live);
        let mut tables = Tables::default();
        let nregions = d.len_prefix(24)?;
        for _ in 0..nregions {
            let id = d.u64()?;
            let start = d.u64()?;
            let len = d.u64()?;
            tables.regions.insert(id, (start, len));
        }
        let nformats = d.len_prefix(8)?;
        for _ in 0..nformats {
            let id = d.u64()?;
            tables.formats.insert(id, journal::get_format(&mut d)?);
        }
        let mut sessions = HashMap::new();
        let nsessions = d.len_prefix(1)?;
        for _ in 0..nsessions {
            let id = d.u64()?;
            let direction = match d.u8()? {
                0 => None,
                1 => Some(Direction::Min),
                2 => Some(Direction::Max),
                tag => {
                    return Err(JournalError::Decode {
                        what: format!("invalid direction tag {tag}"),
                    })
                }
            };
            let begin = d.u64()?;
            let end = d.u64()?;
            let format = journal::get_format(&mut d)?;
            let mut queues = HashMap::new();
            let nqueues = d.len_prefix(4)?;
            for _ in 0..nqueues {
                let chip = d.u32()?;
                let qlen = d.len_prefix(16)?;
                let mut queue = VecDeque::with_capacity(qlen);
                for _ in 0..qlen {
                    queue.push_back((d.u64()?, d.u64()?));
                }
                queues.insert(chip, queue);
            }
            sessions.insert(
                id,
                Arc::new(Mutex::new(Session {
                    direction,
                    begin,
                    end,
                    format,
                    queues,
                })),
            );
        }
        let mut chips = Vec::with_capacity(chip_count);
        for idx in 0..chip_count {
            let state = journal::get_chip_state(&mut d)?;
            let mut chip = Chip::new(config.chip_geometry);
            if !chip.restore_state(&state) {
                return Err(JournalError::CheckpointMismatch {
                    what: format!("chip {idx} snapshot does not fit the configured geometry"),
                });
            }
            chips.push(Mutex::new(chip));
        }
        d.finish("checkpoint")?;
        Ok(Executor {
            chips,
            allocator: Mutex::new(allocator),
            tables: RwLock::new(tables),
            sessions: RwLock::new(sessions),
            next_id: AtomicU64::new(next_id),
            hub: Mutex::new(Hub {
                seq,
                stats: DeviceStats::restore(per_chip, transfers),
                sinks: Vec::new(),
            }),
            metrics: MetricsSink::new(MetricsRegistry::new(), config.timing),
            journal: Mutex::new(None),
            replaying: AtomicBool::new(false),
            #[cfg(feature = "crash-test")]
            crash: Mutex::new(None),
            #[cfg(feature = "crash-test")]
            extract_faults: Mutex::new(Vec::new()),
            config,
        })
    }

    /// Reconstructs a bit-identical executor from a journal: loads the
    /// newest checkpoint, re-executes the committed tail (demanding
    /// recorded results and effects match exactly — any divergence is a
    /// typed refusal, not a silently different device), truncates a
    /// torn final record, and re-attaches the journal so execution can
    /// resume where the crash left off.
    ///
    /// Recovery is *detectable*: the [`RecoveryReport`] says how much
    /// was replayed, whether a command's intent was left without an
    /// outcome (that command did **not** commit and is not re-run — the
    /// caller decides whether to resubmit), and whether the tail was
    /// torn.
    pub fn recover(
        config: RimeConfig,
        store: Box<dyn JournalStore>,
        journal_config: JournalConfig,
    ) -> Result<(Executor, RecoveryReport), RimeError> {
        let bytes = store.read_all().map_err(RimeError::from)?;
        if bytes.is_empty() {
            // Never journaled: bring up fresh and start a log.
            let executor = Executor::new(config);
            executor.attach_journal(store, journal_config)?;
            let report = RecoveryReport {
                committed: 0,
                replayed: 0,
                interrupted: None,
                torn_tail: false,
                from_checkpoint: false,
            };
            return Ok((executor, report));
        }
        let scanned = journal::scan(&bytes).map_err(RimeError::from)?;
        let mut base = 0u64;
        let mut checkpoint: Option<(usize, &[u8])> = None;
        for (idx, (_, record)) in scanned.records.iter().enumerate() {
            if let JournalRecord::Checkpoint { committed, state } = record {
                base = *committed;
                checkpoint = Some((idx, state));
            }
        }
        let executor = match checkpoint {
            Some((_, state)) => Executor::from_checkpoint(config, state)?,
            None => Executor::new(config),
        };
        // Pair intents with outcomes past the newest checkpoint. A
        // repeated intent for the same ordinal is the resume of a
        // command whose first attempt crashed mid-dispatch.
        let start = checkpoint.map_or(0, |(idx, _)| idx + 1);
        let mut pending: Option<(u64, Command<'static>)> = None;
        let mut tail: Vec<(u64, Command<'static>, Result<Outcome, RimeError>, Effects)> =
            Vec::new();
        for (_, record) in &scanned.records[start..] {
            match record {
                JournalRecord::Intent { ordinal, command } => {
                    pending = Some((*ordinal, command.clone()));
                }
                JournalRecord::Outcome {
                    ordinal,
                    result,
                    effects,
                } => match pending.take() {
                    Some((intent_ordinal, command)) if intent_ordinal == *ordinal => {
                        tail.push((*ordinal, command, result.clone(), effects.clone()));
                    }
                    _ => {
                        return Err(RimeError::Journal(JournalError::Decode {
                            what: format!(
                                "outcome for ordinal {ordinal} without a matching intent"
                            ),
                        }))
                    }
                },
                JournalRecord::Checkpoint { .. } => {
                    // Unreachable by construction (we started past the
                    // newest checkpoint), but harmless.
                }
            }
        }
        let replayed = tail.len() as u64;
        executor.replaying.store(true, Ordering::SeqCst);
        for (ordinal, command, recorded_result, recorded_effects) in &tail {
            let (result, effects) = executor.run(command);
            if result != *recorded_result || effects != *recorded_effects {
                executor.replaying.store(false, Ordering::SeqCst);
                return Err(RimeError::Journal(JournalError::ReplayDivergence {
                    ordinal: *ordinal,
                }));
            }
        }
        executor.replaying.store(false, Ordering::SeqCst);
        let interrupted = pending.map(|(ordinal, _)| ordinal);
        if scanned.torn_tail {
            store.truncate(scanned.valid_len).map_err(RimeError::from)?;
        }
        let committed = base + replayed;
        let mut journal = Journal::new(store, journal_config).map_err(RimeError::from)?;
        journal.set_committed(committed);
        *lock_recover(&executor.journal) = Some(journal);
        let report = RecoveryReport {
            committed,
            replayed,
            interrupted,
            torn_tail: scanned.torn_tail,
            from_checkpoint: checkpoint.is_some(),
        };
        Ok((executor, report))
    }

    /// Installs (or clears) the crash-site fault injector.
    #[cfg(feature = "crash-test")]
    pub fn install_crash_point(&self, point: Option<Arc<CrashPoint>>) {
        *lock_recover(&self.crash) = point;
    }

    /// Queues a one-shot error for `chip`'s next batched extraction —
    /// the chip does its work (and its counter delta is recorded) but
    /// the result is replaced by `error`, modeling a chip failing
    /// mid-`ExtractBatch`.
    #[cfg(feature = "crash-test")]
    pub fn inject_extract_fault(&self, chip: u32, error: RimeError) {
        lock_recover(&self.extract_faults).push((chip, error));
    }

    #[cfg(feature = "crash-test")]
    fn take_extract_fault(&self, chip: u32) -> Option<RimeError> {
        let mut faults = lock_recover(&self.extract_faults);
        let pos = faults.iter().position(|&(c, _)| c == chip)?;
        Some(faults.remove(pos).1)
    }

    #[cfg(not(feature = "crash-test"))]
    #[inline(always)]
    fn take_extract_fault(&self, _chip: u32) -> Option<RimeError> {
        None
    }

    /// Registers passage through one crash site with the installed
    /// injector. With the `crash-test` feature off this is an empty
    /// inline no-op (the `ExtractionProbe` pattern).
    #[cfg(feature = "crash-test")]
    fn crash_point(&self) {
        let point = lock_recover(&self.crash).clone();
        if let Some(point) = point {
            point.hit();
        }
    }

    #[cfg(not(feature = "crash-test"))]
    #[inline(always)]
    fn crash_point(&self) {}

    #[cfg(test)]
    fn poison_chip(&self, idx: usize) {
        let chips = &self.chips;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock_recover(&chips[idx]);
            panic!("poison chip {idx} for test");
        }));
        assert!(result.is_err());
        assert!(chips[idx].is_poisoned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::new(RimeConfig::small())
    }

    fn region_of(outcome: Outcome) -> Region {
        match outcome {
            Outcome::Region(r) => r,
            other => panic!("expected Region, got {other:?}"),
        }
    }

    #[test]
    fn command_roundtrip_through_executor() {
        let exec = exec();
        let r = region_of(exec.execute(Command::Alloc { len: 4 }).unwrap());
        assert_eq!(
            exec.execute(Command::Write {
                region: r,
                offset: 0,
                raw: Cow::Borrowed(&[9, 2, 7, 5]),
                format: KeyFormat::UNSIGNED64,
            })
            .unwrap(),
            Outcome::Done
        );
        assert_eq!(
            exec.execute(Command::Read {
                region: r,
                offset: 1,
                n: 2
            })
            .unwrap(),
            Outcome::Keys(vec![2, 7])
        );
        exec.execute(Command::Init {
            region: r,
            offset: 0,
            len: 4,
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        assert_eq!(
            exec.execute(Command::Extract {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
            })
            .unwrap(),
            Outcome::Hit(Some((1, 2)))
        );
        assert_eq!(
            exec.execute(Command::ExtractBatch {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
                k: 8,
            })
            .unwrap(),
            Outcome::Hits(vec![(3, 5), (2, 7), (0, 9)])
        );
        assert_eq!(
            exec.execute(Command::Free { region: r }).unwrap(),
            Outcome::Done
        );
        assert_eq!(
            exec.execute(Command::FifoNext { region: r }),
            Err(RimeError::InvalidRegion)
        );
    }

    #[test]
    fn fifo_next_drains_buffers_without_prefill() {
        let exec = exec();
        // Span two chips: chip 0 holds values n-1..=4, chip 1 holds 3..=0.
        let per_chip = exec.config().chip_slots();
        let n = per_chip + 4;
        let r = region_of(exec.execute(Command::Alloc { len: n }).unwrap());
        let keys: Vec<u64> = (0..n).rev().collect();
        exec.execute(Command::Write {
            region: r,
            offset: 0,
            raw: Cow::Borrowed(&keys),
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        exec.execute(Command::Init {
            region: r,
            offset: 0,
            len: n,
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        // Before any extraction, the buffers are empty: FifoNext is a
        // miss, not an error — and not a chip engagement.
        let before = exec.counters();
        assert_eq!(
            exec.execute(Command::FifoNext { region: r }).unwrap(),
            Outcome::Hit(None)
        );
        assert_eq!(exec.counters(), before, "no chip work on a dry drain");
        // A batch of 3 prefills each spanned chip's queue to depth 3 and
        // pops the 3 global winners (0, 1, 2 — all on chip 1); chip 0's
        // three candidates (4, 5, 6) stay buffered and drain via
        // FifoNext in order, without re-engaging any chip.
        let hits = match exec
            .execute(Command::ExtractBatch {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
                k: 3,
            })
            .unwrap()
        {
            Outcome::Hits(h) => h,
            other => panic!("{other:?}"),
        };
        assert_eq!(hits.iter().map(|&(_, v)| v).collect::<Vec<_>>(), [0, 1, 2]);
        let mut drained = Vec::new();
        while let Outcome::Hit(Some((_, v))) =
            exec.execute(Command::FifoNext { region: r }).unwrap()
        {
            drained.push(v);
        }
        assert_eq!(drained, [4, 5, 6], "leftover candidates stay buffered");
        // The drain consumed buffers only — it is *not* exhaustion:
        // Extract re-engages the chips and finds value 3 on chip 1.
        let next = exec
            .execute(Command::Extract {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
            })
            .unwrap();
        assert_eq!(next, Outcome::Hit(Some((n - 4, 3))));
    }

    #[test]
    fn poisoned_chip_lock_recovers_instead_of_cascading() {
        let exec = exec();
        let r = region_of(exec.execute(Command::Alloc { len: 4 }).unwrap());
        exec.execute(Command::Write {
            region: r,
            offset: 0,
            raw: Cow::Borrowed(&[4, 3, 2, 1]),
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        // Poison the chip that holds the region, then keep using it.
        exec.poison_chip(0);
        assert_eq!(exec.counters().row_writes, 4, "counters() recovers");
        exec.execute(Command::Init {
            region: r,
            offset: 0,
            len: 4,
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        assert_eq!(
            exec.execute(Command::Extract {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
            })
            .unwrap(),
            Outcome::Hit(Some((3, 1)))
        );
        exec.reset_counters();
        assert_eq!(exec.counters(), OpCounters::default());
    }

    #[test]
    fn multi_chip_dispatch_is_deterministic_and_ordered() {
        use crate::driver::DriverConfig;
        use crate::telemetry::{Telemetry, TelemetryEvent};
        use rime_memristive::{ArrayTiming, ChipGeometry};

        // Records, per event, the chip order of the published deltas:
        // concurrent chip dispatch must still fold them in ascending
        // chip order (the deterministic merge).
        struct OrderSink(Arc<Mutex<Vec<Vec<u32>>>>);
        impl Telemetry for OrderSink {
            fn record(&mut self, event: &TelemetryEvent<'_>) {
                let order = event
                    .effects
                    .chip_deltas()
                    .iter()
                    .map(|&(c, _)| c)
                    .collect();
                lock_recover(&self.0).push(order);
            }
        }

        let config = RimeConfig {
            channels: 2,
            chips_per_channel: 2,
            chip_geometry: ChipGeometry::tiny(),
            timing: ArrayTiming::table1(),
            driver: DriverConfig::default(),
        };
        let total = config.total_slots();
        let keys: Vec<u64> = (0..total).map(|i| (i * 2654435761) % 1009).collect();
        let mut want: Vec<(u64, u64)> = keys
            .iter()
            .copied()
            .enumerate()
            .map(|(s, v)| (s as u64, v))
            .collect();
        want.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(40);

        type RunSnapshot = (Vec<(u64, u64)>, Vec<OpCounters>);
        let mut reference: Option<RunSnapshot> = None;
        for _ in 0..2 {
            let exec = Executor::new(config);
            let orders = Arc::new(Mutex::new(Vec::new()));
            exec.attach_sink(Arc::new(Mutex::new(OrderSink(Arc::clone(&orders)))));
            let r = region_of(exec.execute(Command::Alloc { len: total }).unwrap());
            exec.execute(Command::Write {
                region: r,
                offset: 0,
                raw: Cow::Borrowed(&keys),
                format: KeyFormat::UNSIGNED64,
            })
            .unwrap();
            exec.execute(Command::Init {
                region: r,
                offset: 0,
                len: total,
                format: KeyFormat::UNSIGNED64,
            })
            .unwrap();
            let hits = match exec
                .execute(Command::ExtractBatch {
                    region: r,
                    format: KeyFormat::UNSIGNED64,
                    direction: Direction::Min,
                    k: 40,
                })
                .unwrap()
            {
                Outcome::Hits(h) => h,
                other => panic!("{other:?}"),
            };
            assert_eq!(hits, want, "global top-40 across four chips");
            for order in lock_recover(&orders).iter() {
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(order, &sorted, "deltas folded in chip order");
            }
            match &reference {
                None => reference = Some((hits, exec.per_chip_counters())),
                Some((want_hits, want_counters)) => {
                    assert_eq!(&hits, want_hits, "run-to-run hit determinism");
                    assert_eq!(
                        &exec.per_chip_counters(),
                        want_counters,
                        "run-to-run counter determinism"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_match_chip_counters_exactly() {
        // The telemetry stats are fed from per-command deltas; they must
        // agree bit-for-bit with summing the chips directly.
        let exec = exec();
        let r = region_of(exec.execute(Command::Alloc { len: 100 }).unwrap());
        let keys: Vec<u64> = (0..100).map(|i| (i * 37) % 251).collect();
        exec.execute(Command::Write {
            region: r,
            offset: 0,
            raw: Cow::Borrowed(&keys),
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        exec.execute(Command::Init {
            region: r,
            offset: 0,
            len: 100,
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        for _ in 0..5 {
            exec.execute(Command::ExtractBatch {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
                k: 7,
            })
            .unwrap();
        }
        let mut direct = OpCounters::new();
        for chip in &exec.chips {
            direct += *lock_recover(chip).counters();
        }
        assert_eq!(exec.counters(), direct);
        let per_chip = exec.per_chip_counters();
        for (idx, chip) in exec.chips.iter().enumerate() {
            assert_eq!(per_chip[idx], *lock_recover(chip).counters(), "chip {idx}");
        }
    }

    // ---- Journal + recovery ----

    use crate::journal::MemJournalStore;
    use crate::metrics::MetricValue;

    fn journaled_exec(checkpoint_every: u64) -> (Executor, MemJournalStore) {
        let exec = exec();
        let store = MemJournalStore::new();
        exec.attach_journal(Box::new(store.clone()), JournalConfig { checkpoint_every })
            .unwrap();
        (exec, store)
    }

    /// Alloc + write + init + a batched extraction: touches the
    /// allocator, tables, sessions (with leftover buffered candidates),
    /// and every chip the region spans.
    fn run_workload(exec: &Executor) -> Region {
        let r = region_of(exec.execute(Command::Alloc { len: 4 }).unwrap());
        exec.execute(Command::Write {
            region: r,
            offset: 0,
            raw: Cow::Borrowed(&[9, 2, 7, 5]),
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        exec.execute(Command::Init {
            region: r,
            offset: 0,
            len: 4,
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        exec.execute(Command::ExtractBatch {
            region: r,
            format: KeyFormat::UNSIGNED64,
            direction: Direction::Min,
            k: 2,
        })
        .unwrap();
        r
    }

    /// Everything "bit-identical" means: raw chip snapshots, the
    /// allocation map, and the full telemetry ledger.
    #[allow(clippy::type_complexity)]
    fn fingerprint(
        exec: &Executor,
    ) -> (
        Vec<ChipState>,
        (u64, Vec<(u64, u64)>),
        OpCounters,
        Vec<OpCounters>,
        u64,
    ) {
        (
            exec.chip_states(),
            exec.allocation_map(),
            exec.counters(),
            exec.per_chip_counters(),
            exec.interface_transfers(),
        )
    }

    #[test]
    fn recovery_rebuilds_a_bit_identical_device() {
        // checkpoint_every=3 puts a checkpoint mid-stream, so recovery
        // exercises both the checkpoint load and a journal-tail replay.
        let (exec, store) = journaled_exec(3);
        let r = run_workload(&exec);
        let want = fingerprint(&exec);
        let committed = exec.journal_committed().unwrap();
        drop(exec); // the "crash": the process is simply gone
        let (rec, report) = Executor::recover(
            RimeConfig::small(),
            Box::new(store),
            JournalConfig {
                checkpoint_every: 3,
            },
        )
        .unwrap();
        assert_eq!(report.committed, committed);
        assert!(report.from_checkpoint);
        assert!(report.replayed >= 1, "the tail past the checkpoint re-ran");
        assert_eq!(report.interrupted, None);
        assert!(!report.torn_tail);
        assert_eq!(fingerprint(&rec), want, "recovery is bit-identical");
        // Replayed commands are flagged, not silently recounted: the
        // nondeterministic `rime_replayed_commands_total` carries them,
        // and masking zeroes it so masked snapshots stay deterministic.
        let snap = rec.metrics().snapshot();
        let replayed = snap
            .metrics
            .iter()
            .find(|m| m.name == "rime_replayed_commands_total")
            .expect("replay counter registered");
        assert!(replayed.nondeterministic);
        assert_eq!(replayed.value, MetricValue::Counter(report.replayed));
        let masked = snap.masked();
        let masked_replayed = masked
            .metrics
            .iter()
            .find(|m| m.name == "rime_replayed_commands_total")
            .unwrap();
        assert_eq!(masked_replayed.value, MetricValue::Counter(0));
        // The device keeps working and the journal keeps counting.
        assert_eq!(
            rec.execute(Command::Extract {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
            })
            .unwrap(),
            Outcome::Hit(Some((2, 7)))
        );
        assert_eq!(rec.journal_committed(), Some(committed + 1));
    }

    #[test]
    fn an_unmatched_intent_is_reported_not_replayed() {
        // An intent without an outcome is a command that never
        // committed: recovery must not guess at it.
        let store = MemJournalStore::new();
        let mut journal = Journal::new(Box::new(store.clone()), JournalConfig::default()).unwrap();
        journal
            .record_intent(0, &Command::Alloc { len: 2 })
            .unwrap();
        drop(journal);
        let (rec, report) = Executor::recover(
            RimeConfig::small(),
            Box::new(store),
            JournalConfig::default(),
        )
        .unwrap();
        assert_eq!(
            report,
            RecoveryReport {
                committed: 0,
                replayed: 0,
                interrupted: Some(0),
                torn_tail: false,
                from_checkpoint: false,
            }
        );
        assert_eq!(
            rec.allocation_map().1,
            Vec::new(),
            "in-doubt command not applied"
        );
        // The caller resubmits; it commits at the same ordinal.
        region_of(rec.execute(Command::Alloc { len: 2 }).unwrap());
        assert_eq!(rec.journal_committed(), Some(1));
    }

    #[test]
    fn divergent_replay_is_refused() {
        // Doctor an outcome record so the log claims a result the
        // device cannot reproduce — recovery must refuse, not hand back
        // a silently different device.
        let store = MemJournalStore::new();
        let mut journal = Journal::new(Box::new(store.clone()), JournalConfig::default()).unwrap();
        journal
            .record_intent(0, &Command::Alloc { len: 4 })
            .unwrap();
        let wrong = Ok(Outcome::Region(Region {
            id: 7,
            start: 512,
            len: 4,
        }));
        journal
            .record_outcome(0, &wrong, &Effects::default())
            .unwrap();
        drop(journal);
        let err = Executor::recover(
            RimeConfig::small(),
            Box::new(store),
            JournalConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RimeError::Journal(JournalError::ReplayDivergence { ordinal: 0 })
        );
    }

    #[test]
    fn checkpoint_for_a_different_device_is_refused() {
        let (exec, store) = journaled_exec(32);
        run_workload(&exec);
        let mut other = RimeConfig::small();
        other.chips_per_channel = 1;
        let err = Executor::recover(other, Box::new(store), JournalConfig::default()).unwrap_err();
        assert!(
            matches!(
                err,
                RimeError::Journal(JournalError::CheckpointMismatch { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn a_torn_tail_is_amputated_and_the_command_resubmitted() {
        let (exec, store) = journaled_exec(32);
        let r = run_workload(&exec);
        let want = fingerprint(&exec);
        drop(exec);
        // Tear the final outcome record (the batch extraction), as a
        // crash mid-append would.
        let bytes = store.snapshot();
        let torn = MemJournalStore::from_bytes(bytes[..bytes.len() - 3].to_vec());
        let (rec, report) = Executor::recover(
            RimeConfig::small(),
            Box::new(torn.clone()),
            JournalConfig::default(),
        )
        .unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.interrupted, Some(3), "the batch never committed");
        assert_eq!(report.committed, 3);
        // The torn record was truncated away: the log scans clean.
        let rescanned = journal::scan(&torn.snapshot()).unwrap();
        assert!(!rescanned.torn_tail);
        // Resubmitting the in-doubt command converges on the uncrashed
        // device, bit for bit.
        assert_eq!(
            rec.execute(Command::ExtractBatch {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
                k: 2,
            })
            .unwrap(),
            Outcome::Hits(vec![(1, 2), (3, 5)])
        );
        assert_eq!(fingerprint(&rec), want);
    }

    #[test]
    fn recovery_of_an_empty_store_is_a_fresh_start() {
        let (rec, report) = Executor::recover(
            RimeConfig::small(),
            Box::new(MemJournalStore::new()),
            JournalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.committed, 0);
        assert_eq!(report.replayed, 0);
        assert!(!report.from_checkpoint);
        assert_eq!(
            rec.journal_committed(),
            Some(0),
            "journaling starts at once"
        );
        run_workload(&rec);
        assert_eq!(rec.journal_committed(), Some(4));
    }

    #[test]
    fn checkpoints_detach_and_forced_cadence_work() {
        let exec = exec();
        assert_eq!(exec.journal_committed(), None);
        assert!(!exec.checkpoint_now().unwrap(), "no journal, no checkpoint");
        assert!(!exec.detach_journal());
        let store = MemJournalStore::new();
        exec.attach_journal(Box::new(store.clone()), JournalConfig::default())
            .unwrap();
        assert_eq!(exec.journal_committed(), Some(0));
        assert!(exec.checkpoint_now().unwrap());
        let scanned = journal::scan(&store.snapshot()).unwrap();
        let checkpoints = scanned
            .records
            .iter()
            .filter(|(_, r)| matches!(r, JournalRecord::Checkpoint { .. }))
            .count();
        assert_eq!(checkpoints, 2, "attach + forced");
        assert!(exec.detach_journal());
        assert!(!exec.detach_journal());
        assert_eq!(exec.journal_committed(), None);
    }
}
