//! Metrics registry and span tracing over the telemetry spine.
//!
//! The registry holds three metric families — monotonic [`Counter`]s,
//! [`Gauge`]s, and fixed-log2-bucket [`Histogram`]s — keyed by
//! `(name, sorted labels)` in a `BTreeMap`, so a [`Snapshot`] always
//! lists metrics in one canonical order. Handles returned by the
//! registration calls are `Arc`-wrapped atomics: after the first
//! registration of a key, updates are lock-free, which is what lets the
//! chip/pool hot paths record into the registry without contending with
//! snapshot readers.
//!
//! # Determinism contract
//!
//! Every metric is either *modeled* (derived from the bit-accurate
//! simulation: op counts, step counts, modeled nanoseconds, shard sizes)
//! or *wall-clock* (host timing, flagged `nondeterministic`). For a fixed
//! workload and a pinned [`rime_memristive::ParallelPolicy`], two runs
//! produce byte-identical [`Snapshot::masked`] exports: masking zeroes
//! the nondeterministic metrics and the canonical key order fixes the
//! rest. Wall-clock metrics are quarantined this way so differential
//! oracles can keep asserting bit-equality while humans still get real
//! latency distributions. The log2 bucket layout is fixed (powers of
//! two), never adapted to observed data, so histogram *shape* can never
//! differ between runs either.
//!
//! # Example
//!
//! ```
//! use rime_core::metrics::MetricsRegistry;
//! use rime_core::span;
//!
//! let registry = MetricsRegistry::new();
//! let steps = registry.counter("steps_total", &[("chip", "0")], "column-search steps");
//! steps.add(64);
//! {
//!     // Records wall time into `extract_wall_ns{chip="0"}` on drop.
//!     let _span = span!(registry, "extract", chip = 0);
//! }
//! let snap = registry.snapshot();
//! assert!(snap.to_prometheus().contains("steps_total{chip=\"0\"} 64"));
//! // Wall-clock metrics vanish under masking; modeled ones survive.
//! assert!(snap.masked().to_json(false).contains("\"steps_total\""));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use rime_memristive::probe::{ExtractionProbe, Phase};
use rime_memristive::{ArrayTiming, OpCounters};

use crate::error::RimeError;
use crate::telemetry::{Telemetry, TelemetryEvent};

/// Number of histogram buckets: bucket `i < 63` counts observations in
/// `(2^(i-1), 2^i]` (bucket 0 also takes 0), bucket 63 is the overflow
/// (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A monotonically increasing counter handle (lock-free updates).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways (lock-free updates).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A histogram handle with fixed log2 buckets (lock-free updates).
///
/// The bucket layout never adapts to the data, so two runs observing the
/// same modeled values produce bit-identical snapshots.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    nondeterministic: bool,
    handle: Handle,
}

type MetricKey = (String, Vec<(String, String)>);

/// The lock-cheap metrics registry: registration takes a short lock, but
/// the returned handles update atomically with no lock at all. Cloning
/// the registry clones a shared reference (`Arc`), not the metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<BTreeMap<MetricKey, Entry>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        nondeterministic: bool,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        sorted.sort();
        let key = (name.to_string(), sorted);
        {
            let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(entry) = map.get(&key) {
                return entry.handle.clone();
            }
        }
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        map.entry(key)
            .or_insert_with(|| Entry {
                help: help.to_string(),
                nondeterministic,
                handle: make(),
            })
            .handle
            .clone()
    }

    /// Registers (or fetches) a deterministic counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.counter_with(name, labels, help, false)
    }

    /// Registers (or fetches) a counter, flagged nondeterministic when it
    /// aggregates wall-clock quantities.
    pub fn counter_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        nondeterministic: bool,
    ) -> Counter {
        match self.get_or_register(name, labels, help, nondeterministic, || {
            Handle::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Handle::Counter(c) => Counter(c),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a deterministic gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.gauge_with(name, labels, help, false)
    }

    /// Registers (or fetches) a gauge, flagged nondeterministic when it
    /// reflects wall-clock-derived quantities (e.g. the measured pool
    /// crossover).
    pub fn gauge_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        nondeterministic: bool,
    ) -> Gauge {
        match self.get_or_register(name, labels, help, nondeterministic, || {
            Handle::Gauge(Arc::new(AtomicI64::new(0)))
        }) {
            Handle::Gauge(g) => Gauge(g),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a deterministic histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        self.histogram_with(name, labels, help, false)
    }

    /// Registers (or fetches) a histogram, flagged nondeterministic when
    /// it observes wall-clock quantities.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        nondeterministic: bool,
    ) -> Histogram {
        match self.get_or_register(name, labels, help, nondeterministic, || {
            Handle::Histogram(Arc::new(HistogramCore::default()))
        }) {
            Handle::Histogram(h) => Histogram(h),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// A consistent point-in-time export of every registered metric, in
    /// canonical `(name, labels)` order.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let metrics = map
            .iter()
            .map(|((name, labels), entry)| MetricSnap {
                name: name.clone(),
                labels: labels.clone(),
                help: entry.help.clone(),
                nondeterministic: entry.nondeterministic,
                value: match &entry.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Handle::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                    Handle::Histogram(h) => MetricValue::Histogram(HistogramSnap {
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    }),
                },
            })
            .collect();
        Snapshot { metrics }
    }
}

/// A frozen histogram: per-bucket (non-cumulative) counts plus sum and
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnap {
    /// Raw per-bucket counts (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnap),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    fn zeroed(&self) -> MetricValue {
        match self {
            MetricValue::Counter(_) => MetricValue::Counter(0),
            MetricValue::Gauge(_) => MetricValue::Gauge(0),
            MetricValue::Histogram(h) => MetricValue::Histogram(HistogramSnap {
                buckets: vec![0; h.buckets.len()],
                sum: 0,
                count: 0,
            }),
        }
    }
}

/// One frozen metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnap {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Whether the metric carries wall-clock (host) quantities.
    pub nondeterministic: bool,
    /// The frozen value.
    pub value: MetricValue,
}

/// A consistent point-in-time export of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Metrics in canonical `(name, labels)` order.
    pub metrics: Vec<MetricSnap>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` headers, cumulative `le` histogram buckets).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for m in &self.metrics {
            if last_name != Some(m.name.as_str()) {
                out.push_str(&format!(
                    "# HELP {} {}\n",
                    m.name,
                    m.help.replace('\n', " ")
                ));
                out.push_str(&format!("# TYPE {} {}\n", m.name, m.value.kind()));
                last_name = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        m.name,
                        render_labels(&m.labels, None)
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        m.name,
                        render_labels(&m.labels, None)
                    ));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &b) in h.buckets.iter().enumerate() {
                        cumulative += b;
                        let le = if i == h.buckets.len() - 1 {
                            "+Inf".to_string()
                        } else {
                            (1u64 << i).to_string()
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            m.name,
                            render_labels(&m.labels, Some(("le", &le)))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        render_labels(&m.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        render_labels(&m.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as JSON (`pretty` adds indentation). The
    /// format round-trips through [`Snapshot::from_json`].
    pub fn to_json(&self, pretty: bool) -> String {
        let (nl, ind, sp) = if pretty {
            ("\n", "  ", " ")
        } else {
            ("", "", "")
        };
        let mut out = String::new();
        out.push_str(&format!("{{{nl}{ind}\"metrics\":{sp}[{nl}"));
        for (i, m) in self.metrics.iter().enumerate() {
            let labels = m
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":{sp}\"{}\"", escape_json(k), escape_json(v)))
                .collect::<Vec<_>>()
                .join(&format!(",{sp}"));
            let value = match &m.value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v}"),
                MetricValue::Histogram(h) => {
                    let buckets = h
                        .buckets
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        "{{\"buckets\":{sp}[{buckets}],{sp}\"sum\":{sp}{},{sp}\"count\":{sp}{}}}",
                        h.sum, h.count
                    )
                }
            };
            out.push_str(&format!(
                "{ind}{ind}{{\"name\":{sp}\"{}\",{sp}\"labels\":{sp}{{{labels}}},{sp}\"type\":{sp}\"{}\",{sp}\"help\":{sp}\"{}\",{sp}\"nondeterministic\":{sp}{},{sp}\"value\":{sp}{value}}}{}{nl}",
                escape_json(&m.name),
                m.value.kind(),
                escape_json(&m.help),
                m.nondeterministic,
                if i + 1 < self.metrics.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!("{ind}]{nl}}}{nl}"));
        out
    }

    /// A copy with every nondeterministic (wall-clock) metric zeroed.
    /// Two runs of the same workload under a pinned parallel policy
    /// produce byte-identical `masked().to_json(false)` strings.
    pub fn masked(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .map(|m| {
                    let mut m = m.clone();
                    if m.nondeterministic {
                        m.value = m.value.zeroed();
                    }
                    m
                })
                .collect(),
        }
    }

    /// Subtracts `baseline` metric-wise: counters and histograms become
    /// deltas (saturating at zero), gauges keep their current value.
    /// Metrics absent from the baseline pass through unchanged.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        type BaseKey<'a> = (&'a str, &'a [(String, String)]);
        let base: BTreeMap<BaseKey<'_>, &MetricValue> = baseline
            .metrics
            .iter()
            .map(|m| ((m.name.as_str(), m.labels.as_slice()), &m.value))
            .collect();
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .map(|m| {
                    let mut m = m.clone();
                    if let Some(earlier) = base.get(&(m.name.as_str(), m.labels.as_slice())) {
                        m.value = match (&m.value, earlier) {
                            (MetricValue::Counter(now), MetricValue::Counter(then)) => {
                                MetricValue::Counter(now.saturating_sub(*then))
                            }
                            (MetricValue::Histogram(now), MetricValue::Histogram(then))
                                if now.buckets.len() == then.buckets.len() =>
                            {
                                MetricValue::Histogram(HistogramSnap {
                                    buckets: now
                                        .buckets
                                        .iter()
                                        .zip(&then.buckets)
                                        .map(|(a, b)| a.saturating_sub(*b))
                                        .collect(),
                                    sum: now.sum.saturating_sub(then.sum),
                                    count: now.count.saturating_sub(then.count),
                                })
                            }
                            (current, _) => (*current).clone(),
                        };
                    }
                    m
                })
                .collect(),
        }
    }

    /// Parses a snapshot back from its [`Snapshot::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema violation.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = json::parse(text)?;
        let obj = root.as_object().ok_or("top level must be an object")?;
        let metrics = json::field(obj, "metrics")?
            .as_array()
            .ok_or("\"metrics\" must be an array")?;
        let mut out = Vec::with_capacity(metrics.len());
        for m in metrics {
            let m = m.as_object().ok_or("metric entries must be objects")?;
            let name = json::field(m, "name")?
                .as_str()
                .ok_or("\"name\" must be a string")?
                .to_string();
            let labels_obj = json::field(m, "labels")?
                .as_object()
                .ok_or("\"labels\" must be an object")?;
            let labels: Vec<(String, String)> = labels_obj
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or_else(|| format!("label {k} must be a string"))
                })
                .collect::<Result<_, _>>()?;
            let help = json::field(m, "help")?
                .as_str()
                .ok_or("\"help\" must be a string")?
                .to_string();
            let nondeterministic = json::field(m, "nondeterministic")?
                .as_bool()
                .ok_or("\"nondeterministic\" must be a boolean")?;
            let kind = json::field(m, "type")?
                .as_str()
                .ok_or("\"type\" must be a string")?;
            let value = json::field(m, "value")?;
            let value = match kind {
                "counter" => {
                    MetricValue::Counter(value.as_u64().ok_or("counter value must be a u64")?)
                }
                "gauge" => MetricValue::Gauge(value.as_i64().ok_or("gauge value must be an i64")?),
                "histogram" => {
                    let h = value
                        .as_object()
                        .ok_or("histogram value must be an object")?;
                    let buckets = json::field(h, "buckets")?
                        .as_array()
                        .ok_or("\"buckets\" must be an array")?
                        .iter()
                        .map(|b| b.as_u64().ok_or("buckets must hold u64s".to_string()))
                        .collect::<Result<Vec<u64>, _>>()?;
                    MetricValue::Histogram(HistogramSnap {
                        buckets,
                        sum: json::field(h, "sum")?
                            .as_u64()
                            .ok_or("\"sum\" must be a u64")?,
                        count: json::field(h, "count")?
                            .as_u64()
                            .ok_or("\"count\" must be a u64")?,
                    })
                }
                other => return Err(format!("unknown metric type {other:?}")),
            };
            out.push(MetricSnap {
                name,
                labels,
                help,
                nondeterministic,
                value,
            });
        }
        Ok(Snapshot { metrics: out })
    }
}

/// Minimal recursive-descent JSON reader for [`Snapshot::from_json`] —
/// the workspace is offline, so no serde.
mod json {
    /// A parsed JSON value (numbers are kept as `i128`; the snapshot
    /// schema never uses fractions).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Integral number.
        Int(i128),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object (insertion order preserved).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) => u64::try_from(*i).ok(),
                _ => None,
            }
        }
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => i64::try_from(*i).ok(),
                _ => None,
            }
        }
    }

    pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {name:?}"))
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(out));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                out.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(out));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                self.skip_ws();
                out.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(out));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                                self.pos += 4;
                            }
                            other => {
                                return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // boundaries are valid).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                        let c = s.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
            if let Some(b'.' | b'e' | b'E') = self.peek() {
                return Err(format!(
                    "non-integer number at byte {start} (snapshot schema is integral)"
                ));
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
            s.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
    }
}

/// Validates Prometheus text exposition syntax, returning the number of
/// sample lines. Used by the `rime-stats --selfcheck` CI gate (the
/// workspace is offline, so the check is an in-repo grammar walk, not an
/// external parser).
///
/// # Errors
///
/// Returns `(line number, description)` of the first malformed line.
pub fn validate_prometheus(text: &str) -> Result<usize, (usize, String)> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    fn parse_labels(s: &str) -> Result<(), String> {
        // `s` is the text between '{' and '}'.
        if s.is_empty() {
            return Ok(());
        }
        let mut rest = s;
        loop {
            let eq = rest.find('=').ok_or("label without '='")?;
            let key = &rest[..eq];
            if !valid_name(key) {
                return Err(format!("bad label name {key:?}"));
            }
            rest = rest[eq + 1..]
                .strip_prefix('"')
                .ok_or("label value must be quoted")?;
            // Scan to the closing unescaped quote.
            let mut escaped = false;
            let mut end = None;
            for (i, c) in rest.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or("unterminated label value")?;
            rest = &rest[end + 1..];
            match rest.strip_prefix(',') {
                Some(r) => rest = r,
                None if rest.is_empty() => return Ok(()),
                None => return Err("expected ',' between labels".to_string()),
            }
        }
    }

    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let ok = comment
                .strip_prefix("HELP ")
                .map(|r| r.split_whitespace().next().is_some_and(valid_name))
                .or_else(|| {
                    comment.strip_prefix("TYPE ").map(|r| {
                        let mut parts = r.split_whitespace();
                        parts.next().is_some_and(valid_name)
                            && matches!(parts.next(), Some("counter" | "gauge" | "histogram"))
                    })
                })
                .unwrap_or(true); // other comments are legal
            if !ok {
                return Err((lineno, format!("malformed comment: {line:?}")));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or((lineno, "sample line without value".to_string()))?;
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err((lineno, format!("bad sample value {value:?}")));
        }
        let name = if let Some(open) = series.find('{') {
            let labels = series[open..]
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .ok_or((lineno, "unbalanced label braces".to_string()))?;
            parse_labels(labels).map_err(|e| (lineno, e))?;
            &series[..open]
        } else {
            series
        };
        if !valid_name(name) {
            return Err((lineno, format!("bad metric name {name:?}")));
        }
        samples += 1;
    }
    Ok(samples)
}

/// A wall-clock span guard: records elapsed nanoseconds into its
/// (nondeterministic) histogram when dropped. Usually created via the
/// [`crate::span!`] macro.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Starts a span against `hist` (which should be registered with the
    /// nondeterministic flag — wall time is host noise).
    pub fn new(hist: Histogram) -> Span {
        Span {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.observe(ns);
    }
}

/// Starts a wall-clock span: `span!(registry, "extract", chip = 3)`
/// records into the nondeterministic histogram `extract_wall_ns{chip="3"}`
/// when the returned [`Span`] guard drops.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let values: &[::std::string::String] = &[$(($val).to_string()),*];
        let names: &[&str] = &[$(stringify!($key)),*];
        let labels: ::std::vec::Vec<(&str, &str)> = names
            .iter()
            .zip(values.iter())
            .map(|(n, v)| (*n, v.as_str()))
            .collect();
        $crate::metrics::Span::new($registry.histogram_with(
            concat!($name, "_wall_ns"),
            &labels,
            "wall-clock span duration in nanoseconds",
            true,
        ))
    }};
}

fn error_code(err: &RimeError) -> &'static str {
    match err {
        RimeError::OutOfContiguousMemory { .. } => "out_of_contiguous_memory",
        RimeError::InvalidRegion => "invalid_region",
        RimeError::OutOfBounds { .. } => "out_of_bounds",
        RimeError::NotInitialized => "not_initialized",
        RimeError::TypeMismatch { .. } => "type_mismatch",
        RimeError::Chip(_) => "chip_fault",
        RimeError::Journal(_) => "journal",
    }
}

const OP_NAMES: [&str; 8] = [
    "column_search_steps",
    "mat_column_searches",
    "row_reads",
    "row_writes",
    "select_loads",
    "htree_traversals",
    "init_ops",
    "extractions",
];

fn op_values(c: &OpCounters) -> [u64; 8] {
    [
        c.column_search_steps,
        c.mat_column_searches,
        c.row_reads,
        c.row_writes,
        c.select_loads,
        c.htree_traversals,
        c.init_ops,
        c.extractions,
    ]
}

/// A telemetry sink publishing the command stream into a
/// [`MetricsRegistry`]: per-command outcome/errcode counters, per-command
/// modeled-latency and transfer histograms, and per-chip op counters.
/// One instance is built into every executor; additional instances can be
/// attached like any other sink to publish into a private registry.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    registry: MetricsRegistry,
    timing: ArrayTiming,
    seq: Gauge,
    transfers_total: Counter,
    replayed: Counter,
}

impl MetricsSink {
    /// Creates a sink publishing into `registry`, pricing modeled latency
    /// with `timing`.
    pub fn new(registry: MetricsRegistry, timing: ArrayTiming) -> MetricsSink {
        let seq = registry.gauge(
            "rime_events_seq",
            &[],
            "sequence number of the last telemetry event",
        );
        let transfers_total = registry.counter(
            "rime_interface_transfers_total",
            &[],
            "values transferred over the DDR4 interface",
        );
        // Flagged nondeterministic: whether (and how much) a run
        // replayed depends on where a crash landed, so masked snapshots
        // of a recovered device must still match an uncrashed run's.
        let replayed = registry.counter_with(
            "rime_replayed_commands_total",
            &[],
            "commands re-executed during journal recovery (not fresh work)",
            true,
        );
        MetricsSink {
            registry,
            timing,
            seq,
            transfers_total,
            replayed,
        }
    }

    /// Counts one journal-replay re-execution. Replayed commands skip
    /// the regular per-command metrics (they are not new device work —
    /// the recovered chips re-earn their counters, but command totals
    /// must stay identical to the uncrashed run) and tick only this
    /// nondeterministic-flagged counter.
    pub(crate) fn note_replayed(&self) {
        self.replayed.inc();
    }

    /// The registry this sink publishes into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Publishes one event (shared by the `Telemetry` impl and the
    /// executor's built-in instance, which records through `&self`).
    pub(crate) fn observe(&self, event: &TelemetryEvent<'_>) {
        let kind = event.command.kind();
        self.seq.set(i64::try_from(event.seq).unwrap_or(i64::MAX));
        let outcome = if event.result.is_ok() { "ok" } else { "error" };
        self.registry
            .counter(
                "rime_commands_total",
                &[("command", kind), ("outcome", outcome)],
                "executed commands by kind and outcome",
            )
            .inc();
        if let Err(err) = event.result {
            self.registry
                .counter(
                    "rime_command_errors_total",
                    &[("command", kind), ("code", error_code(err))],
                    "failed commands by kind and error code",
                )
                .inc();
        }
        let transfers = event.effects.interface_transfers();
        self.transfers_total.add(transfers);
        self.registry
            .histogram(
                "rime_command_transfers",
                &[("command", kind)],
                "interface transfers per command",
            )
            .observe(transfers);
        let total = event.effects.total();
        let modeled_ns = self.timing.time_ns(&total) as u64;
        self.registry
            .histogram(
                "rime_command_modeled_ns",
                &[("command", kind)],
                "modeled device nanoseconds per command (Table I pricing)",
            )
            .observe(modeled_ns);
        for (chip, delta) in event.effects.chip_deltas() {
            let chip = chip.to_string();
            for (op, value) in OP_NAMES.iter().zip(op_values(delta)) {
                if value == 0 {
                    continue;
                }
                self.registry
                    .counter(
                        "rime_chip_ops_total",
                        &[("chip", &chip), ("op", op)],
                        "chip operations by kind (mirrors OpCounters)",
                    )
                    .add(value);
            }
        }
    }
}

impl Telemetry for MetricsSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        self.observe(event);
    }
}

const PHASES: [Phase; 5] = [
    Phase::Sense,
    Phase::Exclude,
    Phase::IndexReduce,
    Phase::Readout,
    Phase::Rearm,
];

fn phase_slot(phase: Phase) -> usize {
    match phase {
        Phase::Sense => 0,
        Phase::Exclude => 1,
        Phase::IndexReduce => 2,
        Phase::Readout => 3,
        Phase::Rearm => 4,
    }
}

/// The registry-backed implementation of
/// [`rime_memristive::probe::ExtractionProbe`]: converts phase op counts
/// into modeled device nanoseconds via [`ArrayTiming`] and publishes
/// phase, steps-per-key, and pool metrics labeled by chip.
///
/// Installed per chip by `RimeDevice::enable_extraction_metrics()` (one
/// probe per chip so the `chip` label is fixed at construction). Phases
/// the Table I model does not price separately (exclude, index-reduce,
/// rearm — CMOS latch and H-tree work folded into the compute step)
/// record a modeled cost of zero; their op counts and wall time are still
/// exported.
#[derive(Debug)]
pub struct ChipProbe {
    registry: MetricsRegistry,
    chip: String,
    timing: ArrayTiming,
    phase_wall: Vec<Histogram>,
    phase_modeled: Vec<Histogram>,
    phase_ops: Vec<Counter>,
    steps: Histogram,
    excluded: Histogram,
    leases: Counter,
    unleases: Counter,
    imbalance: Gauge,
    leased_mats: Gauge,
    pool_step_wall: Histogram,
    pool_crossover: Gauge,
}

impl ChipProbe {
    /// Builds a probe for chip `chip`, publishing into `registry`.
    pub fn new(registry: &MetricsRegistry, timing: ArrayTiming, chip: u32) -> ChipProbe {
        let chip = chip.to_string();
        let mut phase_wall = Vec::with_capacity(PHASES.len());
        let mut phase_modeled = Vec::with_capacity(PHASES.len());
        let mut phase_ops = Vec::with_capacity(PHASES.len());
        for phase in PHASES {
            let labels = [("chip", chip.as_str()), ("phase", phase.label())];
            phase_wall.push(registry.histogram_with(
                "rime_phase_wall_ns",
                &labels,
                "wall-clock nanoseconds per extraction phase",
                true,
            ));
            phase_modeled.push(registry.histogram(
                "rime_phase_modeled_ns",
                &labels,
                "modeled device nanoseconds per extraction phase (Table I)",
            ));
            phase_ops.push(registry.counter(
                "rime_phase_ops_total",
                &labels,
                "device operations per extraction phase",
            ));
        }
        let chip_label = [("chip", chip.as_str())];
        ChipProbe {
            steps: registry.histogram(
                "rime_extraction_steps",
                &chip_label,
                "column-search steps per extracted key",
            ),
            excluded: registry.histogram(
                "rime_excluded_per_step",
                &chip_label,
                "rows deselected per exclusion step",
            ),
            leases: registry.counter(
                "rime_pool_leases_total",
                &chip_label,
                "mat-pool sessions opened",
            ),
            unleases: registry.counter(
                "rime_pool_unleases_total",
                &chip_label,
                "mat-pool sessions closed",
            ),
            imbalance: registry.gauge(
                "rime_pool_shard_imbalance",
                &chip_label,
                "largest minus smallest shard size of the last lease",
            ),
            leased_mats: registry.gauge(
                "rime_pool_leased_mats",
                &chip_label,
                "mats covered by the last pool lease",
            ),
            pool_step_wall: registry.histogram_with(
                "rime_pool_step_wall_ns",
                &chip_label,
                "wall-clock broadcast-to-fold latency per pool epoch step",
                true,
            ),
            pool_crossover: registry.gauge_with(
                "rime_pool_crossover_mats",
                &chip_label,
                "measured Auto crossover: span width in mats where the pool wins",
                true,
            ),
            registry: registry.clone(),
            chip,
            timing,
            phase_wall,
            phase_modeled,
            phase_ops,
        }
    }

    /// Modeled cost of `ops` operations of `phase`, in integer
    /// nanoseconds. Only sense steps and readout carry a Table I price;
    /// the other phases are CMOS/H-tree work folded into the compute
    /// figure and price at zero.
    fn modeled_ns(&self, phase: Phase, ops: u64) -> u64 {
        let per_op = match phase {
            Phase::Sense => self.timing.extraction_time_ns(1),
            Phase::Readout => self.timing.t_read_ns,
            Phase::Exclude | Phase::IndexReduce | Phase::Rearm => 0.0,
        };
        (per_op * ops as f64) as u64
    }
}

impl ExtractionProbe for ChipProbe {
    fn phase(&self, phase: Phase, wall_ns: u64, ops: u64) {
        let slot = phase_slot(phase);
        self.phase_wall[slot].observe(wall_ns);
        self.phase_modeled[slot].observe(self.modeled_ns(phase, ops));
        self.phase_ops[slot].add(ops);
    }

    fn extraction(&self, steps: u16) {
        self.steps.observe(u64::from(steps));
    }

    fn excluded_step(&self, removed: u64) {
        self.excluded.observe(removed);
    }

    fn pool_lease(&self, _workers: usize, mats: usize, largest: usize, smallest: usize) {
        self.leases.inc();
        self.leased_mats
            .set(i64::try_from(mats).unwrap_or(i64::MAX));
        self.imbalance
            .set(i64::try_from(largest.saturating_sub(smallest)).unwrap_or(i64::MAX));
    }

    fn pool_unlease(&self) {
        self.unleases.inc();
    }

    fn pool_step(&self, wall_ns: u64) {
        self.pool_step_wall.observe(wall_ns);
    }

    fn pool_crossover(&self, mats: usize) {
        self.pool_crossover
            .set(i64::try_from(mats).unwrap_or(i64::MAX));
    }

    fn pool_worker(&self, worker: usize, busy_ns: u64, session_ns: u64) {
        let worker = worker.to_string();
        let labels = [("chip", self.chip.as_str()), ("worker", worker.as_str())];
        self.registry
            .counter_with(
                "rime_pool_worker_busy_ns_total",
                &labels,
                "wall-clock nanoseconds the worker spent processing requests",
                true,
            )
            .add(busy_ns);
        self.registry
            .counter_with(
                "rime_pool_worker_park_ns_total",
                &labels,
                "wall-clock nanoseconds the worker sat parked on its channel",
                true,
            )
            .add(session_ns.saturating_sub(busy_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 62), 62);
        assert_eq!(bucket_index((1 << 62) + 1), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn handles_are_shared_across_registration() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &[("k", "v")], "help");
        let b = reg.counter("x_total", &[("k", "v")], "ignored on re-registration");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = reg.gauge("depth", &[], "help");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", &[], "help");
        let _ = reg.gauge("x", &[], "help");
    }

    #[test]
    fn snapshot_is_canonically_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta_total", &[], "z").inc();
        reg.counter("alpha_total", &[("chip", "1")], "a").inc();
        reg.counter("alpha_total", &[("chip", "0")], "a").inc();
        let names: Vec<(String, Vec<(String, String)>)> = reg
            .snapshot()
            .metrics
            .into_iter()
            .map(|m| (m.name, m.labels))
            .collect();
        assert_eq!(names[0].0, "alpha_total");
        assert_eq!(names[0].1[0].1, "0");
        assert_eq!(names[1].1[0].1, "1");
        assert_eq!(names[2].0, "zeta_total");
    }

    #[test]
    fn prometheus_exposition_is_valid_and_cumulative() {
        let reg = MetricsRegistry::new();
        reg.counter("ops_total", &[("chip", "0")], "ops").add(7);
        reg.gauge("depth", &[], "queue depth").set(-3);
        let h = reg.histogram("lat_ns", &[], "latency");
        h.observe(1);
        h.observe(3);
        h.observe(1000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total{chip=\"0\"} 7"));
        assert!(text.contains("depth -3"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"4\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"1024\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 1004"));
        assert!(text.contains("lat_ns_count 3"));
        let samples = validate_prometheus(&text).expect("own exposition must parse");
        assert!(samples > HISTOGRAM_BUCKETS);
    }

    #[test]
    fn prometheus_validator_rejects_malformed_lines() {
        assert!(validate_prometheus("9bad_name 1\n").is_err());
        assert!(validate_prometheus("name{k=unquoted} 1\n").is_err());
        assert!(validate_prometheus("name novalue\n").is_err());
        assert!(validate_prometheus("name{k=\"v\"} 1\n").is_ok());
        assert!(validate_prometheus("# arbitrary comment\n").is_ok());
        assert!(validate_prometheus("# TYPE x summary\n").is_err());
    }

    #[test]
    fn json_roundtrips_compact_and_pretty() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[("k", "va\"l")], "with \"quotes\"")
            .add(3);
        reg.gauge("g", &[], "gauge").set(-7);
        reg.histogram("h_ns", &[], "hist").observe(42);
        let snap = reg.snapshot();
        for pretty in [false, true] {
            let text = snap.to_json(pretty);
            let back = Snapshot::from_json(&text).expect("roundtrip parse");
            assert_eq!(back, snap, "pretty={pretty}");
        }
    }

    #[test]
    fn masking_zeroes_only_nondeterministic_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("modeled_total", &[], "modeled").add(9);
        reg.counter_with("wall_ns_total", &[], "wall", true)
            .add(1234);
        let h = reg.histogram_with("span_wall_ns", &[], "wall hist", true);
        h.observe(55);
        let masked = reg.snapshot().masked();
        for m in &masked.metrics {
            match (m.name.as_str(), &m.value) {
                ("modeled_total", MetricValue::Counter(v)) => assert_eq!(*v, 9),
                ("wall_ns_total", MetricValue::Counter(v)) => assert_eq!(*v, 0),
                ("span_wall_ns", MetricValue::Histogram(h)) => {
                    assert_eq!(h.count, 0);
                    assert_eq!(h.sum, 0);
                    assert!(h.buckets.iter().all(|&b| b == 0));
                }
                other => panic!("unexpected metric {other:?}"),
            }
        }
    }

    #[test]
    fn diff_subtracts_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", &[], "c");
        let g = reg.gauge("g", &[], "g");
        let h = reg.histogram("h_ns", &[], "h");
        c.add(5);
        g.set(2);
        h.observe(8);
        let baseline = reg.snapshot();
        c.add(3);
        g.set(9);
        h.observe(8);
        h.observe(100);
        let diff = reg.snapshot().diff(&baseline);
        for m in &diff.metrics {
            match (m.name.as_str(), &m.value) {
                ("c_total", MetricValue::Counter(v)) => assert_eq!(*v, 3),
                ("g", MetricValue::Gauge(v)) => assert_eq!(*v, 9, "gauges pass through"),
                ("h_ns", MetricValue::Histogram(h)) => {
                    assert_eq!(h.count, 2);
                    assert_eq!(h.sum, 108);
                }
                other => panic!("unexpected metric {other:?}"),
            }
        }
    }

    #[test]
    fn span_macro_records_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _span = span!(reg, "extract", chip = 3, step = "sense");
        }
        {
            let _span = span!(reg, "idle");
        }
        let snap = reg.snapshot();
        let spans: Vec<&MetricSnap> = snap
            .metrics
            .iter()
            .filter(|m| m.name.ends_with("_wall_ns"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|m| m.nondeterministic));
        let labeled = spans
            .iter()
            .find(|m| m.name == "extract_wall_ns")
            .expect("labeled span present");
        assert_eq!(
            labeled.labels,
            vec![
                ("chip".to_string(), "3".to_string()),
                ("step".to_string(), "sense".to_string())
            ]
        );
        match &labeled.value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("span must be a histogram, got {other:?}"),
        }
    }

    #[test]
    fn chip_probe_prices_phases_per_table1() {
        let reg = MetricsRegistry::new();
        let probe = ChipProbe::new(&reg, ArrayTiming::table1(), 2);
        probe.phase(Phase::Sense, 999, 64);
        probe.phase(Phase::Readout, 5, 1);
        probe.phase(Phase::Exclude, 7, 10);
        probe.extraction(64);
        probe.excluded_step(12);
        probe.pool_lease(4, 16, 4, 4);
        probe.pool_step(100);
        probe.pool_worker(0, 80, 100);
        probe.pool_crossover(24);
        probe.pool_unlease();
        let snap = reg.snapshot();
        let get = |name: &str, phase: Option<&str>| {
            snap.metrics
                .iter()
                .find(|m| {
                    m.name == name
                        && phase
                            .is_none_or(|p| m.labels.iter().any(|(k, v)| k == "phase" && v == p))
                })
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
                .clone()
        };
        // 64 sense steps at Table I's 282.5 ns / 64 steps = 282 ns (u64).
        match get("rime_phase_modeled_ns", Some("sense")) {
            MetricValue::Histogram(h) => assert_eq!(h.sum, 282),
            other => panic!("{other:?}"),
        }
        // Readout = one t_read at 4.3 ns → 4 ns.
        match get("rime_phase_modeled_ns", Some("readout")) {
            MetricValue::Histogram(h) => assert_eq!(h.sum, 4),
            other => panic!("{other:?}"),
        }
        // Unpriced phase models zero but keeps its op count.
        match get("rime_phase_modeled_ns", Some("exclude")) {
            MetricValue::Histogram(h) => assert_eq!(h.sum, 0),
            other => panic!("{other:?}"),
        }
        match get("rime_phase_ops_total", Some("exclude")) {
            MetricValue::Counter(v) => assert_eq!(v, 10),
            other => panic!("{other:?}"),
        }
        match get("rime_pool_worker_busy_ns_total", None) {
            MetricValue::Counter(v) => assert_eq!(v, 80),
            other => panic!("{other:?}"),
        }
        match get("rime_pool_worker_park_ns_total", None) {
            MetricValue::Counter(v) => assert_eq!(v, 20),
            other => panic!("{other:?}"),
        }
        match get("rime_pool_shard_imbalance", None) {
            MetricValue::Gauge(v) => assert_eq!(v, 0),
            other => panic!("{other:?}"),
        }
        match get("rime_pool_crossover_mats", None) {
            MetricValue::Gauge(v) => assert_eq!(v, 24),
            other => panic!("{other:?}"),
        }
        // Wall-clock(-derived) metrics carry the flag; modeled ones don't.
        for m in &snap.metrics {
            let wall = m.name.contains("wall_ns")
                || m.name.contains("_ns_total")
                || m.name == "rime_pool_crossover_mats";
            assert_eq!(m.nondeterministic, wall, "{}", m.name);
        }
    }

    #[test]
    fn json_parser_handles_escapes_and_rejects_garbage() {
        let v = json::parse(r#"{"a": [1, -2, "x\nyA"], "b": true, "c": null}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = json::field(obj, "a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_str(), Some("x\nyA"));
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("1.5").is_err(), "schema is integral");
        assert!(json::parse("{} extra").is_err());
    }
}
