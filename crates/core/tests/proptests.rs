//! Property-based tests for the RIME core: allocator invariants under
//! random alloc/free sequences, and device API invariants under random
//! operation interleavings.

use proptest::prelude::*;
use rime_core::{ContiguousAllocator, DriverConfig, RimeConfig, RimeDevice};

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..600).prop_map(AllocOp::Alloc),
            (0usize..16).prop_map(AllocOp::FreeNth),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Live extents never overlap, never exceed capacity, and freeing
    /// everything restores one maximal extent.
    #[test]
    fn allocator_invariants(ops in alloc_ops()) {
        let total = 4096u64;
        let mut alloc = ContiguousAllocator::new(total, DriverConfig {
            page_slots: 64,
            startup_pages: 8,
            growth_pages: 4,
        });
        let mut live: Vec<(u64, u64)> = Vec::new(); // (start, len)
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Ok(start) = alloc.alloc(len) {
                        // No overlap with anything live.
                        for &(s, l) in &live {
                            prop_assert!(start + len <= s || s + l <= start,
                                "overlap: [{start},{}) vs [{s},{})", start + len, s + l);
                        }
                        prop_assert!(start + len <= total);
                        live.push((start, len));
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (start, _) = live.remove(n % live.len());
                        alloc.free(start).unwrap();
                    }
                }
            }
        }
        let live_total: u64 = live.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(alloc.allocated_slots(), live_total);
        // Free everything: capacity returns as one hole.
        for (start, _) in live {
            alloc.free(start).unwrap();
        }
        prop_assert_eq!(alloc.allocated_slots(), 0);
        prop_assert_eq!(alloc.largest_free(), total);
    }

    /// Interleaved sessions on random disjoint regions all stream their
    /// own data in order, regardless of interleaving.
    #[test]
    fn interleaved_regions_stay_isolated(
        sets in prop::collection::vec(prop::collection::vec(any::<u32>(), 1..24), 2..5),
        schedule in prop::collection::vec(0usize..5, 8..80),
    ) {
        let dev = RimeDevice::new(RimeConfig::small());
        let mut regions = Vec::new();
        let mut expected: Vec<std::collections::VecDeque<u32>> = Vec::new();
        for set in &sets {
            let r = dev.alloc(set.len() as u64).unwrap();
            dev.write(r, 0, set).unwrap();
            dev.init_all::<u32>(r).unwrap();
            regions.push(r);
            let mut sorted = set.clone();
            sorted.sort_unstable();
            expected.push(sorted.into());
        }
        for pick in schedule {
            let idx = pick % regions.len();
            let got = dev.rime_min::<u32>(regions[idx]).unwrap().map(|(_, v)| v);
            prop_assert_eq!(got, expected[idx].pop_front(), "region {}", idx);
        }
    }

    /// `rime_max` after draining some `rime_min`s sees exactly the full
    /// re-initialized set (direction switches re-arm, §V semantics).
    #[test]
    fn direction_switch_always_rearms(
        keys in prop::collection::vec(any::<i32>(), 1..32),
        drains in 0usize..10,
    ) {
        let dev = RimeDevice::new(RimeConfig::small());
        let r = dev.alloc(keys.len() as u64).unwrap();
        dev.write(r, 0, &keys).unwrap();
        dev.init_all::<i32>(r).unwrap();
        for _ in 0..drains.min(keys.len()) {
            let _ = dev.rime_min::<i32>(r).unwrap();
        }
        let max = dev.rime_max::<i32>(r).unwrap().map(|(_, v)| v);
        prop_assert_eq!(max, keys.iter().copied().max());
    }

    /// Sub-range init ranks exactly the sub-range.
    #[test]
    fn subrange_init_is_exact(
        keys in prop::collection::vec(any::<u64>(), 2..40),
        a in 0usize..40,
        b in 0usize..40,
    ) {
        let lo = a.min(b) % keys.len();
        let hi = (a.max(b) % keys.len()).max(lo + 1).min(keys.len());
        prop_assume!(lo < hi);
        let dev = RimeDevice::new(RimeConfig::small());
        let r = dev.alloc(keys.len() as u64).unwrap();
        dev.write(r, 0, &keys).unwrap();
        dev.init::<u64>(r, lo as u64, (hi - lo) as u64).unwrap();
        let mut got = Vec::new();
        while let Some((_, v)) = dev.rime_min::<u64>(r).unwrap() {
            got.push(v);
        }
        let mut want = keys[lo..hi].to_vec();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
