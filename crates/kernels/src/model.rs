//! Analytic traffic/compute models of the baseline sort kernels.
//!
//! Each algorithm is decomposed into phases for the
//! [`rime_memsim::perf::Workload`] model: how many passes run below the
//! cache, how many bytes per key each pass moves, with what locality and
//! access pattern, and how many CPU cycles per key it costs. The CPU
//! constants are calibrated so the *unlimited-bandwidth* throughputs land
//! at the paper's Fig. 2(a) magnitudes (the paper's MIPS64/ESESC cores are
//! far slower per key than native x86); the traffic shapes are validated
//! against the exact trace-driven execution in [`crate::exec`].

use rime_memsim::perf::{Phase, Workload};
use rime_memsim::SystemConfig;

/// Calibrated CPU cycles per key per pass (see module docs and
/// `EXPERIMENTS.md` for the calibration trail).
pub mod calib {
    /// Mergesort compare/copy cost per key per merge pass.
    pub const CPK_MERGE: f64 = 245.0;
    /// Quicksort partition cost per key per level.
    pub const CPK_QUICK: f64 = 155.0;
    /// Radixsort count+scatter cost per key per digit pass.
    pub const CPK_RADIX: f64 = 285.0;
    /// Heapsort sift cost per key per heap level.
    pub const CPK_HEAP: f64 = 300.0;
    /// Radix digit passes (64-bit keys, 8-bit digits).
    pub const RADIX_PASSES: u32 = 8;
    /// Effective per-stream share of the shared L2: 16 concurrent streams
    /// per core thrash it, so each core's merge run that still fits is
    /// `L2 / (STREAM_PRESSURE × cores)`.
    pub const STREAM_PRESSURE: u64 = 32;
    /// Bytes moved below cache per key per merge pass: read + write +
    /// writeback of 8-byte keys, plus re-fetches of run heads evicted
    /// between touches under multicore cache pressure.
    pub const MERGE_BYTES_PER_KEY_PASS: u64 = 28;
    /// Bytes per key per quicksort partition level (in-place read+write,
    /// half the merge traffic — why Q/S leads under limited bandwidth).
    pub const QUICK_BYTES_PER_KEY_PASS: u64 = 16;
    /// Bytes per key per radix pass: sequential read plus scattered
    /// write-allocate fills and writebacks that miss across 256 buckets.
    pub const RADIX_BYTES_PER_KEY_PASS: u64 = 72;
    /// Row-hit fraction of the radix scatter traffic.
    pub const RADIX_ROW_HIT: f64 = 0.05;
    /// Row-hit fraction of streaming merge/quick passes under multicore
    /// channel interleaving.
    pub const STREAM_ROW_HIT: f64 = 0.35;
    /// Lines touched per heap operation below the cached top levels.
    pub const HEAP_LINES_PER_LEVEL: f64 = 1.2;
}

/// The four baseline sorting algorithms (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortAlgorithm {
    /// Bottom-up mergesort (M/S).
    Merge,
    /// Quicksort (Q/S).
    Quick,
    /// LSD radixsort (R/S).
    Radix,
    /// Heapsort (H/S).
    Heap,
}

impl SortAlgorithm {
    /// All four, in the paper's legend order.
    pub const ALL: [SortAlgorithm; 4] = [
        SortAlgorithm::Merge,
        SortAlgorithm::Quick,
        SortAlgorithm::Radix,
        SortAlgorithm::Heap,
    ];

    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            SortAlgorithm::Merge => "M/S",
            SortAlgorithm::Quick => "Q/S",
            SortAlgorithm::Radix => "R/S",
            SortAlgorithm::Heap => "H/S",
        }
    }

    /// Total passes/levels over the data for `n` keys.
    pub fn total_passes(&self, n: u64) -> u32 {
        let log_n = (n.max(2) as f64).log2().ceil() as u32;
        match self {
            SortAlgorithm::Merge | SortAlgorithm::Quick | SortAlgorithm::Heap => log_n,
            SortAlgorithm::Radix => calib::RADIX_PASSES,
        }
    }

    /// Passes/levels that run *below* the last-level cache for `n` keys
    /// on `system` (footnote 2: small sets fit in cache and generate no
    /// memory traffic).
    pub fn below_cache_passes(&self, n: u64, system: &SystemConfig) -> u32 {
        let eff_l2_keys = (system.l2_capacity_keys()
            / (calib::STREAM_PRESSURE * system.core.cores.max(1) as u64))
            .max(64);
        match self {
            SortAlgorithm::Merge | SortAlgorithm::Quick | SortAlgorithm::Heap => {
                if n <= eff_l2_keys {
                    0
                } else {
                    ((n as f64 / eff_l2_keys as f64).log2().ceil() as u32).min(self.total_passes(n))
                }
            }
            SortAlgorithm::Radix => {
                // The 256 scatter streams leave each core only a sliver of
                // the shared L2; the working set spills once it exceeds a
                // quarter of the cache.
                if n * 8 <= system.l2.size_bytes / 4 {
                    0
                } else {
                    calib::RADIX_PASSES
                }
            }
        }
    }

    /// Builds the phase-level workload for sorting `n` keys on `system`.
    pub fn workload(&self, n: u64, system: &SystemConfig) -> Workload {
        let total = self.total_passes(n);
        let below = self.below_cache_passes(n, system);
        let mut phases = Vec::new();
        match self {
            SortAlgorithm::Merge => {
                // In-cache run formation + below-cache merge passes.
                let in_cache = total - below;
                if in_cache > 0 {
                    phases.push(Phase::streaming(
                        "merge (cached runs)",
                        n * in_cache as u64,
                        calib::CPK_MERGE,
                        0,
                    ));
                }
                if below > 0 {
                    phases.push(
                        Phase::streaming(
                            "merge (memory passes)",
                            n * below as u64,
                            calib::CPK_MERGE,
                            n * below as u64 * calib::MERGE_BYTES_PER_KEY_PASS,
                        )
                        .with_row_hit(calib::STREAM_ROW_HIT),
                    );
                }
            }
            SortAlgorithm::Quick => {
                let in_cache = total - below;
                if in_cache > 0 {
                    phases.push(Phase::streaming(
                        "partition (cached)",
                        n * in_cache as u64,
                        calib::CPK_QUICK,
                        0,
                    ));
                }
                if below > 0 {
                    phases.push(
                        Phase::streaming(
                            "partition (memory levels)",
                            n * below as u64,
                            calib::CPK_QUICK,
                            n * below as u64 * calib::QUICK_BYTES_PER_KEY_PASS,
                        )
                        .with_row_hit(calib::STREAM_ROW_HIT),
                    );
                }
            }
            SortAlgorithm::Radix => {
                let bytes = if below > 0 {
                    n * below as u64 * calib::RADIX_BYTES_PER_KEY_PASS
                } else {
                    0
                };
                phases.push(
                    Phase::streaming("digit passes", n * total as u64, calib::CPK_RADIX, bytes)
                        .with_row_hit(calib::RADIX_ROW_HIT),
                );
            }
            SortAlgorithm::Heap => {
                let in_cache = total - below;
                if in_cache > 0 {
                    phases.push(Phase::dependent(
                        "sift (cached levels)",
                        n * in_cache as u64,
                        calib::CPK_HEAP,
                        0,
                    ));
                }
                if below > 0 {
                    let lines = (n as f64 * below as f64 * calib::HEAP_LINES_PER_LEVEL) as u64;
                    phases.push(Phase::dependent(
                        "sift (memory levels)",
                        n * below as u64,
                        calib::CPK_HEAP,
                        lines * 64,
                    ));
                }
            }
        }
        Workload::new(phases)
    }

    /// Sort throughput (MKps) for `n` keys on `system` — the quantity of
    /// Figs. 2 and 15.
    pub fn throughput_mkps(&self, n: u64, system: &SystemConfig) -> f64 {
        self.workload(n, system).execute(system).throughput_mkps(n)
    }

    /// Below-cache memory accesses (millions of 64 B lines) — Fig. 1(a,b).
    pub fn mem_accesses_millions(&self, n: u64, system: &SystemConfig) -> f64 {
        self.workload(n, system).mem_lines() as f64 / 1e6
    }

    /// Sustained bandwidth (MB/s) while sorting — Fig. 1(c).
    pub fn sustained_bandwidth_mbps(&self, n: u64, system: &SystemConfig) -> f64 {
        self.workload(n, system)
            .execute(system)
            .sustained_bandwidth_mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_memsim::SystemConfig;

    const M65: u64 = 65_000_000;

    #[test]
    fn small_sets_generate_no_memory_traffic() {
        // Footnote 2: working sets inside the cache don't touch memory.
        let sys = SystemConfig::off_chip(1);
        for alg in SortAlgorithm::ALL {
            assert_eq!(alg.workload(1_000, &sys).mem_lines(), 0, "{}", alg.label());
        }
    }

    #[test]
    fn traffic_scales_superlinearly_with_size() {
        // Fig. 1(a): accesses grow faster than linearly (more passes).
        let sys = SystemConfig::off_chip(16);
        let a = SortAlgorithm::Merge.mem_accesses_millions(8_000_000, &sys);
        let b = SortAlgorithm::Merge.mem_accesses_millions(64_000_000, &sys);
        assert!(b > 8.0 * a, "a={a} b={b}");
    }

    #[test]
    fn traffic_grows_with_cores() {
        // Fig. 1(b): more cores → more cache pressure → more accesses.
        let few = SortAlgorithm::Quick.mem_accesses_millions(M65, &SystemConfig::off_chip(4));
        let many = SortAlgorithm::Quick.mem_accesses_millions(M65, &SystemConfig::off_chip(64));
        assert!(many > few, "few={few} many={many}");
    }

    #[test]
    fn fig1_magnitudes_at_65m() {
        // Fig. 1(a) plots hundreds of millions of accesses at 65M keys.
        let sys = SystemConfig::off_chip(16);
        for alg in [
            SortAlgorithm::Merge,
            SortAlgorithm::Quick,
            SortAlgorithm::Radix,
        ] {
            let m = alg.mem_accesses_millions(M65, &sys);
            assert!((50.0..2000.0).contains(&m), "{}: {m}M", alg.label());
        }
    }

    #[test]
    fn fig1c_sustained_bandwidth_magnitude() {
        // Fig. 1(c): sustained bandwidth in the hundreds of MB/s.
        let sys = SystemConfig::off_chip(16);
        let bw = SortAlgorithm::Merge.sustained_bandwidth_mbps(M65, &sys);
        assert!((150.0..1500.0).contains(&bw), "{bw} MB/s");
    }

    #[test]
    fn fig2a_unlimited_ranking_radix_first() {
        // Fig. 2(a): with unlimited bandwidth R/S > Q/S > M/S.
        let sys = SystemConfig::unlimited(16);
        let r = SortAlgorithm::Radix.throughput_mkps(M65, &sys);
        let q = SortAlgorithm::Quick.throughput_mkps(M65, &sys);
        let m = SortAlgorithm::Merge.throughput_mkps(M65, &sys);
        assert!(r > q && q > m, "r={r} q={q} m={m}");
        // Paper magnitudes: single to low double digits of MKps.
        assert!((5.0..30.0).contains(&r), "r={r}");
        assert!((2.0..15.0).contains(&m), "m={m}");
    }

    #[test]
    fn fig2c_ddr4_ranking_quick_takes_over() {
        // Fig. 2(c): under off-chip DDR4, Q/S beats R/S.
        let sys = SystemConfig::off_chip(16);
        let r = SortAlgorithm::Radix.throughput_mkps(M65, &sys);
        let q = SortAlgorithm::Quick.throughput_mkps(M65, &sys);
        assert!(q > r, "q={q} r={r}");
    }

    #[test]
    fn bandwidth_ordering_matches_fig2() {
        let unl = SystemConfig::unlimited(16);
        let hbm = SystemConfig::in_package(16);
        let off = SystemConfig::off_chip(16);
        for alg in SortAlgorithm::ALL {
            let u = alg.throughput_mkps(M65, &unl);
            let h = alg.throughput_mkps(M65, &hbm);
            let o = alg.throughput_mkps(M65, &off);
            assert!(u >= h && h >= o, "{}: {u} {h} {o}", alg.label());
        }
    }

    #[test]
    fn labels_and_passes() {
        assert_eq!(SortAlgorithm::Merge.label(), "M/S");
        assert_eq!(SortAlgorithm::Radix.total_passes(1 << 20), 8);
        assert_eq!(SortAlgorithm::Quick.total_passes(1 << 20), 20);
    }
}
