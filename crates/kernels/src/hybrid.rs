//! RIME-accelerated versions of the four sort kernels (§VI-C evaluates
//! "mergesort, quicksort, radixsort, and heapsort … for execution on the
//! proposed RIME architecture").
//!
//! Each hybrid keeps the host algorithm's *structure* but replaces its
//! comparison-heavy inner loop with in-situ ranking:
//!
//! * **mergesort** — RIME-sort chunks, then CPU binary merge tree;
//! * **quicksort** — CPU partitioning until chunks fit a stripe, then
//!   RIME-sort each chunk in place of the recursion tail;
//! * **radixsort** — one CPU MSD-byte scatter into 256 buckets, each
//!   bucket RIME-sorted (buckets concatenate in digit order);
//! * **heapsort** — the heap is replaced outright by the device: load
//!   everything, stream the order out (heapsort *is* repeated
//!   extract-min).
//!
//! All four produce exactly `slice::sort` output and are cross-checked in
//! tests; their paper-scale throughput is the device stream rate
//! (`rime_core::perf`), which is why Fig. 15 shows one RIME line.

use rime_core::{ops, RimeDevice, RimeError};

/// RIME mergesort: sort `stripes` chunks in-memory, merge on the CPU.
///
/// # Errors
///
/// Propagates device errors.
pub fn merge_sort_rime(
    device: &mut RimeDevice,
    keys: &[u64],
    stripes: usize,
) -> Result<Vec<u64>, RimeError> {
    if keys.is_empty() {
        return Ok(Vec::new());
    }
    let stripes = stripes.clamp(1, keys.len());
    let chunk = keys.len().div_ceil(stripes);
    let mut runs: Vec<Vec<u64>> = Vec::new();
    for part in keys.chunks(chunk) {
        let region = device.alloc(part.len() as u64)?;
        device.write(region, 0, part)?;
        runs.push(ops::sort_into_vec::<u64>(device, region)?);
        device.free(region)?;
    }
    // CPU binary merge tree over the sorted runs.
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    Ok(runs.pop().unwrap_or_default())
}

fn merge_two(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// RIME quicksort: CPU median-of-three partitioning down to
/// `cutoff`-sized chunks, which are RIME-sorted instead of recursed.
///
/// # Errors
///
/// Propagates device errors.
pub fn quick_sort_rime(
    device: &mut RimeDevice,
    keys: &[u64],
    cutoff: usize,
) -> Result<Vec<u64>, RimeError> {
    fn go(
        device: &mut RimeDevice,
        mut v: Vec<u64>,
        cutoff: usize,
        out: &mut Vec<u64>,
    ) -> Result<(), RimeError> {
        if v.len() <= cutoff {
            if !v.is_empty() {
                let region = device.alloc(v.len() as u64)?;
                device.write(region, 0, &v)?;
                out.extend(ops::sort_into_vec::<u64>(device, region)?);
                device.free(region)?;
            }
            return Ok(());
        }
        let pivot = {
            let (a, b, c) = (v[0], v[v.len() / 2], v[v.len() - 1]);
            a.max(b).min(a.min(b).max(c))
        };
        let mut less = Vec::new();
        let mut equal = Vec::new();
        let mut greater = Vec::new();
        for k in v.drain(..) {
            match k.cmp(&pivot) {
                std::cmp::Ordering::Less => less.push(k),
                std::cmp::Ordering::Equal => equal.push(k),
                std::cmp::Ordering::Greater => greater.push(k),
            }
        }
        go(device, less, cutoff, out)?;
        out.extend(equal);
        go(device, greater, cutoff, out)
    }
    let mut out = Vec::with_capacity(keys.len());
    go(device, keys.to_vec(), cutoff.max(1), &mut out)?;
    Ok(out)
}

/// RIME radixsort: one CPU MSD-byte scatter, then RIME-sort each bucket.
///
/// # Errors
///
/// Propagates device errors.
pub fn radix_sort_rime(device: &mut RimeDevice, keys: &[u64]) -> Result<Vec<u64>, RimeError> {
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); 256];
    for &k in keys {
        buckets[(k >> 56) as usize].push(k);
    }
    let mut out = Vec::with_capacity(keys.len());
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        let region = device.alloc(bucket.len() as u64)?;
        device.write(region, 0, &bucket)?;
        out.extend(ops::sort_into_vec::<u64>(device, region)?);
        device.free(region)?;
    }
    Ok(out)
}

/// RIME heapsort: the binary heap disappears — load once, stream the
/// order out (§III-B.1).
///
/// # Errors
///
/// Propagates device errors.
pub fn heap_sort_rime(device: &mut RimeDevice, keys: &[u64]) -> Result<Vec<u64>, RimeError> {
    if keys.is_empty() {
        return Ok(Vec::new());
    }
    let region = device.alloc(keys.len() as u64)?;
    device.write(region, 0, keys)?;
    let out = ops::sort_into_vec::<u64>(device, region)?;
    device.free(region)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_core::RimeConfig;
    use rime_workloads::keys::{generate_u64, KeyDistribution};

    fn check(keys: Vec<u64>) {
        let mut want = keys.clone();
        want.sort_unstable();
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(merge_sort_rime(&mut dev, &keys, 4).unwrap(), want, "merge");
        assert_eq!(quick_sort_rime(&mut dev, &keys, 64).unwrap(), want, "quick");
        assert_eq!(radix_sort_rime(&mut dev, &keys).unwrap(), want, "radix");
        assert_eq!(heap_sort_rime(&mut dev, &keys).unwrap(), want, "heap");
    }

    #[test]
    fn hybrids_match_std_sort_uniform() {
        check(generate_u64(1_500, KeyDistribution::Uniform, 91));
    }

    #[test]
    fn hybrids_match_std_sort_adversarial() {
        check(generate_u64(600, KeyDistribution::Sorted, 92));
        check(generate_u64(
            600,
            KeyDistribution::FewDistinct { distinct: 3 },
            93,
        ));
    }

    #[test]
    fn hybrids_handle_tiny_inputs() {
        check(vec![]);
        check(vec![7]);
        check(vec![9, 1]);
    }

    #[test]
    fn quick_cutoff_one_still_sorts() {
        let keys = generate_u64(120, KeyDistribution::Uniform, 94);
        let mut want = keys.clone();
        want.sort_unstable();
        let mut dev = RimeDevice::new(RimeConfig::small());
        assert_eq!(quick_sort_rime(&mut dev, &keys, 1).unwrap(), want);
    }

    #[test]
    fn radix_buckets_preserve_msd_order() {
        // Keys with distinct top bytes must come out grouped by top byte.
        let keys = vec![3u64 << 56 | 5, 1 << 56 | 9, 2 << 56 | 1, 1 << 56 | 2];
        let mut dev = RimeDevice::new(RimeConfig::small());
        let got = radix_sort_rime(&mut dev, &keys).unwrap();
        assert_eq!(
            got,
            vec![1 << 56 | 2, 1 << 56 | 9, 2 << 56 | 1, 3 << 56 | 5]
        );
    }
}
