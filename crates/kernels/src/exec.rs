//! Runnable sort kernels over an instrumented memory.
//!
//! Each kernel really sorts its data (outputs are asserted against
//! `slice::sort` in tests) while every element access flows through the
//! Table I cache hierarchy, producing the exact below-cache traffic the
//! analytic models in [`crate::model`] approximate.

use rime_memsim::cache::{CacheConfig, Hierarchy};
use rime_memsim::{DramConfig, DramModel};

/// Identifier of a buffer inside a [`TracedMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(usize);

/// A set of `u64` buffers whose accesses are (optionally) traced through
/// a cache hierarchy.
#[derive(Debug)]
pub struct TracedMemory {
    bufs: Vec<Vec<u64>>,
    bases: Vec<u64>,
    next_base: u64,
    hierarchy: Option<Hierarchy>,
    /// Optional cycle-level timing: L2 misses are served by this DRAM
    /// model and advance the core clock by the full access latency (a
    /// latency-serialized single core — the demand model's assumption).
    dram: Option<DramModel>,
    cycles: u64,
    /// CPU cycles charged per element access that hits in cache.
    cpu_cycles_per_access: u64,
}

impl TracedMemory {
    /// An untraced memory (plain execution).
    pub fn untraced() -> TracedMemory {
        TracedMemory {
            bufs: Vec::new(),
            bases: Vec::new(),
            next_base: 0,
            hierarchy: None,
            dram: None,
            cycles: 0,
            cpu_cycles_per_access: 0,
        }
    }

    /// A memory traced through the Table I single-core hierarchy.
    pub fn traced() -> TracedMemory {
        TracedMemory {
            bufs: Vec::new(),
            bases: Vec::new(),
            next_base: 0,
            hierarchy: Some(Hierarchy::new(
                1,
                CacheConfig::l1d_table1(),
                CacheConfig::l2_table1(),
            )),
            dram: None,
            cycles: 0,
            cpu_cycles_per_access: 0,
        }
    }

    /// A traced memory with full cycle timing: cache lookups charge their
    /// hit/miss latencies, L2 misses go through the given DRAM model, and
    /// every element access additionally charges `cpu_cycles_per_access`
    /// of compute. The result is an end-to-end single-core timed
    /// simulation used to validate the phase-level model.
    pub fn timed(dram: DramConfig, cpu_cycles_per_access: u64) -> TracedMemory {
        let mut mem = TracedMemory::traced();
        mem.dram = Some(DramModel::new(dram));
        mem.cpu_cycles_per_access = cpu_cycles_per_access;
        mem
    }

    /// Registers a buffer, placing it at a fresh address range.
    pub fn add_buf(&mut self, data: Vec<u64>) -> BufId {
        let id = BufId(self.bufs.len());
        self.bases.push(self.next_base);
        // Pad between buffers so they never share cache lines.
        self.next_base += (data.len() as u64 * 8).next_multiple_of(4096) + 4096;
        self.bufs.push(data);
        id
    }

    /// Buffer length.
    pub fn len(&self, buf: BufId) -> usize {
        self.bufs[buf.0].len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self, buf: BufId) -> bool {
        self.bufs[buf.0].is_empty()
    }

    fn touch(&mut self, buf: BufId, idx: usize, write: bool) {
        if let Some(h) = &mut self.hierarchy {
            let addr = self.bases[buf.0] + idx as u64 * 8;
            let before = h.mem_reads + h.mem_writes;
            let lookup = h.access(0, addr, write);
            if let Some(dram) = &mut self.dram {
                self.cycles += lookup as u64 + self.cpu_cycles_per_access;
                let missed = h.mem_reads + h.mem_writes > before;
                if missed {
                    let done = dram.access(addr, write, self.cycles);
                    self.cycles = done; // latency-serialized core
                }
            }
        }
    }

    /// Simulated core cycles so far (timed mode only).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Sustained DRAM bandwidth of the run so far in bytes/cycle (timed
    /// mode only; zero otherwise).
    pub fn sustained_bytes_per_cycle(&self) -> f64 {
        match &self.dram {
            Some(d) if self.cycles > 0 => d.accesses as f64 * 64.0 / self.cycles as f64,
            _ => 0.0,
        }
    }

    /// Reads element `idx` of `buf`.
    pub fn read(&mut self, buf: BufId, idx: usize) -> u64 {
        self.touch(buf, idx, false);
        self.bufs[buf.0][idx]
    }

    /// Writes element `idx` of `buf`.
    pub fn write(&mut self, buf: BufId, idx: usize, value: u64) {
        self.touch(buf, idx, true);
        self.bufs[buf.0][idx] = value;
    }

    /// Swaps two elements of `buf`.
    pub fn swap(&mut self, buf: BufId, i: usize, j: usize) {
        let a = self.read(buf, i);
        let b = self.read(buf, j);
        self.write(buf, i, b);
        self.write(buf, j, a);
    }

    /// Consumes the memory and returns a buffer's contents.
    pub fn into_buf(mut self, buf: BufId) -> Vec<u64> {
        std::mem::take(&mut self.bufs[buf.0])
    }

    /// Below-cache line accesses observed so far (zero when untraced).
    pub fn mem_accesses(&self) -> u64 {
        self.hierarchy.as_ref().map_or(0, Hierarchy::mem_accesses)
    }
}

/// Bottom-up mergesort using one scratch buffer.
pub fn merge_sort(mem: &mut TracedMemory, data: BufId) -> BufId {
    let n = mem.len(data);
    let scratch = mem.add_buf(vec![0; n]);
    let (mut src, mut dst) = (data, scratch);
    let mut width = 1usize;
    while width < n {
        let mut lo = 0usize;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                let a = mem.read(src, i);
                let b = mem.read(src, j);
                if a <= b {
                    mem.write(dst, k, a);
                    i += 1;
                } else {
                    mem.write(dst, k, b);
                    j += 1;
                }
                k += 1;
            }
            while i < mid {
                let a = mem.read(src, i);
                mem.write(dst, k, a);
                i += 1;
                k += 1;
            }
            while j < hi {
                let b = mem.read(src, j);
                mem.write(dst, k, b);
                j += 1;
                k += 1;
            }
            lo = hi;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    src
}

/// In-place quicksort (Hoare partitioning, median-of-three pivots,
/// insertion sort below a cut-off — §II-B's description).
pub fn quick_sort(mem: &mut TracedMemory, data: BufId) {
    let n = mem.len(data);
    if n > 1 {
        quick_sort_range(mem, data, 0, n - 1);
    }
}

fn quick_sort_range(mem: &mut TracedMemory, data: BufId, lo: usize, hi: usize) {
    const CUTOFF: usize = 16;
    if hi - lo < CUTOFF {
        insertion_sort_range(mem, data, lo, hi);
        return;
    }
    // Median of three.
    let mid = lo + (hi - lo) / 2;
    let (a, b, c) = (mem.read(data, lo), mem.read(data, mid), mem.read(data, hi));
    let pivot = a.max(b).min(a.min(b).max(c));
    let (mut i, mut j) = (lo, hi);
    loop {
        while mem.read(data, i) < pivot {
            i += 1;
        }
        while mem.read(data, j) > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        mem.swap(data, i, j);
        i += 1;
        j = j.saturating_sub(1);
    }
    if j > lo {
        quick_sort_range(mem, data, lo, j);
    }
    if j + 1 < hi {
        quick_sort_range(mem, data, j + 1, hi);
    }
}

fn insertion_sort_range(mem: &mut TracedMemory, data: BufId, lo: usize, hi: usize) {
    for i in lo + 1..=hi {
        let v = mem.read(data, i);
        let mut j = i;
        while j > lo {
            let prev = mem.read(data, j - 1);
            if prev <= v {
                break;
            }
            mem.write(data, j, prev);
            j -= 1;
        }
        mem.write(data, j, v);
    }
}

/// LSD radixsort with 8-bit digits over 64-bit keys (§II-B).
pub fn radix_sort(mem: &mut TracedMemory, data: BufId) -> BufId {
    let n = mem.len(data);
    let scratch = mem.add_buf(vec![0; n]);
    let (mut src, mut dst) = (data, scratch);
    for pass in 0..8u32 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for i in 0..n {
            let d = (mem.read(src, i) >> shift) as usize & 0xFF;
            counts[d] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for d in 0..256 {
            offsets[d] = acc;
            acc += counts[d];
        }
        for i in 0..n {
            let v = mem.read(src, i);
            let d = (v >> shift) as usize & 0xFF;
            mem.write(dst, offsets[d], v);
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// In-place heapsort (§II-B: root removal + re-heap).
pub fn heap_sort(mem: &mut TracedMemory, data: BufId) {
    let n = mem.len(data);
    if n < 2 {
        return;
    }
    for start in (0..n / 2).rev() {
        sift_down(mem, data, start, n);
    }
    for end in (1..n).rev() {
        mem.swap(data, 0, end);
        sift_down(mem, data, 0, end);
    }
}

fn sift_down(mem: &mut TracedMemory, data: BufId, mut root: usize, len: usize) {
    loop {
        let child = 2 * root + 1;
        if child >= len {
            return;
        }
        let mut largest = child;
        if child + 1 < len && mem.read(data, child + 1) > mem.read(data, child) {
            largest = child + 1;
        }
        if mem.read(data, largest) <= mem.read(data, root) {
            return;
        }
        mem.swap(data, root, largest);
        root = largest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_workloads::keys::{generate_u64, KeyDistribution};

    fn check_sorts(keys: Vec<u64>) {
        let mut want = keys.clone();
        want.sort_unstable();

        // mergesort
        let mut mem = TracedMemory::untraced();
        let buf = mem.add_buf(keys.clone());
        let out = merge_sort(&mut mem, buf);
        assert_eq!(mem.into_buf(out), want, "mergesort");

        // quicksort
        let mut mem = TracedMemory::untraced();
        let buf = mem.add_buf(keys.clone());
        quick_sort(&mut mem, buf);
        assert_eq!(mem.into_buf(buf), want, "quicksort");

        // radixsort
        let mut mem = TracedMemory::untraced();
        let buf = mem.add_buf(keys.clone());
        let out = radix_sort(&mut mem, buf);
        assert_eq!(mem.into_buf(out), want, "radixsort");

        // heapsort
        let mut mem = TracedMemory::untraced();
        let buf = mem.add_buf(keys);
        heap_sort(&mut mem, buf);
        assert_eq!(mem.into_buf(buf), want, "heapsort");
    }

    #[test]
    fn all_kernels_sort_uniform_keys() {
        check_sorts(generate_u64(3_000, KeyDistribution::Uniform, 1));
    }

    #[test]
    fn all_kernels_sort_adversarial_inputs() {
        check_sorts(generate_u64(1_000, KeyDistribution::Sorted, 2));
        check_sorts(generate_u64(1_000, KeyDistribution::Reverse, 3));
        check_sorts(generate_u64(
            1_000,
            KeyDistribution::FewDistinct { distinct: 3 },
            4,
        ));
    }

    #[test]
    fn all_kernels_sort_tiny_inputs() {
        check_sorts(vec![]);
        check_sorts(vec![42]);
        check_sorts(vec![2, 1]);
        check_sorts(vec![7, 7, 7]);
    }

    #[test]
    fn tracing_counts_below_cache_traffic() {
        // A working set ≫ L2 must reach memory; a tiny one must not.
        let big = generate_u64(2_000_000, KeyDistribution::Uniform, 5);
        let mut mem = TracedMemory::traced();
        let buf = mem.add_buf(big);
        let _ = radix_sort(&mut mem, buf);
        assert!(mem.mem_accesses() > 100_000, "{}", mem.mem_accesses());

        let small = generate_u64(1_000, KeyDistribution::Uniform, 6);
        let mut mem = TracedMemory::traced();
        let buf = mem.add_buf(small);
        let _ = radix_sort(&mut mem, buf);
        // Only compulsory misses: ~1k keys = 125 lines × a few buffers/passes.
        assert!(mem.mem_accesses() < 5_000, "{}", mem.mem_accesses());
    }

    #[test]
    fn timed_mode_orders_kernels_like_the_phase_model() {
        // On the off-chip DDR4 model, the timed end-to-end simulation must
        // reproduce the phase model's headline ordering at memory-bound
        // sizes: quicksort beats radixsort (Fig. 2(c)).
        let n = 900_000usize;
        let keys = generate_u64(n, KeyDistribution::Uniform, 9);
        let ddr4 = rime_memsim::DramConfig::ddr4_offchip();

        let mut mem = TracedMemory::timed(ddr4, 2);
        let buf = mem.add_buf(keys.clone());
        quick_sort(&mut mem, buf);
        let quick_cycles = mem.cycles();

        let mut mem = TracedMemory::timed(ddr4, 2);
        let buf = mem.add_buf(keys);
        let _ = radix_sort(&mut mem, buf);
        let radix_cycles = mem.cycles();

        assert!(quick_cycles > 0 && radix_cycles > 0);
        assert!(
            radix_cycles > quick_cycles,
            "radix {radix_cycles} vs quick {quick_cycles}"
        );
    }

    #[test]
    fn timed_mode_reports_sub_peak_bandwidth() {
        let keys = generate_u64(400_000, KeyDistribution::Uniform, 10);
        let cfg = rime_memsim::DramConfig::ddr4_offchip();
        let mut mem = TracedMemory::timed(cfg, 2);
        let buf = mem.add_buf(keys);
        let _ = merge_sort(&mut mem, buf);
        let bw = mem.sustained_bytes_per_cycle();
        assert!(bw > 0.0 && bw < cfg.peak_bytes_per_cycle(), "{bw}");
    }

    #[test]
    fn buffers_do_not_alias() {
        let mut mem = TracedMemory::untraced();
        let a = mem.add_buf(vec![1, 2, 3]);
        let b = mem.add_buf(vec![9, 9, 9]);
        mem.write(a, 0, 5);
        assert_eq!(mem.read(b, 0), 9);
        assert_eq!(mem.len(a), 3);
        assert!(!mem.is_empty(b));
    }
}
