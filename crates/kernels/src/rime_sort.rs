//! RIME-backed sorting: the functional path through the device model and
//! the analytic throughput used at paper scale (Fig. 15's "RIME" series).
//!
//! The RIME sort kernels stripe their data across every chip (the
//! explicit-address `rime_malloc` of Fig. 12 permits this), then stream
//! the global order out with repeated `rime_min` accesses — the Fig. 14
//! coordination that keeps all chips computing concurrently and leaves
//! throughput insensitive to data size (§VII-A).

use rime_core::{ops, Placement, RimeConfig, RimeDevice, RimeError, RimePerfConfig, SortableBits};

/// Functionally sorts `keys` through a RIME device, returning the sorted
/// vector. Data is split across `stripes` regions to engage multiple
/// chips, then merged — the RIME sort kernel's structure.
///
/// # Errors
///
/// Propagates device errors (e.g. capacity exhaustion).
pub fn sort_via_device<T>(
    device: &mut RimeDevice,
    keys: &[T],
    stripes: usize,
) -> Result<Vec<T>, RimeError>
where
    T: SortableBits + PartialOrd,
{
    if keys.is_empty() {
        return Ok(Vec::new());
    }
    let stripes = stripes.clamp(1, keys.len());
    let chunk = keys.len().div_ceil(stripes);
    let mut regions = Vec::new();
    for part in keys.chunks(chunk) {
        let region = device.alloc(part.len() as u64)?;
        device.write(region, 0, part)?;
        regions.push(region);
    }
    let merged = ops::merge::<T>(device, &regions)?;
    for region in regions {
        device.free(region)?;
    }
    Ok(merged)
}

/// Convenience: sort on a fresh small device (tests, examples).
///
/// # Errors
///
/// Propagates device errors.
pub fn sort_small<T>(keys: &[T]) -> Result<Vec<T>, RimeError>
where
    T: SortableBits + PartialOrd,
{
    let mut device = RimeDevice::new(RimeConfig::small());
    sort_via_device(&mut device, keys, 4)
}

/// Analytic RIME sort throughput in MKps for `n` keys (Fig. 15).
pub fn throughput_mkps(n: u64, perf: &RimePerfConfig) -> f64 {
    perf.sort_throughput_mkps(n, Placement::Striped)
}

/// Analytic RIME sort wall-clock seconds for `n` keys, including the bulk
/// load of the input data over the interface.
pub fn sort_seconds(n: u64, perf: &RimePerfConfig) -> f64 {
    perf.load_seconds(n, 8, Placement::Striped) + perf.stream_seconds(n, n, Placement::Striped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_workloads::keys::{generate_f32_signed, generate_u64, KeyDistribution};

    #[test]
    fn device_sort_matches_std() {
        let keys = generate_u64(2_000, KeyDistribution::Uniform, 42);
        let got = sort_small(&keys).unwrap();
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn device_sort_with_duplicates() {
        let keys = generate_u64(1_000, KeyDistribution::FewDistinct { distinct: 5 }, 43);
        let got = sort_small(&keys).unwrap();
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn device_sort_floats() {
        let keys = generate_f32_signed(500, 44);
        let got = sort_small(&keys).unwrap();
        let mut want = keys;
        want.sort_unstable_by(f32::total_cmp);
        assert_eq!(got, want);
    }

    #[test]
    fn single_stripe_still_sorts() {
        let keys = vec![5u32, 3, 9, 1];
        let mut device = RimeDevice::new(RimeConfig::small());
        assert_eq!(
            sort_via_device(&mut device, &keys, 1).unwrap(),
            vec![1, 3, 5, 9]
        );
        assert_eq!(
            sort_via_device(&mut device, &Vec::<u32>::new(), 4).unwrap(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn analytic_throughput_flat_in_n() {
        let perf = RimePerfConfig::table1();
        let t0 = throughput_mkps(500_000, &perf);
        let t1 = throughput_mkps(65_000_000, &perf);
        assert!((t0 - t1).abs() / t1 < 0.1, "{t0} vs {t1}");
        assert!(sort_seconds(65_000_000, &perf) > sort_seconds(500_000, &perf));
    }
}
