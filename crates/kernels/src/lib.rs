//! # rime-kernels
//!
//! The four baseline sorting kernels the paper evaluates (§II-B, §VI-C) —
//! mergesort, quicksort, radixsort, heapsort — plus their RIME-backed
//! counterparts, in two coupled layers:
//!
//! * [`exec`] — real, runnable implementations over an instrumented
//!   memory ([`exec::TracedMemory`]) that drives the exact cache/DRAM
//!   models of `rime-memsim`, used for correctness tests and to *measure*
//!   below-cache traffic at validation scale;
//! * [`model`] — analytic per-kernel traffic/compute decompositions
//!   ([`model::SortAlgorithm::workload`]) that generate
//!   `rime_memsim::perf::Workload`s for full-scale sweeps (Figs. 1, 2,
//!   15), validated against [`exec`] in this crate's tests;
//! * [`rime_sort`] — the RIME path: functional sorting through the
//!   `rime-core` device, and its analytic throughput via
//!   `rime_core::perf`;
//! * [`hybrid`] — the RIME-accelerated versions of all four kernels the
//!   evaluation runs on the proposed architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod hybrid;
pub mod model;
pub mod rime_sort;

pub use model::SortAlgorithm;
