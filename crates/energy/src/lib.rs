//! # rime-energy
//!
//! System power and energy models (§VI-B, §VII-B).
//!
//! The paper estimates system energy with McPAT (processor), the Micron
//! power calculator (off-chip DRAM), prior work on fine-grained DRAM
//! (in-package HBM), and its own circuit characterization (RIME). We
//! substitute closed-form activity-based models whose constants are
//! chosen so the baselines' *relative* energies reproduce §VII-B:
//!
//! * the HBM system carries **both** an in-package memory and the
//!   off-chip DRAM, so when it cannot shorten execution (A*-Search,
//!   strict priority queues) its extra background power makes it ~24 %
//!   *worse* than the off-chip baseline;
//! * where HBM does shorten execution, system energy drops ~40 %;
//! * RIME runs far shorter, moves almost no data, and its non-volatile
//!   arrays burn no refresh/leakage, yielding >90 % savings.
//!
//! Fig. 19 normalizes everything to the off-chip baseline, so only these
//! ratios matter — absolute watts are stated for transparency, not
//! fidelity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rime_memsim::perf::Execution;

/// Power-model constants. All powers in watts, energies in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Dynamic power of one busy core (McPAT-class OoO core at 22 nm).
    pub core_dynamic_w: f64,
    /// Static/leakage power per core (always on while the app runs).
    pub core_static_w: f64,
    /// Uncore/LLC static power.
    pub uncore_static_w: f64,
    /// Off-chip DRAM background power (refresh + standby, all ranks).
    pub dram_background_w: f64,
    /// Off-chip DRAM energy per 64 B line transferred (nJ).
    pub dram_nj_per_line: f64,
    /// In-package memory background power.
    pub hbm_background_w: f64,
    /// In-package memory energy per 64 B line (nJ) — cheaper I/O.
    pub hbm_nj_per_line: f64,
    /// RIME DIMM background power (non-volatile: no refresh; peripheral
    /// logic only). §VII-B bounds the whole DIMM at 1 W peak.
    pub rime_background_w: f64,
    /// RIME energy per extraction (nJ/chip, Table I: 51.3 for 64 steps).
    pub rime_nj_per_extraction: f64,
    /// RIME interface energy per transferred value (nJ).
    pub rime_nj_per_transfer: f64,
}

impl PowerModel {
    /// The calibrated model (see module docs).
    pub fn table1() -> PowerModel {
        PowerModel {
            core_dynamic_w: 1.5,
            core_static_w: 0.3,
            uncore_static_w: 8.0,
            dram_background_w: 6.0,
            dram_nj_per_line: 35.0,
            hbm_background_w: 9.0,
            hbm_nj_per_line: 12.0,
            rime_background_w: 0.25,
            rime_nj_per_extraction: 51.3,
            rime_nj_per_transfer: 2.0,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::table1()
    }
}

/// Energy of one baseline run (joules), split by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Processor energy (dynamic + static).
    pub cpu_j: f64,
    /// Off-chip DRAM energy.
    pub dram_j: f64,
    /// In-package memory energy (zero for the off-chip system).
    pub hbm_j: f64,
    /// RIME DIMM energy (zero for the baselines).
    pub rime_j: f64,
}

impl EnergyBreakdown {
    /// Total system energy in joules.
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.dram_j + self.hbm_j + self.rime_j
    }
}

/// Which memory system a run executed on (determines background power).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// CPU + off-chip DRAM.
    OffChip,
    /// CPU + in-package HBM + off-chip DRAM (both present, §VII-B).
    InPackage,
    /// CPU + RIME DIMMs (+ idle off-chip DRAM for code/stack).
    Rime,
}

/// Computes the energy of a baseline execution.
///
/// `exec` comes from `rime_memsim::perf::Workload::execute`; `cores` is
/// the active core count.
pub fn baseline_energy(
    model: &PowerModel,
    kind: SystemKind,
    exec: &Execution,
    cores: u32,
    clock_ghz: f64,
) -> EnergyBreakdown {
    let secs = exec.total_cycles / (clock_ghz * 1e9);
    let busy_core_secs = exec.cpu_busy_cycles / (clock_ghz * 1e9);
    let cpu_j = busy_core_secs * model.core_dynamic_w
        + secs * (model.core_static_w * cores as f64 + model.uncore_static_w);
    let lines = exec.mem_bytes as f64 / 64.0;
    let (dram_j, hbm_j) = match kind {
        SystemKind::OffChip => (
            secs * model.dram_background_w + lines * model.dram_nj_per_line * 1e-9,
            0.0,
        ),
        SystemKind::InPackage => (
            // Off-chip DRAM still present and refreshing; traffic goes to
            // the in-package memory.
            secs * model.dram_background_w,
            secs * model.hbm_background_w + lines * model.hbm_nj_per_line * 1e-9,
        ),
        SystemKind::Rime => (secs * model.dram_background_w, 0.0),
    };
    EnergyBreakdown {
        cpu_j,
        dram_j,
        hbm_j,
        rime_j: 0.0,
    }
}

/// Computes the energy of a RIME execution.
///
/// * `secs` — wall-clock seconds of the RIME-accelerated run;
/// * `cpu_busy_core_secs` — core-seconds the library/application spent;
/// * `extractions` — in-situ min/max computations performed;
/// * `transfers` — values moved over the DDR4 interface;
/// * `cores` — cores powered during the run.
pub fn rime_energy(
    model: &PowerModel,
    secs: f64,
    cpu_busy_core_secs: f64,
    extractions: u64,
    transfers: u64,
    cores: u32,
) -> EnergyBreakdown {
    let cpu_j = cpu_busy_core_secs * model.core_dynamic_w
        + secs * (model.core_static_w * cores as f64 + model.uncore_static_w);
    let rime_j = secs * model.rime_background_w
        + extractions as f64 * model.rime_nj_per_extraction * 1e-9
        + transfers as f64 * model.rime_nj_per_transfer * 1e-9;
    EnergyBreakdown {
        cpu_j,
        dram_j: secs * model.dram_background_w,
        hbm_j: 0.0,
        rime_j,
    }
}

/// Average power of a RIME DIMM while continuously extracting with
/// `concurrent_chips` chips active — the §VII-B 1 W budget check.
pub fn rime_dimm_power_w(model: &PowerModel, concurrent_chips: u32, extract_ns: f64) -> f64 {
    model.rime_background_w + concurrent_chips as f64 * model.rime_nj_per_extraction / extract_ns
}

/// A [`rime_core::Telemetry`] sink that accumulates RIME dynamic energy
/// from the device's command stream: completed extractions (per-chip
/// counter deltas) and DDR4 interface transfers, priced by a
/// [`PowerModel`]. Attach with `RimeDevice::attach_telemetry`, then read
/// [`EnergySink::dynamic_nj`] — background power is time-based and stays
/// with [`rime_energy`].
///
/// Optionally publishes into a [`rime_core::MetricsRegistry`] via
/// [`EnergySink::bind_metrics`], so energy shows up in the same
/// Prometheus/JSON exports as the executor's command metrics.
#[derive(Debug, Clone)]
pub struct EnergySink {
    model: PowerModel,
    extractions: u64,
    transfers: u64,
    metrics: Option<BoundMetrics>,
}

/// Registry handles the sink updates alongside its own accumulators.
#[derive(Debug, Clone)]
struct BoundMetrics {
    extractions: rime_core::metrics::Counter,
    transfers: rime_core::metrics::Counter,
    dynamic_nj: rime_core::metrics::Gauge,
}

impl PartialEq for EnergySink {
    fn eq(&self, other: &Self) -> bool {
        // Registry handles are plumbing, not state: two sinks that
        // observed the same stream compare equal regardless of binding.
        self.model == other.model
            && self.extractions == other.extractions
            && self.transfers == other.transfers
    }
}

impl EnergySink {
    /// A zeroed sink pricing events with `model`.
    pub fn new(model: PowerModel) -> EnergySink {
        EnergySink {
            model,
            extractions: 0,
            transfers: 0,
            metrics: None,
        }
    }

    /// Publishes this sink's accumulators into `registry` as
    /// `rime_energy_extractions_total`, `rime_energy_transfers_total`,
    /// and the `rime_energy_dynamic_nj` gauge (integer nanojoules).
    /// Totals observed before binding are carried over.
    pub fn bind_metrics(&mut self, registry: &rime_core::MetricsRegistry) {
        let bound = BoundMetrics {
            extractions: registry.counter(
                "rime_energy_extractions_total",
                &[],
                "extractions priced by the energy sink",
            ),
            transfers: registry.counter(
                "rime_energy_transfers_total",
                &[],
                "interface transfers priced by the energy sink",
            ),
            dynamic_nj: registry.gauge(
                "rime_energy_dynamic_nj",
                &[],
                "accumulated dynamic RIME energy in nanojoules",
            ),
        };
        bound.extractions.add(self.extractions);
        bound.transfers.add(self.transfers);
        bound.dynamic_nj.set(self.dynamic_nj() as i64);
        self.metrics = Some(bound);
    }

    /// Extractions observed so far.
    pub fn extractions(&self) -> u64 {
        self.extractions
    }

    /// Interface transfers observed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Accumulated dynamic RIME energy (nJ): extraction plus interface
    /// transfer energy, excluding background power.
    pub fn dynamic_nj(&self) -> f64 {
        self.extractions as f64 * self.model.rime_nj_per_extraction
            + self.transfers as f64 * self.model.rime_nj_per_transfer
    }
}

impl Default for EnergySink {
    fn default() -> Self {
        EnergySink::new(PowerModel::table1())
    }
}

impl rime_core::Telemetry for EnergySink {
    fn record(&mut self, event: &rime_core::TelemetryEvent<'_>) {
        let mut extracted = 0u64;
        for (_, delta) in event.effects.chip_deltas() {
            extracted += delta.extractions;
        }
        let transferred = event.effects.interface_transfers();
        self.extractions += extracted;
        self.transfers += transferred;
        if let Some(m) = &self.metrics {
            m.extractions.add(extracted);
            m.transfers.add(transferred);
            m.dynamic_nj.set(self.dynamic_nj() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rime_memsim::perf::{Phase, Workload};
    use rime_memsim::SystemConfig;

    fn run(kind: SystemKind, cores: u32, n: u64) -> (EnergyBreakdown, f64) {
        // A mergesort-shaped 65M-key run: ~15 memory passes of 24 B/key.
        let w = Workload::new(vec![Phase::streaming("pass", n * 15, 245.0, 15 * 24 * n)]);
        let sys = match kind {
            SystemKind::OffChip => SystemConfig::off_chip(cores),
            SystemKind::InPackage => SystemConfig::in_package(cores),
            SystemKind::Rime => SystemConfig::unlimited(cores),
        };
        let exec = w.execute(&sys);
        let secs = exec.total_seconds();
        (
            baseline_energy(&PowerModel::table1(), kind, &exec, cores, 2.0),
            secs,
        )
    }

    #[test]
    fn hbm_saves_energy_on_memory_bound_work() {
        // §VII-B: HBM cuts execution time on streaming apps → ~40 % less.
        let (off, t_off) = run(SystemKind::OffChip, 16, 65_000_000);
        let (hbm, t_hbm) = run(SystemKind::InPackage, 16, 65_000_000);
        assert!(t_hbm < t_off);
        let ratio = hbm.total_j() / off.total_j();
        assert!((0.3..0.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hbm_wastes_energy_when_it_cannot_speed_up() {
        // §VII-B: equal execution times → HBM's extra background power
        // costs ~24 % more energy.
        let model = PowerModel::table1();
        let w = Workload::new(vec![Phase::dependent("chase", 1_000_000, 40.0, 64_000_000)]);
        let off_exec = w.execute(&SystemConfig::off_chip(16));
        let hbm_exec = w.execute(&SystemConfig::in_package(16));
        let off = baseline_energy(&model, SystemKind::OffChip, &off_exec, 16, 2.0);
        let hbm = baseline_energy(&model, SystemKind::InPackage, &hbm_exec, 16, 2.0);
        let ratio = hbm.total_j() / off.total_j();
        assert!((1.0..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rime_saves_more_than_90_percent() {
        // Fig. 19: RIME cuts system energy by ≥90 %.
        let model = PowerModel::table1();
        let (off, t_off) = run(SystemKind::OffChip, 16, 65_000_000);
        // RIME at ~35 MKps sorts 65M keys in ~1.9 s.
        let n = 65_000_000u64;
        let secs = n as f64 / 35e6;
        let rime = rime_energy(&model, secs, secs * 2.0, n, n, 16);
        assert!(t_off > secs);
        let reduction = 1.0 - rime.total_j() / off.total_j();
        assert!(reduction > 0.9, "reduction {reduction}");
    }

    #[test]
    fn rime_dimm_stays_near_1w() {
        // §VII-B: peak DIMM power ~1 W with a handful of active chips.
        let model = PowerModel::table1();
        let p5 = rime_dimm_power_w(&model, 5, 286.8);
        assert!((0.5..1.5).contains(&p5), "{p5} W");
    }

    #[test]
    fn energy_sink_prices_the_command_stream() {
        use rime_core::telemetry::shared;
        use rime_core::{RimeConfig, RimeDevice};

        let model = PowerModel::table1();
        let dev = RimeDevice::new(RimeConfig::small());
        let sink = shared(EnergySink::new(model));
        dev.attach_telemetry(sink.clone());
        let region = dev.alloc(8).unwrap();
        dev.write(region, 0, &[9u32, 2, 7, 4, 5, 1, 8, 3]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let _ = dev.rime_min_k::<u32>(region, 4).unwrap();
        let sink = sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let c = dev.counters();
        assert_eq!(sink.extractions(), c.extractions);
        assert_eq!(sink.transfers(), dev.interface_transfers());
        let want = c.extractions as f64 * model.rime_nj_per_extraction
            + dev.interface_transfers() as f64 * model.rime_nj_per_transfer;
        assert!((sink.dynamic_nj() - want).abs() < 1e-9);
        assert!(sink.dynamic_nj() > 0.0);
    }

    #[test]
    fn energy_sink_publishes_bound_metrics() {
        use rime_core::metrics::MetricValue;
        use rime_core::telemetry::shared;
        use rime_core::{RimeConfig, RimeDevice};

        let model = PowerModel::table1();
        let dev = RimeDevice::new(RimeConfig::small());
        let mut sink = EnergySink::new(model);
        sink.bind_metrics(dev.metrics());
        let sink = shared(sink);
        dev.attach_telemetry(sink.clone());
        let region = dev.alloc(8).unwrap();
        dev.write(region, 0, &[9u32, 2, 7, 4, 5, 1, 8, 3]).unwrap();
        dev.init_all::<u32>(region).unwrap();
        let _ = dev.rime_min_k::<u32>(region, 4).unwrap();
        let sink = sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let snap = dev.metrics_snapshot();
        let value = |name: &str| {
            snap.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
                .clone()
        };
        assert_eq!(
            value("rime_energy_extractions_total"),
            MetricValue::Counter(sink.extractions())
        );
        assert_eq!(
            value("rime_energy_transfers_total"),
            MetricValue::Counter(sink.transfers())
        );
        assert_eq!(
            value("rime_energy_dynamic_nj"),
            MetricValue::Gauge(sink.dynamic_nj() as i64)
        );
    }

    #[test]
    fn breakdown_totals() {
        let b = EnergyBreakdown {
            cpu_j: 1.0,
            dram_j: 2.0,
            hbm_j: 3.0,
            rime_j: 4.0,
        };
        assert_eq!(b.total_j(), 10.0);
    }
}
