//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate reimplements the slice of proptest the repo uses: the
//! `proptest!` macro, `Strategy` with `prop_map`, `any`, range
//! strategies, `prop::collection::vec`, `prop::option::of`, `Just`,
//! `prop_oneof!`, the three `prop_assert*` macros, `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its deterministic seed and
//!   case index instead; rerunning the test replays the identical case.
//! - **Deterministic by default.** Case `i` of test `name` is seeded
//!   from `hash(name) ⊕ i`, so failures reproduce without an env var.
//! - Value distributions are uniform rather than proptest's
//!   edge-case-biased ones, except floats, which mix raw bit patterns
//!   (hitting NaN, infinities, subnormals, `-0.0`) with finite values.

use std::fmt;

/// Deterministic PRNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x6a09_e667_f3bc_c909,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Result type produced by a `proptest!` case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, like upstream `prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for use in heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Upstream-style entry point: `any::<T>()` yields arbitrary `T`s.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix raw uniform bits with small magnitudes so boundary
                // behaviour (0, 1, all-ones) is exercised regularly, in
                // the spirit of proptest's biased integer strategy.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => (rng.next_u64() % 4) as $t,
                    2 => <$t>::MAX - (rng.next_u64() % 4) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        match rng.next_u64() % 4 {
            // Raw bit patterns cover NaN, ±inf, subnormals, and -0.0 —
            // exactly the values the total-order encoding must handle.
            0 => f32::from_bits(rng.next_u64() as u32),
            1 => {
                let small = (rng.next_u64() % 2048) as f32 - 1024.0;
                small / 8.0
            }
            _ => {
                let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
                (unit - 0.5) * 2.0e9
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 4 {
            0 => f64::from_bits(rng.next_u64()),
            1 => {
                let small = (rng.next_u64() % 2048) as f64 - 1024.0;
                small / 8.0
            }
            _ => {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (unit - 0.5) * 2.0e18
            }
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// Length domain for [`vec()`]: built from `usize` or `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec<T>` strategy with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use super::{Strategy, TestRng};

    /// `Option<T>` strategy: `Some` three times out of four, mirroring
    /// upstream's Some-biased default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone, Copy)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

/// Executes one property: `cases` deterministic cases seeded from the
/// test name. Called by the [`proptest!`] expansion, not directly.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let name_seed = fnv1a(name.as_bytes());
    let mut rejected = 0u32;
    for index in 0..config.cases {
        let seed = name_seed ^ (index as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest property '{name}' failed at case {index} (seed {seed:#x}):\n{msg}")
            }
        }
    }
    assert!(
        rejected < config.cases,
        "proptest property '{name}': every case was rejected by prop_assume!"
    );
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Formats a failed-assertion message (macro support).
pub fn fail_message(detail: fmt::Arguments<'_>) -> TestCaseError {
    TestCaseError::Fail(detail.to_string())
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection`, `prop::option`).
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Declares property tests. Supports the upstream form used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in strategy, y in other) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)*
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property-test assertion: fails the case (with its seed) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::fail_message(format_args!($($fmt)*)),
            );
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let v = crate::Strategy::sample(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn float_any_hits_non_finite() {
        let mut rng = crate::TestRng::new(3);
        let strategy = any::<f64>();
        let non_finite = (0..4000)
            .filter(|_| !crate::Strategy::sample(&strategy, &mut rng).is_finite())
            .count();
        assert!(non_finite > 0, "bit-pattern arm should produce non-finite");
    }

    #[test]
    fn vec_respects_size_range() {
        let s = prop::collection::vec(any::<u32>(), 3..6);
        let mut rng = crate::TestRng::new(4);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((3..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, ys in prop::collection::vec(any::<u32>(), 1..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assume!(x != 1_000_000); // always holds; exercises the macro
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(crate::TestCaseError::Fail("boom".into()))
        });
    }
}
