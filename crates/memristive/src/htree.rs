//! The bidirectional data/index H-tree (§IV-B.2, Figs. 10 & 11).
//!
//! Unlike a conventional address tree, RIME's tree carries information in
//! both directions:
//!
//! * **Upstream — index reduction (Fig. 10):** after a min/max computation,
//!   each mat raises `E` (it contains the extreme value) with an initial
//!   index `A`; every tree node combines its children as
//!   `Eₙ = E₀ ∨ E₁`, `Aₙ = (E₀ ∧ E₁ ? 0,A₀ : E₀ ? 0,A₀ : 1,A₁)` — i.e. a
//!   priority encoder that always prefers the lower-address child, which is
//!   what makes RIME's sort *stable*.
//! * **Downstream — select-vector initialization (Fig. 11):** `begin`/`end`
//!   of an address range flow root-to-leaves, pruning branches entirely
//!   below/above the range; surviving leaves latch select bits for the
//!   rows inside the range.
//!
//! [`IndexTree`] implements both walks over the chip's mats and counts node
//! visits for the performance layer.

/// The H-tree over a chip's mats.
///
/// # Example
///
/// ```
/// use rime_memristive::IndexTree;
///
/// let mut tree = IndexTree::new(4, 8); // 4 mats × 8 slots
/// // Mats 1 and 3 contain the min, at local rows 5 and 0.
/// let global = tree.reduce(&[None, Some(5), None, Some(0)]);
/// assert_eq!(global, Some(13)); // lowest address wins: mat 1, slot 5
/// ```
#[derive(Debug, Clone)]
pub struct IndexTree {
    n_mats: usize,
    slots_per_mat: u64,
    node_visits: u64,
}

impl IndexTree {
    /// Builds a tree over `n_mats` leaves, each owning `slots_per_mat`
    /// key slots.
    ///
    /// # Panics
    ///
    /// Panics if `n_mats` or `slots_per_mat` is zero.
    pub fn new(n_mats: usize, slots_per_mat: u64) -> IndexTree {
        assert!(n_mats > 0, "tree needs at least one mat");
        assert!(slots_per_mat > 0, "mats need at least one slot");
        IndexTree {
            n_mats,
            slots_per_mat,
            node_visits: 0,
        }
    }

    /// Number of leaf mats.
    pub fn n_mats(&self) -> usize {
        self.n_mats
    }

    /// Cumulative node visits across all walks (performance accounting).
    pub fn node_visits(&self) -> u64 {
        self.node_visits
    }

    /// Resets the visit counter.
    pub fn reset_visits(&mut self) {
        self.node_visits = 0;
    }

    /// Upstream index reduction: given each mat's lowest selected local
    /// slot (`None` when the mat holds no extreme value), returns the
    /// global slot of the winner — the lowest-addressed extreme value.
    pub fn reduce(&mut self, leaf_hits: &[Option<u32>]) -> Option<u64> {
        assert_eq!(leaf_hits.len(), self.n_mats, "one hit slot per mat");
        self.reduce_span(leaf_hits, 0, self.n_mats)
    }

    fn reduce_span(&mut self, hits: &[Option<u32>], lo: usize, hi: usize) -> Option<u64> {
        self.node_visits += 1;
        if hi - lo == 1 {
            return hits[lo].map(|row| lo as u64 * self.slots_per_mat + row as u64);
        }
        let mid = lo + (hi - lo).div_ceil(2);
        // E₀ has priority: the lower-address child wins ties.
        match self.reduce_span(hits, lo, mid) {
            Some(idx) => Some(idx),
            None => self.reduce_span(hits, mid, hi),
        }
    }

    /// Downstream select-vector initialization: intersects the global slot
    /// range `[begin, end)` with each mat and returns, per touched mat,
    /// the local slot sub-range to latch. Branches fully outside the range
    /// are pruned without visiting their subtrees (Fig. 11).
    pub fn init_range(&mut self, begin: u64, end: u64) -> Vec<MatRange> {
        let mut out = Vec::new();
        self.init_span(begin, end, 0, self.n_mats, &mut out);
        out
    }

    fn init_span(&mut self, begin: u64, end: u64, lo: usize, hi: usize, out: &mut Vec<MatRange>) {
        self.node_visits += 1;
        let span_begin = lo as u64 * self.slots_per_mat;
        let span_end = hi as u64 * self.slots_per_mat;
        if end <= span_begin || begin >= span_end {
            return; // pruned branch
        }
        if hi - lo == 1 {
            let local_start = begin.saturating_sub(span_begin).min(self.slots_per_mat) as u32;
            let local_end = (end.min(span_end) - span_begin) as u32;
            if local_start < local_end {
                out.push(MatRange {
                    mat: lo as u32,
                    start: local_start,
                    end: local_end,
                });
            }
            return;
        }
        let mid = lo + (hi - lo).div_ceil(2);
        self.init_span(begin, end, lo, mid, out);
        self.init_span(begin, end, mid, hi, out);
    }
}

/// A per-mat slice of a global initialization range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatRange {
    /// Mat index within the chip.
    pub mat: u32,
    /// First local slot inside the range.
    pub start: u32,
    /// One past the last local slot inside the range.
    pub end: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_prefers_lowest_mat() {
        let mut tree = IndexTree::new(4, 8);
        assert_eq!(tree.reduce(&[None, Some(5), None, Some(0)]), Some(13));
        assert_eq!(tree.reduce(&[Some(7), Some(0), Some(0), Some(0)]), Some(7));
        assert_eq!(tree.reduce(&[None, None, None, None]), None);
    }

    #[test]
    fn reduce_single_mat() {
        let mut tree = IndexTree::new(1, 16);
        assert_eq!(tree.reduce(&[Some(3)]), Some(3));
        assert_eq!(tree.reduce(&[None]), None);
    }

    #[test]
    fn reduce_non_power_of_two_mats() {
        let mut tree = IndexTree::new(3, 4);
        assert_eq!(tree.reduce(&[None, None, Some(2)]), Some(10));
        assert_eq!(tree.reduce(&[None, Some(1), Some(0)]), Some(5));
    }

    #[test]
    fn fig10_example_sixteen_arrays() {
        // Fig. 10: 16 arrays across 4 mats; arrays 2, 7, 12 hold the value.
        // With one slot per "array-leaf", the reduced index is array 2.
        let mut tree = IndexTree::new(16, 1);
        let mut hits = vec![None; 16];
        for idx in [2usize, 7, 12] {
            hits[idx] = Some(0);
        }
        assert_eq!(tree.reduce(&hits), Some(2));
    }

    #[test]
    fn fig11_range_init() {
        // Fig. 11: range [5, 10] inclusive over 16 slots (4 mats × 4).
        let mut tree = IndexTree::new(4, 4);
        let ranges = tree.init_range(5, 11);
        assert_eq!(
            ranges,
            vec![
                MatRange {
                    mat: 1,
                    start: 1,
                    end: 4
                },
                MatRange {
                    mat: 2,
                    start: 0,
                    end: 3
                },
            ]
        );
    }

    #[test]
    fn init_range_single_mat_interior() {
        let mut tree = IndexTree::new(4, 8);
        let ranges = tree.init_range(10, 12);
        assert_eq!(
            ranges,
            vec![MatRange {
                mat: 1,
                start: 2,
                end: 4
            }]
        );
    }

    #[test]
    fn init_range_prunes_outside_branches() {
        let mut tree = IndexTree::new(8, 4);
        tree.reset_visits();
        let ranges = tree.init_range(0, 4); // only mat 0
        assert_eq!(ranges.len(), 1);
        // Visits: root + one node per level on the left spine, far fewer
        // than the 15 nodes of the full tree.
        assert!(tree.node_visits() < 8, "visits = {}", tree.node_visits());
    }

    #[test]
    fn init_range_full_span() {
        let mut tree = IndexTree::new(3, 4);
        let ranges = tree.init_range(0, 12);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| r.start == 0 && r.end == 4));
    }

    #[test]
    fn visits_accumulate_and_reset() {
        let mut tree = IndexTree::new(4, 4);
        let _ = tree.reduce(&[Some(0), None, None, None]);
        assert!(tree.node_visits() > 0);
        tree.reset_visits();
        assert_eq!(tree.node_visits(), 0);
    }

    #[test]
    #[should_panic(expected = "one hit slot per mat")]
    fn reduce_wrong_arity_panics() {
        IndexTree::new(4, 4).reduce(&[None, None]);
    }
}
