//! Device timing, energy, and area constants (Table I and §VI-B).
//!
//! The paper characterizes the RIME arrays with SPICE/Spectre at 22 nm and
//! reports the resulting constants in Table I; this module carries those
//! numbers and converts operation counts into time and energy. The full
//! `tCompute = 282.5 ns` is interpreted as one complete min/max computation
//! over 64-bit keys (64 column-search steps ≈ 64 × tRead plus periphery
//! overhead), so a `k`-bit, `s`-step computation scales as `s / 64`.

use crate::counters::OpCounters;

/// Table I timing, voltage, energy, and area parameters for the RIME
/// memristive memory.
///
/// # Example
///
/// ```
/// use rime_memristive::ArrayTiming;
///
/// let t = ArrayTiming::table1();
/// // One full 64-step min/max computation plus the row read of the result.
/// let ns = t.extraction_time_ns(64) + t.t_read_ns;
/// assert!((ns - 286.8).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayTiming {
    /// Row read latency (ns).
    pub t_read_ns: f64,
    /// Row write latency (ns).
    pub t_write_ns: f64,
    /// Full in-situ min/max computation latency for a 64-step search (ns).
    pub t_compute_ns: f64,
    /// Read voltage (V).
    pub v_read: f64,
    /// Write voltage (V).
    pub v_write: f64,
    /// Compute voltage (V).
    pub v_compute: f64,
    /// Energy of one full min/max computation per chip (nJ).
    pub e_compute_per_chip_nj: f64,
    /// Energy of one row read (nJ); derived from read voltage/current budget.
    pub e_read_nj: f64,
    /// Energy of one row write (nJ).
    pub e_write_nj: f64,
    /// Die area (mm²).
    pub die_area_mm2: f64,
}

impl ArrayTiming {
    /// The Table I / §VI-B characterization.
    pub fn table1() -> ArrayTiming {
        ArrayTiming {
            t_read_ns: 4.3,
            t_write_ns: 54.2,
            t_compute_ns: 282.5,
            v_read: 1.0,
            v_write: 2.0,
            v_compute: 1.0,
            e_compute_per_chip_nj: 51.3,
            // Per-access array energies consistent with the compute budget:
            // a 64-step compute (~64 column reads + periphery) costs 51.3 nJ,
            // so one sensed access is on the order of 0.8 nJ; writes at 2 V
            // and 12.6× the latency cost proportionally more.
            e_read_nj: 0.8,
            e_write_nj: 4.0,
            die_area_mm2: 20.54,
        }
    }

    /// Reference number of steps `tCompute` corresponds to (64-bit keys).
    pub const COMPUTE_REF_STEPS: u16 = 64;

    /// Latency of one in-situ min/max extraction that executed
    /// `steps` column-search steps (early exit shortens it, §IV-B.2).
    pub fn extraction_time_ns(&self, steps: u16) -> f64 {
        self.t_compute_ns * f64::from(steps) / f64::from(Self::COMPUTE_REF_STEPS)
    }

    /// Energy of one extraction that executed `steps` steps, per chip (nJ).
    pub fn extraction_energy_nj(&self, steps: u16) -> f64 {
        self.e_compute_per_chip_nj * f64::from(steps) / f64::from(Self::COMPUTE_REF_STEPS)
    }

    /// Converts a full counter set into busy time (ns) on one chip.
    ///
    /// Column-search steps dominate compute; row reads/writes account for
    /// data movement into and out of the arrays.
    pub fn time_ns(&self, counters: &OpCounters) -> f64 {
        self.extraction_time_ns(1) * counters.column_search_steps as f64
            + self.t_read_ns * counters.row_reads as f64
            + self.t_write_ns * counters.row_writes as f64
    }

    /// Converts a full counter set into array energy (nJ) on one chip.
    pub fn energy_nj(&self, counters: &OpCounters) -> f64 {
        self.extraction_energy_nj(1) * counters.column_search_steps as f64
            + self.e_read_nj * counters.row_reads as f64
            + self.e_write_nj * counters.row_writes as f64
    }
}

impl Default for ArrayTiming {
    fn default() -> Self {
        ArrayTiming::table1()
    }
}

/// Area overheads of the RIME periphery (§VI-B): match vectors cost 3 % per
/// mat; with latches, control logic, tree reduction, and multiplexers each
/// mat grows 8 % and the die 5 %.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaOverheads {
    /// Match-vector latches, fraction of mat area.
    pub match_vector_per_mat: f64,
    /// All additional periphery, fraction of mat area.
    pub total_per_mat: f64,
    /// All additional periphery, fraction of die area.
    pub total_per_die: f64,
}

impl AreaOverheads {
    /// The §VI-B synthesized overheads.
    pub fn table1() -> AreaOverheads {
        AreaOverheads {
            match_vector_per_mat: 0.03,
            total_per_mat: 0.08,
            total_per_die: 0.05,
        }
    }

    /// RIME die area including the periphery overhead (mm²).
    pub fn rime_die_area_mm2(&self, timing: &ArrayTiming) -> f64 {
        timing.die_area_mm2 * (1.0 + self.total_per_die)
    }
}

impl Default for AreaOverheads {
    fn default() -> Self {
        AreaOverheads::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let t = ArrayTiming::table1();
        assert_eq!(t.t_read_ns, 4.3);
        assert_eq!(t.t_write_ns, 54.2);
        assert_eq!(t.t_compute_ns, 282.5);
        assert_eq!(t.e_compute_per_chip_nj, 51.3);
        assert_eq!(t.die_area_mm2, 20.54);
    }

    #[test]
    fn extraction_scales_with_steps() {
        let t = ArrayTiming::table1();
        assert!((t.extraction_time_ns(64) - 282.5).abs() < 1e-9);
        assert!((t.extraction_time_ns(32) - 141.25).abs() < 1e-9);
        assert!(t.extraction_time_ns(1) < t.extraction_time_ns(2));
        assert!((t.extraction_energy_nj(64) - 51.3).abs() < 1e-9);
    }

    #[test]
    fn counter_conversion() {
        let t = ArrayTiming::table1();
        let mut c = OpCounters {
            column_search_steps: 64,
            row_reads: 1,
            ..OpCounters::default()
        };
        let ns = t.time_ns(&c);
        assert!((ns - (282.5 + 4.3)).abs() < 1e-9);
        c.row_writes = 2;
        assert!(t.time_ns(&c) > ns);
        assert!(t.energy_nj(&c) > 0.0);
    }

    #[test]
    fn area_overheads() {
        let a = AreaOverheads::table1();
        let die = a.rime_die_area_mm2(&ArrayTiming::table1());
        assert!((die - 20.54 * 1.05).abs() < 1e-9);
    }
}
