//! Normal-storage-mode datapath (§V).
//!
//! A RIME chip that boots in normal storage mode serves ordinary
//! byte-addressable reads and writes: each mat row (4 arrays × up to 64
//! data bits per row in this model) holds a run of bytes, accessed
//! through the same sense/drive circuitry as row reads/writes (Fig. 8).
//! [`NormalStorageView`] adapts a [`Chip`] into that byte-addressable
//! device so normal-mode DIMMs share the cell model — including wear
//! tracking and stuck-at faults — with the ranking mode.
//!
//! Mapping: byte address `a` lives in key slot `a / 8`, byte `a % 8`
//! (little-endian within the slot's 64-bit row).

use crate::chip::Chip;
use crate::encoding::KeyFormat;
use crate::error::Error;

/// Byte-addressable view over a chip in normal storage mode.
#[derive(Debug)]
pub struct NormalStorageView<'c> {
    chip: &'c mut Chip,
}

impl<'c> NormalStorageView<'c> {
    /// Wraps a chip. The caller is responsible for not mixing ranking
    /// operations into a normal-mode chip (the DIMM mode is fixed at
    /// boot, §V).
    pub fn new(chip: &'c mut Chip) -> NormalStorageView<'c> {
        NormalStorageView { chip }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.chip.capacity() * 8
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), Error> {
        // `addr + len` can wrap for addresses near u64::MAX (silently, in
        // release builds), which would defeat the bounds check entirely —
        // treat arithmetic overflow as out of range.
        let end = addr
            .checked_add(len as u64)
            .ok_or(Error::AddressOutOfRange {
                addr,
                capacity: self.capacity_bytes(),
            })?;
        if end > self.capacity_bytes() {
            return Err(Error::AddressOutOfRange {
                addr: end,
                capacity: self.capacity_bytes(),
            });
        }
        Ok(())
    }

    /// Writes `data` starting at byte address `addr` (read-modify-write
    /// on partially covered rows, as the drive circuitry would).
    ///
    /// # Errors
    ///
    /// [`Error::AddressOutOfRange`] if the run exceeds capacity.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), Error> {
        self.check(addr, data.len())?;
        let mut idx = 0usize;
        while idx < data.len() {
            let byte_addr = addr + idx as u64;
            let slot = byte_addr / 8;
            let offset = (byte_addr % 8) as usize;
            let take = (8 - offset).min(data.len() - idx);
            let mut word = self.chip.read_key(slot)?.to_le_bytes();
            word[offset..offset + take].copy_from_slice(&data[idx..idx + take]);
            self.chip
                .store_keys(slot, &[u64::from_le_bytes(word)], KeyFormat::UNSIGNED64)?;
            idx += take;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`Error::AddressOutOfRange`] if the run exceeds capacity.
    pub fn read_bytes(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, Error> {
        self.check(addr, len)?;
        let mut out = Vec::with_capacity(len);
        let mut idx = 0usize;
        while idx < len {
            let byte_addr = addr + idx as u64;
            let slot = byte_addr / 8;
            let offset = (byte_addr % 8) as usize;
            let take = (8 - offset).min(len - idx);
            let word = self.chip.read_key(slot)?.to_le_bytes();
            out.extend_from_slice(&word[offset..offset + take]);
            idx += take;
        }
        Ok(out)
    }

    /// Writes one little-endian `u64` at an 8-byte-aligned address.
    ///
    /// # Errors
    ///
    /// [`Error::AddressOutOfRange`] for out-of-range addresses.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), Error> {
        assert_eq!(addr % 8, 0, "u64 access must be aligned");
        self.check(addr, 8)?;
        self.chip
            .store_keys(addr / 8, &[value], KeyFormat::UNSIGNED64)
    }

    /// Reads one little-endian `u64` from an 8-byte-aligned address.
    ///
    /// # Errors
    ///
    /// [`Error::AddressOutOfRange`] for out-of-range addresses.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, Error> {
        assert_eq!(addr % 8, 0, "u64 access must be aligned");
        self.check(addr, 8)?;
        self.chip.read_key(addr / 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ChipGeometry;

    fn chip() -> Chip {
        Chip::new(ChipGeometry::tiny())
    }

    #[test]
    fn aligned_word_roundtrip() {
        let mut c = chip();
        let mut view = NormalStorageView::new(&mut c);
        view.write_u64(16, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(view.read_u64(16).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(view.read_u64(8).unwrap(), 0);
    }

    #[test]
    fn unaligned_bytes_roundtrip() {
        let mut c = chip();
        let mut view = NormalStorageView::new(&mut c);
        let data = b"memristive ranking!";
        view.write_bytes(13, data).unwrap();
        assert_eq!(view.read_bytes(13, data.len()).unwrap(), data);
    }

    #[test]
    fn partial_writes_preserve_neighbors() {
        let mut c = chip();
        let mut view = NormalStorageView::new(&mut c);
        view.write_u64(0, u64::MAX).unwrap();
        view.write_bytes(3, &[0]).unwrap();
        let word = view.read_u64(0).unwrap();
        assert_eq!(word, !(0xFFu64 << 24));
    }

    #[test]
    fn capacity_and_bounds() {
        let mut c = chip();
        let mut view = NormalStorageView::new(&mut c);
        let cap = view.capacity_bytes();
        assert_eq!(cap, 64 * 8);
        assert!(view.write_bytes(cap - 1, &[1]).is_ok());
        assert!(view.write_bytes(cap, &[1]).is_err());
        assert!(view.read_bytes(cap - 2, 3).is_err());
    }

    #[test]
    fn huge_address_overflow_is_out_of_range_not_wraparound() {
        // Regression: `addr + len` used to wrap for addresses near
        // u64::MAX, letting the access through the bounds check.
        let mut c = chip();
        let mut view = NormalStorageView::new(&mut c);
        let addr = u64::MAX - 4;
        assert!(matches!(
            view.write_bytes(addr, &[1, 2, 3, 4, 5, 6, 7, 8]),
            Err(Error::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            view.read_bytes(addr, 8),
            Err(Error::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            view.read_bytes(u64::MAX, 1),
            Err(Error::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn wear_tracks_normal_writes_too() {
        let mut c = chip();
        {
            let mut view = NormalStorageView::new(&mut c);
            for _ in 0..5 {
                view.write_u64(0, 42).unwrap();
            }
        }
        assert_eq!(c.max_wear(), 5);
    }

    #[test]
    fn faults_visible_through_the_byte_view() {
        let mut c = chip();
        c.inject_stuck_cell(0, 7, true).unwrap();
        let mut view = NormalStorageView::new(&mut c);
        view.write_bytes(0, &[0]).unwrap();
        assert_eq!(view.read_bytes(0, 1).unwrap(), vec![0x80]);
    }
}
