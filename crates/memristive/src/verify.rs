//! Model checking for the bit-serial search schedule.
//!
//! Anyone extending [`SearchPlan`] (new formats, different polarity
//! rules) needs confidence that the schedule still selects exactly the
//! extreme rows. This module exhaustively checks small configurations —
//! every multiset of `n` `k`-bit patterns — against the comparison-based
//! ground truth of [`KeyFormat::compare_bits`], for both directions.
//!
//! Exhaustive checking is feasible because correctness of the bit-serial
//! schedule is *columnwise local*: a counterexample, if one exists,
//! already shows up at small `k` and `n` (each step only examines one
//! column and the survivor set, so failures do not require wide keys).

use crate::bitmap::Bitmap;
use crate::encoding::KeyFormat;
use crate::plan::{Direction, SearchPlan};
use crate::reference::{extreme_row, extreme_row_by_compare};

/// A counterexample found by [`check_exhaustive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The offending key multiset (raw patterns).
    pub keys: Vec<u64>,
    /// Direction that failed.
    pub direction: Direction,
    /// Row the schedule selected.
    pub got: Option<usize>,
    /// Row the ground truth selects.
    pub want: Option<usize>,
}

/// Exhaustively verifies `format` over every multiset of `n` patterns of
/// the format's width (so `2^(k·n)` cases — keep `k·n ≲ 16`). Returns
/// the number of cases checked.
///
/// # Errors
///
/// The first [`Mismatch`] found.
///
/// # Panics
///
/// Panics if the state space exceeds 2²⁴ cases.
pub fn check_exhaustive(format: KeyFormat, n: usize) -> Result<u64, Mismatch> {
    let k = format.bits() as u32;
    let bits = k as usize * n;
    assert!(bits <= 24, "state space 2^{bits} too large to enumerate");
    let domain = 1u64 << k;
    let cases = domain.pow(n as u32);
    let all = Bitmap::ones(n);
    let mut keys = vec![0u64; n];
    for case in 0..cases {
        let mut x = case;
        for key in keys.iter_mut() {
            *key = x % domain;
            x /= domain;
        }
        for direction in [Direction::Min, Direction::Max] {
            let plan = SearchPlan::new(format, direction);
            let got = extreme_row(&plan, &keys, &all);
            let want = extreme_row_by_compare(format, direction == Direction::Min, &keys, &all);
            if got != want {
                return Err(Mismatch {
                    keys,
                    direction,
                    got,
                    want,
                });
            }
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_4bit_triples_are_exhaustively_correct() {
        let cases = check_exhaustive(KeyFormat::unsigned_fixed(4, 0), 3).unwrap();
        assert_eq!(cases, 4096);
    }

    #[test]
    fn signed_4bit_triples_are_exhaustively_correct() {
        assert!(check_exhaustive(KeyFormat::signed_fixed(4, 0), 3).is_ok());
    }

    #[test]
    fn fixed_point_split_does_not_change_ordering() {
        // uq2.2 orders exactly like u4.
        assert!(check_exhaustive(KeyFormat::unsigned_fixed(2, 2), 3).is_ok());
        assert!(check_exhaustive(KeyFormat::signed_fixed(2, 2), 3).is_ok());
    }

    #[test]
    fn five_keys_of_three_bits() {
        let cases = check_exhaustive(KeyFormat::unsigned_fixed(3, 0), 5).unwrap();
        assert_eq!(cases, 1 << 15);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_space_rejected() {
        let _ = check_exhaustive(KeyFormat::UNSIGNED32, 2);
    }
}
