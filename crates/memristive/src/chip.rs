//! The RIME chip: banks/subbanks/mats under a chip controller (§IV-B.2).
//!
//! The chip controller coordinates the bit-serial search across mats using
//! the two-signal protocol of Fig. 9: every active mat reports, per column
//! search, whether its selected cells were all-equal and whether any held a
//! 1; the controller wire-ORs these, decides globally whether an exclusion
//! is warranted, and orders every mat to latch its match vector (or not).
//! After the search converges, the data/index H-tree priority-encodes the
//! winner's address (Fig. 10), the row is read out, and its *exclusion
//! flag* is set so subsequent sort accesses skip it (§III-B.1).
//!
//! Mats materialize lazily: a full Table I chip models 2 M key slots, but
//! storage is only allocated for mats that actually hold data.
//!
//! # Parallel mat fan-out
//!
//! In hardware every mat senses its column simultaneously and the
//! signals meet at wire-OR nodes on the way up the H-tree (Fig. 9/10).
//! The model mirrors that with a persistent mat-shard worker pool
//! ([`crate::pool::MatPool`]): long-lived workers each own a fixed
//! shard of the range's mats for the duration of an extraction session.
//! A whole bit-serial descent ships to the workers as *one* broadcast —
//! each worker speculates its shard's descent against its local wire-OR
//! view and the controller folds the recorded traces in fixed worker
//! order into the exact global decision sequence, replaying a divergent
//! suffix only when a shard's local signals could have changed a global
//! decision (see [`crate::pool`] for why the fold is exact). Because
//! the fold reconstructs the same per-step wire-OR and removed-row sums
//! the sequential walk computes, every [`OpCounters`] field is
//! bit-identical whatever the thread count ([`ParallelPolicy`] is purely
//! a scheduling knob). The retired per-step `thread::scope` fan-out
//! survives as [`ParallelPolicy::SpawnPerStep`], kept as a benchmark
//! baseline and an extra differential subject.
//!
//! [`ParallelPolicy::Auto`] gates pool use on a *measured* crossover:
//! a one-shot process-wide calibration ([`crate::pool::pool_calibration`])
//! prices a broadcast→fold round trip against per-mat step cost, and the
//! chip derives the span width where leasing the pool starts winning
//! (overridable via `RIME_POOL_CROSSOVER` for reproducible CI).

use std::sync::Arc;

use crate::array::ColumnSignals;
use crate::bitmap::Bitmap;
use crate::counters::OpCounters;
use crate::encoding::KeyFormat;
use crate::error::Error;
use crate::geometry::ChipGeometry;
use crate::htree::IndexTree;
use crate::mat::{Mat, MatState};
use crate::plan::{Direction, SearchPlan};
use crate::pool::{pool_calibration, Dirty, MatPool};
use crate::probe::{timed, Phase, SharedProbe};

/// Result of one in-situ min/max extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractHit {
    /// Global key-slot address of the extracted value (lowest address among
    /// ties — RIME's sort is stable).
    pub slot: u64,
    /// The raw stored bit pattern.
    pub raw_bits: u64,
    /// Column-search steps executed (≤ key width; early exit shortens it).
    pub steps: u16,
}

/// How the chip controller fans each column-search step out across mats.
///
/// Hardware mats always operate simultaneously; this knob only controls
/// how the *model* schedules them onto OS threads. Results and
/// [`OpCounters`] are identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelPolicy {
    /// Walk the mats on the calling thread — the differential oracle.
    Sequential,
    /// Route ranges spanning at least the *measured* crossover width
    /// (see [`Chip::pool_crossover_mats`]) through the persistent
    /// mat-shard pool with `min(host parallelism, mats in range)`
    /// workers, where host parallelism is `available_parallelism`
    /// (cached per chip, re-queried whenever the pool is rebuilt).
    /// Narrower ranges — and hosts whose parallelism is 1 — stay on
    /// the calling thread. The default.
    #[default]
    Auto,
    /// Drive the persistent pool with exactly this many workers
    /// (`0` and `1` stay on the calling thread).
    Threads(usize),
    /// Legacy scheduling: open a fresh `thread::scope` with this many
    /// workers on *every* column-search step. Retained as a benchmark
    /// baseline for the pool and as an extra differential subject; new
    /// code wants [`ParallelPolicy::Threads`] or
    /// [`ParallelPolicy::Auto`].
    SpawnPerStep(usize),
}

/// How a given extraction session is actually scheduled.
enum Fanout {
    /// Walk (or scope-spawn over) the mats on the calling side with this
    /// many threads per step.
    Host(usize),
    /// Lease the span to the persistent pool with this many workers.
    Pool(usize),
}

/// Clamp bounds for the Auto crossover (mats): below 2 the pool can
/// never win (single-mat spans short-circuit anyway), and a pathological
/// calibration sample must not push the crossover past any real span.
const POOL_CROSSOVER_MIN: usize = 2;
const POOL_CROSSOVER_MAX: usize = 1 << 20;

/// Where a pooled descent's replay path finds the span's select
/// membership: the batch loop already holds it as a shared `Arc`, while
/// a single extraction rebuilds it from the exclusion flags on demand
/// (replay never fires on the natural path, so the rebuild is free in
/// the common case).
#[derive(Clone, Copy)]
enum MembershipSource<'a> {
    /// Clone this shared membership vector (batch path).
    Shared(&'a Arc<Bitmap>),
    /// Rebuild `[begin, end)` minus the exclusion flags (single path).
    Rebuild { begin: u64, end: u64 },
}

/// Serializable snapshot of one chip's durable state, for
/// checkpoint/recovery: per-mat cell contents (lazily materialized mats
/// stay `None`), the exclusion flags, the active format/range, and the
/// accumulated [`OpCounters`]. Scheduling knobs ([`ParallelPolicy`],
/// probes, the worker pool) and volatile select latches are not state —
/// a restored chip keeps its own and re-arms latches on the next
/// extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipState {
    /// Per-mat snapshots in mat order; `None` for never-materialized mats.
    pub mats: Vec<Option<MatState>>,
    /// Exclusion flags (one bit per key slot).
    pub excluded: Bitmap,
    /// Format recorded by the last `store_keys`/`init_range`.
    pub format: Option<KeyFormat>,
    /// Active `[begin, end)` range, if initialized.
    pub range: Option<(u64, u64)>,
    /// Accumulated operation counters.
    pub counters: OpCounters,
}

/// One RIME memristive chip.
///
/// See the [crate-level example](crate) for end-to-end usage.
pub struct Chip {
    geometry: ChipGeometry,
    mats: Vec<Option<Mat>>,
    tree: IndexTree,
    /// Exclusion flags (CMOS latches, §VII-C — not wear-inducing).
    excluded: Bitmap,
    format: Option<KeyFormat>,
    range: Option<(u64, u64)>,
    counters: OpCounters,
    parallel: ParallelPolicy,
    /// Route column searches through the row-major scalar oracle instead
    /// of the bit-sliced column shadow. Only settable with the
    /// `scalar-oracle` feature (or in tests); both paths are
    /// observationally identical — hits and counters bit-equal — which
    /// the differential suite proves.
    scalar_oracle: bool,
    /// Host parallelism, queried at construction and re-queried whenever
    /// the pool is rebuilt (`available_parallelism` is a syscall-backed
    /// lookup; re-querying per extraction range was measurable on the
    /// batch path, but a parked-then-rebuilt pool must not keep a stale
    /// thread count).
    auto_threads: usize,
    /// Measured Auto crossover (mats), derived lazily from the one-shot
    /// pool calibration (or `RIME_POOL_CROSSOVER`). Invalidated together
    /// with `auto_threads` when the pool is rebuilt.
    pool_crossover: Option<usize>,
    /// Test knob: bail initial pool speculation after this many steps so
    /// the fold exercises the divergence-replay path.
    pool_force_replay: Option<u16>,
    /// Test knob: explicit per-worker shard sizes for pool leases
    /// (overrides the worker count with the plan's length).
    pool_shard_plan: Option<Vec<usize>>,
    /// Persistent mat-shard workers, built lazily on first pooled
    /// extraction and kept across sessions. `None` until then (and in
    /// clones — worker threads are per-instance).
    pool: Option<MatPool>,
    /// Reusable per-mat firsts buffer for the H-tree reduction —
    /// allocation-free readout on the pooled path.
    firsts_scratch: Vec<Option<u32>>,
    /// Extraction/pool observer (rime-core's metrics layer). `None` keeps
    /// every instrumented path free of clock reads.
    probe: Option<SharedProbe>,
}

impl std::fmt::Debug for Chip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chip")
            .field("geometry", &self.geometry)
            .field("mats", &self.mats)
            .field("tree", &self.tree)
            .field("excluded", &self.excluded)
            .field("format", &self.format)
            .field("range", &self.range)
            .field("counters", &self.counters)
            .field("parallel", &self.parallel)
            .field("scalar_oracle", &self.scalar_oracle)
            .field("auto_threads", &self.auto_threads)
            .field("pool_crossover", &self.pool_crossover)
            .field("pool", &self.pool)
            .field("probe", &self.probe.as_ref().map(|_| "installed"))
            .finish()
    }
}

impl Clone for Chip {
    fn clone(&self) -> Chip {
        Chip {
            geometry: self.geometry,
            mats: self.mats.clone(),
            tree: self.tree.clone(),
            excluded: self.excluded.clone(),
            format: self.format,
            range: self.range,
            counters: self.counters,
            parallel: self.parallel,
            scalar_oracle: self.scalar_oracle,
            auto_threads: self.auto_threads,
            pool_crossover: self.pool_crossover,
            pool_force_replay: self.pool_force_replay,
            pool_shard_plan: self.pool_shard_plan.clone(),
            // Worker threads are not shareable state; the clone builds
            // its own pool on first pooled extraction.
            pool: None,
            firsts_scratch: Vec::new(),
            probe: self.probe.clone(),
        }
    }
}

impl Chip {
    /// Creates an empty chip with the given geometry.
    pub fn new(geometry: ChipGeometry) -> Chip {
        let mats = geometry.mats() as usize;
        Chip {
            geometry,
            mats: vec![None; mats],
            tree: IndexTree::new(mats, geometry.slots_per_mat()),
            excluded: Bitmap::zeros(geometry.capacity_slots() as usize),
            format: None,
            range: None,
            counters: OpCounters::new(),
            parallel: ParallelPolicy::Auto,
            scalar_oracle: false,
            auto_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            pool_crossover: None,
            pool_force_replay: None,
            pool_shard_plan: None,
            pool: None,
            firsts_scratch: Vec::new(),
            probe: None,
        }
    }

    /// Installs (or removes) an extraction probe. Probes observe phase
    /// timing, step counts, and pool activity — they never touch
    /// [`OpCounters`], so results and counters are identical with or
    /// without one. See [`crate::probe::ExtractionProbe`].
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    /// Routes every column search and exclusion through the row-major
    /// scalar path instead of the bit-sliced column shadow — the
    /// differential oracle. Available only with the `scalar-oracle`
    /// feature (or in unit tests); production builds always run
    /// bit-sliced.
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn set_scalar_oracle(&mut self, scalar: bool) {
        self.scalar_oracle = scalar;
    }

    /// The chip's geometry.
    pub fn geometry(&self) -> &ChipGeometry {
        &self.geometry
    }

    /// The active mat fan-out policy.
    pub fn parallel_policy(&self) -> ParallelPolicy {
        self.parallel
    }

    /// Sets how column-search steps are scheduled across mats. Purely a
    /// model-execution knob: extraction results and counters do not
    /// depend on it.
    pub fn set_parallel_policy(&mut self, policy: ParallelPolicy) {
        self.parallel = policy;
    }

    /// Decides how this session's span is scheduled. Single-mat spans
    /// always stay on the calling thread — no fan-out can help them.
    fn fanout(&mut self, mats_in_range: usize) -> Fanout {
        if mats_in_range <= 1 {
            return Fanout::Host(1);
        }
        match self.parallel {
            ParallelPolicy::Sequential => Fanout::Host(1),
            ParallelPolicy::SpawnPerStep(n) => Fanout::Host(n.clamp(1, mats_in_range)),
            ParallelPolicy::Threads(0 | 1) => Fanout::Host(1),
            ParallelPolicy::Threads(n) => Fanout::Pool(n),
            ParallelPolicy::Auto => {
                if self.auto_threads <= 1 || mats_in_range < self.pool_crossover_mats() {
                    Fanout::Host(1)
                } else {
                    Fanout::Pool(self.auto_threads.min(mats_in_range))
                }
            }
        }
    }

    /// Span width (in mats) where [`ParallelPolicy::Auto`] starts leasing
    /// the pool. Derived lazily from the one-shot process-wide
    /// calibration ([`crate::pool::pool_calibration`]) and cached until
    /// the pool is rebuilt; `RIME_POOL_CROSSOVER=<mats>` overrides the
    /// measurement for reproducible runs. Always in
    /// `[2, 2^20]`.
    pub fn pool_crossover_mats(&mut self) -> usize {
        if let Some(crossover) = self.pool_crossover {
            return crossover;
        }
        let crossover = std::env::var("RIME_POOL_CROSSOVER")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| self.measured_crossover())
            .clamp(POOL_CROSSOVER_MIN, POOL_CROSSOVER_MAX);
        self.pool_crossover = Some(crossover);
        crossover
    }

    /// Prices the pool against the inline walk from the calibration
    /// sample: a pooled descent costs one broadcast→fold round trip and
    /// saves the host `(threads-1)/threads` of the span's per-mat step
    /// work, so the pool wins once
    /// `mats × steps × per_mat_step × (threads-1)/threads > round_trip`.
    fn measured_crossover(&self) -> usize {
        let cal = pool_calibration();
        let words_per_mat =
            u64::from(self.geometry.arrays_per_mat) * u64::from(self.geometry.rows).div_ceil(64);
        // Each step touches every select word twice (sense + exclusion).
        let per_mat_step_ps = 2 * words_per_mat * cal.word_picos;
        let threads = self.auto_threads.max(2) as u64;
        // A full-width descent (64 steps) is the unit the protocol
        // amortizes the round trip over.
        let saved_per_mat_ps = 64 * per_mat_step_ps * (threads - 1) / threads;
        (cal.round_trip_ns.saturating_mul(1000))
            .div_ceil(saved_per_mat_ps.max(1))
            .try_into()
            .unwrap_or(POOL_CROSSOVER_MAX)
    }

    /// Test knob: make pool workers bail their *initial* speculation
    /// after `limit` steps, forcing the fold through the divergence
    /// replay path (replayed runs always complete). `None` disarms.
    /// Purely a scheduling knob — results and counters are unchanged,
    /// which is exactly what the replay proptests pin.
    pub fn set_pool_force_replay(&mut self, limit: Option<u16>) {
        self.pool_force_replay = limit;
    }

    /// Test knob: pin an explicit shard plan for pool leases —
    /// `plan[i]` mats go to worker `i`, in span order, and the worker
    /// count follows the plan's length. Lets tests drive adversarial
    /// splits (1-mat shards, maximal imbalance, empty shards) that the
    /// default contiguous chunking never produces. The plan must cover
    /// exactly the leased span or the lease panics. `None` restores
    /// default chunking.
    pub fn set_pool_shard_plan(&mut self, plan: Option<Vec<usize>>) {
        self.pool_shard_plan = plan;
    }

    /// Key-slot capacity.
    pub fn capacity(&self) -> u64 {
        self.geometry.capacity_slots()
    }

    /// Accumulated operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Resets the operation counters (not the stored data).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
        self.tree.reset_visits();
    }

    fn mat_mut(&mut self, mat: u32) -> &mut Mat {
        let geometry = self.geometry;
        self.mats[mat as usize]
            .get_or_insert_with(|| Mat::new(geometry.arrays_per_mat, geometry.rows))
    }

    fn check_slot(&self, slot: u64) -> Result<(), Error> {
        if slot >= self.capacity() {
            Err(Error::AddressOutOfRange {
                addr: slot,
                capacity: self.capacity(),
            })
        } else {
            Ok(())
        }
    }

    /// Stores raw key patterns starting at `start_slot` (ordinary DDR4
    /// writes through the interface, §V).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if the run exceeds capacity and
    /// [`Error::KeyTooWide`] if the format is wider than an array row.
    pub fn store_keys(
        &mut self,
        start_slot: u64,
        raw_keys: &[u64],
        format: KeyFormat,
    ) -> Result<(), Error> {
        if raw_keys.is_empty() {
            return Ok(());
        }
        let end = start_slot + raw_keys.len() as u64 - 1;
        self.check_slot(end)?;
        if u32::from(format.bits()) > self.geometry.cols.min(64) {
            return Err(Error::KeyTooWide {
                bits: format.bits(),
                max: self.geometry.cols.min(64) as u16,
            });
        }
        for (offset, &raw) in raw_keys.iter().enumerate() {
            let slot = start_slot + offset as u64;
            let (mat, local) = self.geometry.split_slot(slot);
            self.mat_mut(mat).write_slot(local, raw);
        }
        self.counters.row_writes += raw_keys.len() as u64;
        self.format = Some(format);
        Ok(())
    }

    /// Reads back the raw key stored at `slot` (ordinary DDR4 read).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for slots beyond capacity.
    pub fn read_key(&mut self, slot: u64) -> Result<u64, Error> {
        self.check_slot(slot)?;
        let (mat, local) = self.geometry.split_slot(slot);
        self.counters.row_reads += 1;
        Ok(self.mats[mat as usize]
            .as_ref()
            .map_or(0, |m| m.read_slot(local)))
    }

    /// `rime_init`: prepares the range `[begin, end)` for a new
    /// sort/rank/merge operation — clears its exclusion flags and walks the
    /// H-tree downstream to latch the select vectors (Fig. 11).
    ///
    /// Format agreement between stored data and ranking operations is the
    /// responsibility of the API library (`rime-core`), which tracks the
    /// format per allocation; the chip accepts whatever interpretation the
    /// controller configures.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyRange`] or [`Error::AddressOutOfRange`] for a
    /// bad range.
    pub fn init_range(&mut self, begin: u64, end: u64, format: KeyFormat) -> Result<(), Error> {
        if begin >= end {
            return Err(Error::EmptyRange { begin, end });
        }
        self.check_slot(end - 1)?;
        for slot in begin..end {
            self.excluded.set(slot as usize, false);
        }
        self.load_selection(begin, end);
        self.format = Some(format);
        self.range = Some((begin, end));
        self.counters.init_ops += 1;
        Ok(())
    }

    /// Re-latches the select vectors for the active range, skipping
    /// excluded slots. This is what the controller performs between sort
    /// accesses to rearm the search.
    ///
    /// Word-level: the membership vector (range minus exclusion flags) is
    /// assembled over the touched mat span with masked word operations,
    /// then each touched mat latches its window of it in one pass —
    /// no per-slot walks. Counter semantics are unchanged (one select
    /// load, one H-tree traversal).
    fn load_selection(&mut self, begin: u64, end: u64) {
        // Clear selection on every materialized mat, then walk the tree.
        for mat in self.mats.iter_mut().flatten() {
            mat.clear_select();
        }
        let per_mat = self.geometry.slots_per_mat();
        let (first_mat, last_mat) = self.mat_span(begin, end);
        let span_base = first_mat as u64 * per_mat;
        let span_slots = (last_mat - first_mat + 1) * per_mat as usize;
        let mut membership = Bitmap::zeros(span_slots);
        membership.set_range((begin - span_base) as usize, (end - span_base) as usize);
        let mut span_excluded = Bitmap::zeros(span_slots);
        span_excluded.assign_slice(&self.excluded, span_base as usize);
        membership.and_not_assign(&span_excluded);

        // The downstream tree walk names the touched mats (and keeps the
        // node-visit accounting identical); each one latches its window.
        // Materializing via `mat_mut` keeps select latches available even
        // before data was stored (normal for sparse test setups).
        let ranges = self.tree.init_range(begin, end);
        for range in ranges {
            let window = (range.mat as u64 * per_mat - span_base) as usize;
            self.mat_mut(range.mat)
                .load_select_window(&membership, window);
        }
        self.counters.select_loads += 1;
        self.counters.htree_traversals += 1;
    }

    /// Number of not-yet-extracted keys in the active range.
    pub fn remaining(&self) -> u64 {
        match self.range {
            None => 0,
            Some((begin, end)) => {
                let excluded = self
                    .excluded
                    .count_ones_in_range(begin as usize, end as usize)
                    as u64;
                end - begin - excluded
            }
        }
    }

    /// The active range, if initialized.
    pub fn active_range(&self) -> Option<(u64, u64)> {
        self.range
    }

    /// Extracts the next minimum (or maximum) from the active range: runs
    /// the bit-serial search, priority-encodes the winner, reads it out,
    /// and flags it for exclusion. Returns `None` when the range is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInitialized`] if no `init_range` is active.
    pub fn extract(&mut self, direction: Direction) -> Result<Option<ExtractHit>, Error> {
        let (begin, end) = self.range.ok_or(Error::NotInitialized)?;
        let format = self.format.ok_or(Error::NotInitialized)?;
        self.extract_range(begin, end, format, direction)
    }

    /// Extracts the next extreme of an explicit `[begin, end)` range —
    /// the concurrent-range form §III-B.3 requires for merge operations
    /// ("the in-memory hardware implements concurrent min/max computation
    /// on multiple data ranges"). Exclusion flags are shared chip state,
    /// so concurrent ranges must be disjoint; each range still needs a
    /// prior [`Chip::init_range`] to clear its flags.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyRange`]/[`Error::AddressOutOfRange`] for bad
    /// ranges.
    pub fn extract_range(
        &mut self,
        begin: u64,
        end: u64,
        format: KeyFormat,
        direction: Direction,
    ) -> Result<Option<ExtractHit>, Error> {
        if begin >= end {
            return Err(Error::EmptyRange { begin, end });
        }
        self.check_slot(end - 1)?;
        let plan = SearchPlan::new(format, direction);

        // Rearm the select vectors (range minus exclusion flags).
        let probe = self.probe.clone();
        let mut rearm_ns = 0u64;
        timed(&probe, &mut rearm_ns, || self.load_selection(begin, end));
        if let Some(p) = &probe {
            p.phase(Phase::Rearm, rearm_ns, 1);
        }

        // Determine the mats participating in this range.
        let (first_mat, last_mat) = self.mat_span(begin, end);

        let mut selected: u64 = 0;
        for mat in self.mats[first_mat..=last_mat].iter().flatten() {
            selected += mat.selected_count() as u64;
        }
        if selected == 0 {
            return Ok(None);
        }

        Ok(Some(match self.fanout(last_mat - first_mat + 1) {
            Fanout::Host(threads) => {
                self.converge_host(first_mat, last_mat, &plan, selected, threads)
            }
            Fanout::Pool(workers) => {
                let mut pool = self.lease_pool(first_mat, last_mat, workers);
                let hit = self.converge_pooled(
                    first_mat,
                    &mut pool,
                    &plan,
                    MembershipSource::Rebuild { begin, end },
                    Dirty::All,
                );
                self.restore_pool(first_mat, pool);
                hit
            }
        }))
    }

    /// Extracts up to `k` consecutive extremes from the active range — the
    /// top-k form of [`Chip::extract`]. Stops early (with a short vector)
    /// once the range is exhausted.
    ///
    /// Equivalent to calling `extract` until `k` hits are collected or it
    /// returns `None`: same slots, same raw bits, same stable lowest-
    /// address tie-breaking, identical [`OpCounters`]. What the batch form
    /// amortizes is host-side work: the select-vector rearm between
    /// consecutive extractions latches a word-level membership vector
    /// (one [`Bitmap::slice`] per mat) instead of re-walking the H-tree
    /// slot by slot, and range decoding/planning happen once.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInitialized`] if no `init_range` is active.
    pub fn extract_batch(
        &mut self,
        direction: Direction,
        k: usize,
    ) -> Result<Vec<ExtractHit>, Error> {
        let (begin, end) = self.range.ok_or(Error::NotInitialized)?;
        let format = self.format.ok_or(Error::NotInitialized)?;
        self.extract_range_batch(begin, end, format, direction, k)
    }

    /// Batched form of [`Chip::extract_range`]: up to `k` consecutive
    /// extremes from an explicit `[begin, end)` range. See
    /// [`Chip::extract_batch`] for the equivalence and amortization
    /// guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyRange`]/[`Error::AddressOutOfRange`] for bad
    /// ranges.
    pub fn extract_range_batch(
        &mut self,
        begin: u64,
        end: u64,
        format: KeyFormat,
        direction: Direction,
        k: usize,
    ) -> Result<Vec<ExtractHit>, Error> {
        if begin >= end {
            return Err(Error::EmptyRange { begin, end });
        }
        self.check_slot(end - 1)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let plan = SearchPlan::new(format, direction);
        let (first_mat, last_mat) = self.mat_span(begin, end);

        // Host-side membership vector: the range minus its exclusion
        // flags, kept in sync as winners are extracted so each rearm is a
        // word-parallel latch instead of a per-slot H-tree walk.
        let mut membership = Bitmap::zeros(self.capacity() as usize);
        membership.set_range(begin as usize, end as usize);
        membership.and_not_assign(&self.excluded);

        // Mats outside the span only need their stale selects cleared
        // once; in-span mats are fully overwritten by every rearm.
        for (idx, mat) in self.mats.iter_mut().enumerate() {
            if !(first_mat..=last_mat).contains(&idx) {
                if let Some(mat) = mat {
                    mat.clear_select();
                }
            }
        }

        let mut hits = Vec::with_capacity(k);
        let mut selected = membership.count_ones() as u64;
        let probe = self.probe.clone();
        match self.fanout(last_mat - first_mat + 1) {
            Fanout::Host(threads) => {
                for _ in 0..k {
                    // Rearm: one select-vector load through the H-tree,
                    // exactly as the sequential path counts it. Each mat
                    // latches its window of the membership vector in
                    // place — zero allocations per iteration.
                    let mut rearm_ns = 0u64;
                    timed(&probe, &mut rearm_ns, || {
                        let per_mat = self.geometry.slots_per_mat() as usize;
                        for idx in first_mat..=last_mat {
                            self.mat_mut(idx as u32)
                                .load_select_window(&membership, idx * per_mat);
                        }
                    });
                    if let Some(p) = &probe {
                        p.phase(Phase::Rearm, rearm_ns, 1);
                    }
                    self.counters.select_loads += 1;
                    self.counters.htree_traversals += 1;

                    if selected == 0 {
                        break;
                    }
                    let hit = self.converge_host(first_mat, last_mat, &plan, selected, threads);
                    membership.set(hit.slot as usize, false);
                    selected -= 1;
                    hits.push(hit);
                }
            }
            Fanout::Pool(workers) => {
                // One lease covers the whole batch: the membership vector
                // is shared with the workers (`Arc`), each rearm is a
                // fire-and-forget broadcast, and the mats come home only
                // after the last extraction. Counter arithmetic matches
                // the host path line for line.
                let mut pool = self.lease_pool(first_mat, last_mat, workers);
                let mut membership = Arc::new(membership);
                let mut dirty_slot: Option<u64> = None;
                for _ in 0..k {
                    // The select-vector rearm is fused into the descend
                    // broadcast (the workers latch their windows before
                    // speculating), so its wall time lands inside the
                    // descent; the modeled hardware event is the same
                    // one-traversal select load as the host path.
                    if let Some(p) = &probe {
                        p.phase(Phase::Rearm, 0, 1);
                    }
                    self.counters.select_loads += 1;
                    self.counters.htree_traversals += 1;

                    if selected == 0 {
                        break;
                    }
                    // After the first key only the previous winner's
                    // shard re-speculates; the rest serve their memoized
                    // traces (bit-identical by purity — see MatPool).
                    let dirty = match &dirty_slot {
                        None => Dirty::All,
                        Some(slot) => Dirty::Slots(std::slice::from_ref(slot)),
                    };
                    let hit = self.converge_pooled(
                        first_mat,
                        &mut pool,
                        &plan,
                        MembershipSource::Shared(&membership),
                        dirty,
                    );
                    // The next barrier (any reply-bearing request) has
                    // already passed by the time a hit returns, so the
                    // workers hold no clone and this mutates in place.
                    Arc::make_mut(&mut membership).set(hit.slot as usize, false);
                    selected -= 1;
                    dirty_slot = Some(hit.slot);
                    hits.push(hit);
                }
                self.restore_pool(first_mat, pool);
            }
        }
        Ok(hits)
    }

    /// Materializes the span's mats (empty in-range slots hold 0 and
    /// participate in ranking) and moves them into the persistent pool,
    /// building or resizing the pool if the requested worker count
    /// changed.
    fn lease_pool(&mut self, first_mat: usize, last_mat: usize, workers: usize) -> MatPool {
        for idx in first_mat..=last_mat {
            self.mat_mut(idx as u32);
        }
        let workers = match &self.pool_shard_plan {
            Some(plan) => plan.len(),
            None => workers,
        };
        let mut pool = match self.pool.take() {
            Some(pool) if pool.workers() == workers => pool,
            _ => {
                // Rebuilding the pool invalidates the host-derived
                // caches: the machine's thread budget may have changed
                // since they were computed, and a crossover priced for a
                // stale thread count would mis-gate Auto (§satellite).
                self.auto_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
                self.pool_crossover = None;
                MatPool::new(workers)
            }
        };
        pool.set_probe(self.probe.clone());
        pool.set_force_replay(self.pool_force_replay);
        let probe = self.probe.clone();
        if let Some(p) = &probe {
            p.pool_crossover(self.pool_crossover_mats());
        }
        let span: Vec<Option<Mat>> = self.mats[first_mat..=last_mat]
            .iter_mut()
            .map(Option::take)
            .collect();
        let slots_per_mat = self.geometry.slots_per_mat() as usize;
        match self.pool_shard_plan.clone() {
            Some(plan) => {
                pool.lease_with_shards(first_mat, span, slots_per_mat, self.scalar_oracle, &plan);
            }
            None => pool.lease(first_mat, span, slots_per_mat, self.scalar_oracle),
        }
        pool
    }

    /// Moves the leased mats back into the chip and parks the pool for
    /// the next session.
    fn restore_pool(&mut self, first_mat: usize, mut pool: MatPool) {
        for (offset, mat) in pool.unlease().into_iter().enumerate() {
            self.mats[first_mat + offset] = mat;
        }
        self.pool = Some(pool);
    }

    /// Indices of the first and last mats a `[begin, end)` range touches.
    fn mat_span(&self, begin: u64, end: u64) -> (usize, usize) {
        let per_mat = self.geometry.slots_per_mat();
        ((begin / per_mat) as usize, ((end - 1) / per_mat) as usize)
    }

    /// Runs the bit-serial search to convergence over `selected` armed
    /// rows in `mats[first_mat..=last_mat]`, priority-encodes the winner,
    /// reads it out, and flags it excluded. The caller has already armed
    /// the select vectors and counted `selected > 0`. Host-side
    /// scheduling: `threads == 1` walks inline, `threads > 1` opens a
    /// `thread::scope` per step (the legacy
    /// [`ParallelPolicy::SpawnPerStep`] baseline).
    fn converge_host(
        &mut self,
        first_mat: usize,
        last_mat: usize,
        plan: &SearchPlan,
        mut selected: u64,
        threads: usize,
    ) -> ExtractHit {
        let probe = self.probe.clone();
        let (mut sense_ns, mut exclude_ns, mut reduce_ns, mut readout_ns) = (0u64, 0, 0, 0);
        let mut exclusions = 0u64;
        let mut survivors_negative = false;
        let mut steps_executed = 0u16;
        for step in 0..plan.steps() {
            if selected <= 1 {
                break; // §IV-B.2: stop once a single value remains
            }
            steps_executed += 1;
            let pos = plan.position(step);

            // Column search on every active mat; wire-OR the signals
            // (fanned out across threads per the chip's policy).
            let (global, active_mats) = timed(&probe, &mut sense_ns, || {
                sense_step(
                    &self.mats[first_mat..=last_mat],
                    pos,
                    threads,
                    self.scalar_oracle,
                )
            });
            self.counters.column_search_steps += 1;
            self.counters.mat_column_searches += active_mats;

            if plan.is_sign_step(step) {
                survivors_negative = plan.survivors_negative(global.any_one, global.any_zero);
            }

            // The global all-0-or-1 gate: only exclude when the column is
            // non-uniform across the whole selected set.
            if !global.all_same() {
                let keep = plan.keep_bit(step, survivors_negative);
                let removed = timed(&probe, &mut exclude_ns, || {
                    exclude_step(
                        &mut self.mats[first_mat..=last_mat],
                        pos,
                        keep,
                        threads,
                        self.scalar_oracle,
                    )
                });
                self.counters.select_loads += 1;
                selected -= removed;
                exclusions += 1;
                if let Some(p) = &probe {
                    p.excluded_step(removed);
                }
            }
        }

        // Upstream index reduction across all mats (Fig. 10).
        let slot = timed(&probe, &mut reduce_ns, || {
            let hits: Vec<Option<u32>> = self
                .mats
                .iter()
                .map(|m| m.as_ref().and_then(Mat::first_selected))
                .collect();
            self.tree
                .reduce(&hits)
                .expect("non-empty selection must reduce to a winner")
        });
        self.counters.htree_traversals += 1;

        // Read the winner out and flag it excluded for later accesses.
        let (mat, local) = self.geometry.split_slot(slot);
        let raw_bits = timed(&probe, &mut readout_ns, || {
            self.mats[mat as usize]
                .as_ref()
                .expect("winning mat is materialized")
                .read_slot(local)
        });
        self.counters.row_reads += 1;
        self.excluded.set(slot as usize, true);
        self.counters.extractions += 1;

        if let Some(p) = &probe {
            p.phase(Phase::Sense, sense_ns, u64::from(steps_executed));
            p.phase(Phase::Exclude, exclude_ns, exclusions);
            p.phase(Phase::IndexReduce, reduce_ns, 1);
            p.phase(Phase::Readout, readout_ns, 1);
            p.extraction(steps_executed);
        }

        ExtractHit {
            slot,
            raw_bits,
            steps: steps_executed,
        }
    }

    /// Pool-scheduled twin of [`Chip::converge_host`]: the span's mats
    /// live in `pool` (leased from `first_mat`), and the whole bit-serial
    /// descent runs as a *single* broadcast→fold round trip
    /// ([`MatPool::descend`]) — workers speculate their shard's descent
    /// locally and the fold reconstructs the exact global decision
    /// sequence, so the counter arithmetic still matches the host path
    /// line for line and [`OpCounters`] stays scheduling-invariant.
    fn converge_pooled(
        &mut self,
        first_mat: usize,
        pool: &mut MatPool,
        plan: &SearchPlan,
        membership: MembershipSource<'_>,
        dirty: Dirty<'_>,
    ) -> ExtractHit {
        let probe = self.probe.clone();
        let (mut descend_ns, mut reduce_ns) = (0u64, 0u64);
        let outcome = {
            let excluded = &self.excluded;
            let capacity = self.geometry.capacity_slots() as usize;
            // Shared membership doubles as the fused rearm payload: the
            // workers re-latch their select windows inside the descend
            // request (one wake cycle, not two). The rebuild path loads
            // selects host-side before leasing, so no rearm rides along.
            let rearm = match membership {
                MembershipSource::Shared(m) => Some(m),
                MembershipSource::Rebuild { .. } => None,
            };
            // Replay membership (global slot indexing), materialized only
            // if the fold actually replays — never on the natural path.
            let mut membership_fn = || match membership {
                MembershipSource::Shared(m) => Arc::clone(m),
                MembershipSource::Rebuild { begin, end } => {
                    let mut m = Bitmap::zeros(capacity);
                    m.set_range(begin as usize, end as usize);
                    m.and_not_assign(excluded);
                    Arc::new(m)
                }
            };
            timed(&probe, &mut descend_ns, || {
                pool.descend(plan, rearm, dirty, &mut membership_fn)
            })
        };
        let steps_executed = outcome.steps_executed;
        self.counters.column_search_steps += u64::from(steps_executed);
        self.counters.mat_column_searches += outcome.mat_searches;
        let exclusions = outcome.removed_per_step.len() as u64;
        self.counters.select_loads += exclusions;
        if let Some(p) = &probe {
            for &removed in &outcome.removed_per_step {
                p.excluded_step(removed);
            }
        }

        // Upstream index reduction across all mats (Fig. 10): span
        // entries came home with the fold, in mat order; mats outside
        // the span stayed put (their selects were cleared by the
        // caller). The scratch buffer keeps this allocation-free.
        let slot = timed(&probe, &mut reduce_ns, || {
            self.firsts_scratch.clear();
            self.firsts_scratch.extend(
                self.mats
                    .iter()
                    .map(|m| m.as_ref().and_then(Mat::first_selected)),
            );
            self.firsts_scratch[first_mat..first_mat + outcome.firsts.len()]
                .copy_from_slice(&outcome.firsts);
            self.tree
                .reduce(&self.firsts_scratch)
                .expect("non-empty selection must reduce to a winner")
        });
        self.counters.htree_traversals += 1;

        // The winner's raw bits also came home with the fold — no extra
        // round trip to its shard.
        let (mat, _local) = self.geometry.split_slot(slot);
        let raw_bits = outcome.raws[mat as usize - first_mat];
        self.counters.row_reads += 1;
        self.excluded.set(slot as usize, true);
        self.counters.extractions += 1;

        if let Some(p) = &probe {
            // Phase attribution mirrors the host path: the descent wall
            // time lands on Sense (it is overwhelmingly sensing), and the
            // op counts — which the metrics layer prices and pins against
            // OpCounters — are exact.
            p.phase(Phase::Sense, descend_ns, u64::from(steps_executed));
            p.phase(Phase::Exclude, 0, exclusions);
            p.phase(Phase::IndexReduce, reduce_ns, 1);
            p.phase(Phase::Readout, 0, 1);
            p.extraction(steps_executed);
        }

        ExtractHit {
            slot,
            raw_bits,
            steps: steps_executed,
        }
    }

    /// Snapshots the chip's durable state — see [`ChipState`] for the
    /// capture boundary.
    pub fn state(&self) -> ChipState {
        ChipState {
            mats: self
                .mats
                .iter()
                .map(|m| m.as_ref().map(Mat::state))
                .collect(),
            excluded: self.excluded.clone(),
            format: self.format,
            range: self.range,
            counters: self.counters,
        }
    }

    /// Restores the chip's durable state from a snapshot taken on a chip
    /// of the same geometry. Select latches come up cleared (every
    /// extraction re-arms them), the H-tree is rebuilt fresh, and any
    /// leased worker pool is dropped. Scheduling knobs are kept.
    ///
    /// Returns `false` — leaving the chip untouched — when the snapshot
    /// disagrees with this chip's geometry or is internally inconsistent.
    pub fn restore_state(&mut self, state: &ChipState) -> bool {
        if state.mats.len() != self.mats.len() || state.excluded.len() != self.excluded.len() {
            return false;
        }
        let mut mats: Vec<Option<Mat>> = Vec::with_capacity(state.mats.len());
        for mat_state in &state.mats {
            match mat_state {
                None => mats.push(None),
                Some(ms) => {
                    match Mat::from_state(ms, self.geometry.arrays_per_mat, self.geometry.rows) {
                        Some(mat) => mats.push(Some(mat)),
                        None => return false,
                    }
                }
            }
        }
        self.mats = mats;
        self.tree = IndexTree::new(state.mats.len(), self.geometry.slots_per_mat());
        self.excluded = state.excluded.clone();
        self.format = state.format;
        self.range = state.range;
        self.counters = state.counters;
        self.pool = None;
        true
    }

    /// Injects a stuck-at fault into the cell holding bit `bit` of the
    /// key at `slot` — for failure-injection tests (§VII-C endurance
    /// failures freeze cells in one resistance state).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for slots beyond capacity.
    pub fn inject_stuck_cell(&mut self, slot: u64, bit: u16, stuck: bool) -> Result<(), Error> {
        self.check_slot(slot)?;
        let (mat, local) = self.geometry.split_slot(slot);
        self.mat_mut(mat).inject_stuck_cell(local, bit, stuck);
        Ok(())
    }

    /// Most-written slot's write count across the chip (endurance study).
    pub fn max_wear(&self) -> u32 {
        self.mats
            .iter()
            .flatten()
            .map(Mat::max_wear)
            .max()
            .unwrap_or(0)
    }

    /// Total writes absorbed by the chip's arrays.
    pub fn total_writes(&self) -> u64 {
        self.mats.iter().flatten().map(Mat::total_writes).sum()
    }

    /// Per-mat write counts (index = mat number; unmaterialized mats
    /// report 0). The wear-heatmap source: row writes are the only
    /// wear-inducing operation (§VII-C), so this matrix localizes
    /// endurance hot spots to individual mats.
    pub fn wear_by_mat(&self) -> Vec<u64> {
        self.mats
            .iter()
            .map(|m| m.as_ref().map_or(0, Mat::total_writes))
            .collect()
    }
}

/// One column-search step across a mat span: every active mat senses bit
/// `pos` and the signals wire-OR upstream (Fig. 9). With `threads > 1`
/// the span splits into contiguous chunks, each worker accumulating its
/// own `ColumnSignals` and active-mat count; the partials merge in chunk
/// order, mirroring the H-tree's reduction nodes. Both the OR and the
/// count are commutative, so the result is independent of scheduling.
fn sense_step(
    mats: &[Option<Mat>],
    pos: u16,
    threads: usize,
    scalar: bool,
) -> (ColumnSignals, u64) {
    fn sense_mat(mat: &Mat, pos: u16, scalar: bool) -> ColumnSignals {
        #[cfg(any(test, feature = "scalar-oracle"))]
        if scalar {
            return mat.sense_column_scalar(pos);
        }
        let _ = scalar;
        mat.sense_column(pos)
    }

    fn walk(mats: &[Option<Mat>], pos: u16, scalar: bool) -> (ColumnSignals, u64) {
        let mut signals = ColumnSignals::default();
        let mut active = 0u64;
        for mat in mats.iter().flatten() {
            if mat.selected_count() == 0 {
                continue;
            }
            active += 1;
            signals.merge(sense_mat(mat, pos, scalar));
        }
        (signals, active)
    }

    if threads <= 1 || mats.len() <= 1 {
        return walk(mats, pos, scalar);
    }
    let chunk = mats.len().div_ceil(threads);
    let partials: Vec<(ColumnSignals, u64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = mats
            .chunks(chunk)
            .map(|part| scope.spawn(move || walk(part, pos, scalar)))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("sense worker panicked"))
            .collect()
    });
    let mut global = ColumnSignals::default();
    let mut active = 0u64;
    for (signals, count) in partials {
        global.merge(signals);
        active += count;
    }
    (global, active)
}

/// One global exclusion across a mat span: every active mat latches its
/// match vector for (`pos`, `keep`). Returns total rows deselected,
/// accumulated per chunk and summed in chunk order (commutative, so
/// deterministic under any thread count).
fn exclude_step(
    mats: &mut [Option<Mat>],
    pos: u16,
    keep: bool,
    threads: usize,
    scalar: bool,
) -> u64 {
    fn exclude_mat(mat: &mut Mat, pos: u16, keep: bool, scalar: bool) -> u64 {
        #[cfg(any(test, feature = "scalar-oracle"))]
        if scalar {
            return mat.apply_exclusion_scalar(pos, keep) as u64;
        }
        let _ = scalar;
        mat.apply_exclusion(pos, keep) as u64
    }

    fn walk(mats: &mut [Option<Mat>], pos: u16, keep: bool, scalar: bool) -> u64 {
        let mut removed = 0u64;
        for mat in mats.iter_mut().flatten() {
            if mat.selected_count() == 0 {
                continue;
            }
            removed += exclude_mat(mat, pos, keep, scalar);
        }
        removed
    }

    if threads <= 1 || mats.len() <= 1 {
        return walk(mats, pos, keep, scalar);
    }
    let chunk = mats.len().div_ceil(threads);
    let partials: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = mats
            .chunks_mut(chunk)
            .map(|part| scope.spawn(move || walk(part, pos, keep, scalar)))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("exclusion worker panicked"))
            .collect()
    });
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::SortableBits;

    fn chip_with<T: SortableBits>(keys: &[T]) -> Chip {
        let mut chip = Chip::new(ChipGeometry::tiny());
        let raw: Vec<u64> = keys.iter().map(|k| k.to_raw_bits()).collect();
        chip.store_keys(0, &raw, T::FORMAT).unwrap();
        chip.init_range(0, keys.len() as u64, T::FORMAT).unwrap();
        chip
    }

    fn drain<T: SortableBits>(chip: &mut Chip, direction: Direction) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(hit) = chip.extract(direction).unwrap() {
            out.push(T::from_raw_bits(hit.raw_bits));
        }
        out
    }

    #[test]
    fn sorts_unsigned_ascending() {
        let keys = [43u32, 7, 99, 0, 255, 7, 128, 1];
        let mut chip = chip_with(&keys);
        let sorted: Vec<u32> = drain(&mut chip, Direction::Min);
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn sorts_unsigned_descending_with_max() {
        let keys = [5u64, 1, 9, 9, 3];
        let mut chip = chip_with(&keys);
        let sorted: Vec<u64> = drain(&mut chip, Direction::Max);
        let mut want = keys.to_vec();
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sorted, want);
    }

    #[test]
    fn sorts_signed_with_negatives() {
        let keys = [-5i32, 3, -8, 0, 7, -1, i32::MIN, i32::MAX];
        let mut chip = chip_with(&keys);
        let sorted: Vec<i32> = drain(&mut chip, Direction::Min);
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn sorts_floats_total_order() {
        let keys = [18.0f32, -1.625, -0.75, 0.0, -0.0, 1e-10, -1e10];
        let mut chip = chip_with(&keys);
        let sorted: Vec<f32> = drain(&mut chip, Direction::Min);
        let mut want = keys.to_vec();
        want.sort_unstable_by(f32::total_cmp);
        assert_eq!(
            sorted.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extraction_spans_mats() {
        // tiny geometry: 2 mats × 32 slots. Place keys in both mats.
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.store_keys(0, &[50, 40], KeyFormat::UNSIGNED32)
            .unwrap();
        chip.store_keys(33, &[10, 60], KeyFormat::UNSIGNED32)
            .unwrap();
        chip.init_range(0, 64, KeyFormat::UNSIGNED32).unwrap();
        // Empty (zero) slots participate: zeros come out first. Restrict
        // to explicit sub-ranges instead.
        chip.init_range(33, 35, KeyFormat::UNSIGNED32).unwrap();
        let hit = chip.extract(Direction::Min).unwrap().unwrap();
        assert_eq!(hit.slot, 33);
        assert_eq!(hit.raw_bits, 10);
    }

    #[test]
    fn stability_lowest_address_wins_ties() {
        let keys = [7u32, 3, 3, 9, 3];
        let mut chip = chip_with(&keys);
        let slots: Vec<u64> =
            std::iter::from_fn(|| chip.extract(Direction::Min).unwrap().map(|h| h.slot)).collect();
        assert_eq!(slots, vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn exclusion_flags_persist_until_reinit() {
        let keys = [4u32, 2, 6];
        let mut chip = chip_with(&keys);
        assert_eq!(chip.extract(Direction::Min).unwrap().unwrap().raw_bits, 2);
        assert_eq!(chip.remaining(), 2);
        // Re-init rearms everything.
        chip.init_range(0, 3, KeyFormat::UNSIGNED32).unwrap();
        assert_eq!(chip.remaining(), 3);
        assert_eq!(chip.extract(Direction::Min).unwrap().unwrap().raw_bits, 2);
    }

    #[test]
    fn extract_without_init_errors() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        assert_eq!(chip.extract(Direction::Min), Err(Error::NotInitialized));
    }

    #[test]
    fn init_rejects_bad_ranges() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        assert!(matches!(
            chip.init_range(5, 5, KeyFormat::UNSIGNED32),
            Err(Error::EmptyRange { .. })
        ));
        assert!(matches!(
            chip.init_range(0, 10_000, KeyFormat::UNSIGNED32),
            Err(Error::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn store_rejects_overflow_and_wide_keys() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        let too_many = vec![0u64; chip.capacity() as usize + 1];
        assert!(matches!(
            chip.store_keys(0, &too_many, KeyFormat::UNSIGNED64),
            Err(Error::AddressOutOfRange { .. })
        ));
        // tiny geometry has 64 columns, so 64-bit keys are fine; check via
        // a narrower geometry.
        let mut narrow = ChipGeometry::tiny();
        narrow.cols = 32;
        let mut chip = Chip::new(narrow);
        assert!(matches!(
            chip.store_keys(0, &[1], KeyFormat::UNSIGNED64),
            Err(Error::KeyTooWide { .. })
        ));
    }

    #[test]
    fn concurrent_ranges_extract_independently() {
        // §III-B.3: merge needs concurrent min/max on multiple ranges.
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.store_keys(0, &[5, 1, 3], KeyFormat::UNSIGNED32)
            .unwrap();
        chip.store_keys(8, &[4, 8], KeyFormat::UNSIGNED32).unwrap();
        chip.init_range(0, 3, KeyFormat::UNSIGNED32).unwrap();
        chip.init_range(8, 10, KeyFormat::UNSIGNED32).unwrap();
        let a = chip
            .extract_range(0, 3, KeyFormat::UNSIGNED32, Direction::Min)
            .unwrap()
            .unwrap();
        let b = chip
            .extract_range(8, 10, KeyFormat::UNSIGNED32, Direction::Min)
            .unwrap()
            .unwrap();
        assert_eq!(a.raw_bits, 1);
        assert_eq!(b.raw_bits, 4);
        // Interleaved continuation: exclusion flags are per range.
        let a2 = chip
            .extract_range(0, 3, KeyFormat::UNSIGNED32, Direction::Min)
            .unwrap()
            .unwrap();
        assert_eq!(a2.raw_bits, 3);
    }

    #[test]
    fn early_exit_shortens_steps() {
        // A single-key range converges immediately (0 steps).
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.store_keys(0, &[42], KeyFormat::UNSIGNED32).unwrap();
        chip.init_range(0, 1, KeyFormat::UNSIGNED32).unwrap();
        let hit = chip.extract(Direction::Min).unwrap().unwrap();
        assert_eq!(hit.steps, 0);
        assert_eq!(hit.raw_bits, 42);
    }

    #[test]
    fn counters_track_operations() {
        let keys = [4u32, 2, 6, 1];
        let mut chip = chip_with(&keys);
        let base_writes = chip.counters().row_writes;
        assert_eq!(base_writes, 4);
        let _ = chip.extract(Direction::Min).unwrap();
        let c = chip.counters();
        assert!(c.column_search_steps > 0);
        assert_eq!(c.extractions, 1);
        assert_eq!(c.row_reads, 1);
        assert_eq!(chip.total_writes(), 4);
        assert_eq!(chip.max_wear(), 1);
    }

    #[test]
    fn extract_batch_matches_sequential_loop() {
        let keys = [43u32, 7, 99, 0, 255, 7, 128, 1];
        let mut seq = chip_with(&keys);
        let mut bat = chip_with(&keys);
        let mut want = Vec::new();
        for _ in 0..5 {
            match seq.extract(Direction::Min).unwrap() {
                Some(hit) => want.push(hit),
                None => break,
            }
        }
        let got = bat.extract_batch(Direction::Min, 5).unwrap();
        assert_eq!(got, want);
        assert_eq!(bat.counters(), seq.counters());
        // The two chips stay interchangeable afterwards.
        assert_eq!(
            bat.extract(Direction::Min).unwrap(),
            seq.extract(Direction::Min).unwrap()
        );
    }

    #[test]
    fn extract_batch_overasking_stops_at_exhaustion() {
        let keys = [5u32, 2, 9];
        let mut seq = chip_with(&keys);
        let mut bat = chip_with(&keys);
        let got = bat.extract_batch(Direction::Max, 10).unwrap();
        assert_eq!(
            got.iter().map(|h| h.raw_bits).collect::<Vec<_>>(),
            vec![9, 5, 2]
        );
        // Sequential equivalent: three hits then one exhausted probe.
        let mut want = Vec::new();
        while let Some(hit) = seq.extract(Direction::Max).unwrap() {
            want.push(hit);
        }
        assert_eq!(got, want);
        assert_eq!(bat.counters(), seq.counters());
    }

    #[test]
    fn extract_batch_zero_is_a_noop() {
        let mut chip = chip_with(&[3u32, 1]);
        let before = *chip.counters();
        assert_eq!(chip.extract_batch(Direction::Min, 0).unwrap(), vec![]);
        assert_eq!(*chip.counters(), before);
    }

    #[test]
    fn extract_batch_without_init_errors() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        assert_eq!(
            chip.extract_batch(Direction::Min, 3),
            Err(Error::NotInitialized)
        );
    }

    #[test]
    fn parallel_policy_is_observationally_invisible() {
        // Same keys, every scheduling policy (inline walk, persistent
        // pool, legacy per-step spawns, Auto): identical hit streams and
        // identical counters (the wire-OR merge is order-independent).
        let keys: Vec<u32> = (0..64).map(|i| (i * 2654435761u64 % 997) as u32).collect();
        let mut reference: Option<(Vec<ExtractHit>, OpCounters)> = None;
        for policy in [
            ParallelPolicy::Sequential,
            ParallelPolicy::Threads(3),
            ParallelPolicy::SpawnPerStep(3),
            ParallelPolicy::Auto,
        ] {
            let mut chip = chip_with(&keys);
            chip.set_parallel_policy(policy);
            let hits = chip.extract_batch(Direction::Min, keys.len() + 1).unwrap();
            match &reference {
                None => reference = Some((hits, *chip.counters())),
                Some((want_hits, want_counters)) => {
                    assert_eq!(&hits, want_hits, "{policy:?}");
                    assert_eq!(chip.counters(), want_counters, "{policy:?}");
                }
            }
        }
    }

    #[test]
    fn pool_survives_across_sessions_and_interleaved_ranges() {
        // The persistent pool is parked between sessions and reused; an
        // interleaved single extract and a policy that alternates worker
        // counts must all stay correct.
        let mut chip = Chip::new(ChipGeometry::tiny());
        let keys: Vec<u64> = (0..40).map(|i| (i * 7919 % 241) as u64).collect();
        chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
        chip.init_range(0, 40, KeyFormat::UNSIGNED64).unwrap();
        chip.set_parallel_policy(ParallelPolicy::Threads(2));
        let first = chip.extract_batch(Direction::Min, 3).unwrap();
        chip.set_parallel_policy(ParallelPolicy::Threads(4));
        let second = chip.extract_batch(Direction::Min, 3).unwrap();
        chip.set_parallel_policy(ParallelPolicy::Threads(2));
        let third: Vec<ExtractHit> =
            std::iter::from_fn(|| chip.extract(Direction::Min).unwrap()).collect();
        let got: Vec<u64> = first
            .iter()
            .chain(&second)
            .chain(&third)
            .map(|h| h.raw_bits)
            .collect();
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        // A clone leaves the worker threads behind but keeps the data.
        let mut cloned = chip.clone();
        cloned.init_range(0, 40, KeyFormat::UNSIGNED64).unwrap();
        let redo = cloned.extract_batch(Direction::Min, 41).unwrap();
        assert_eq!(redo.iter().map(|h| h.raw_bits).collect::<Vec<_>>(), want);
    }

    #[test]
    fn batch_spans_mats_with_stable_ties() {
        // tiny geometry: 2 mats × 32 slots; duplicate keys across mats.
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.store_keys(30, &[7, 3], KeyFormat::UNSIGNED32).unwrap();
        chip.store_keys(33, &[3, 9], KeyFormat::UNSIGNED32).unwrap();
        chip.init_range(30, 35, KeyFormat::UNSIGNED32).unwrap();
        chip.set_parallel_policy(ParallelPolicy::Threads(2));
        let hits = chip.extract_batch(Direction::Min, 5).unwrap();
        // Slot 32 is an in-range empty slot holding 0 — it ranks first;
        // the tied 3s resolve to the lower address (31 before 33).
        assert_eq!(
            hits.iter().map(|h| h.slot).collect::<Vec<_>>(),
            vec![32, 31, 33, 30, 34]
        );
    }

    #[test]
    fn scalar_oracle_is_observationally_invisible() {
        // Bit-sliced vs row-major scalar engine: identical hit streams and
        // identical counters, with a stuck-at fault visible through both.
        let keys: Vec<u32> = (0..48).map(|i| (i * 2654435761u64 % 997) as u32).collect();
        let mut bitsliced = chip_with(&keys);
        let mut scalar = chip_with(&keys);
        bitsliced.inject_stuck_cell(7, 2, true).unwrap();
        scalar.inject_stuck_cell(7, 2, true).unwrap();
        scalar.set_scalar_oracle(true);
        let a = bitsliced
            .extract_batch(Direction::Min, keys.len() + 1)
            .unwrap();
        let b = scalar
            .extract_batch(Direction::Min, keys.len() + 1)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(bitsliced.counters(), scalar.counters());
    }

    #[test]
    fn stuck_cell_perturbs_sort_detectably() {
        // A worn-out cell silently corrupts the order — exactly the
        // failure a read-back verification would catch.
        let keys = [8u32, 1, 4, 2];
        let mut chip = chip_with(&keys);
        // Freeze key 1's bit 3 high: it now ranks as 9.
        chip.inject_stuck_cell(1, 3, true).unwrap();
        chip.init_range(0, 4, KeyFormat::UNSIGNED32).unwrap();
        let sorted: Vec<u32> = drain(&mut chip, Direction::Min);
        assert_eq!(sorted, vec![2, 4, 8, 9], "corrupted but still terminates");
        let ok = sorted.windows(2).all(|w| w[0] <= w[1]);
        assert!(ok, "output is ordered under the *faulty* values");
        assert_ne!(sorted, vec![1, 2, 4, 8], "fault is observable");
    }

    #[test]
    fn stuck_cell_out_of_range_rejected() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        assert!(chip.inject_stuck_cell(1 << 30, 0, true).is_err());
    }

    #[test]
    fn read_key_roundtrip() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.store_keys(3, &[77], KeyFormat::UNSIGNED64).unwrap();
        assert_eq!(chip.read_key(3).unwrap(), 77);
        assert_eq!(chip.read_key(4).unwrap(), 0);
        assert!(chip.read_key(1 << 40).is_err());
    }

    #[test]
    fn auto_policy_gates_on_measured_crossover_and_host_parallelism() {
        // Pins the Auto fan-out decision (DESIGN.md §13): spans narrower
        // than the cached crossover stay on the calling thread, wider
        // ones lease the pool with min(host, mats) workers. The
        // crossover is injected here so the test is calibration-free.
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.auto_threads = 4;
        chip.pool_crossover = Some(16);
        assert!(matches!(chip.fanout(15), Fanout::Host(1)));
        assert!(matches!(chip.fanout(16), Fanout::Pool(4)));
        assert!(matches!(chip.fanout(17), Fanout::Pool(4)));
        // A single-threaded host never leases the pool, whatever the span.
        chip.auto_threads = 1;
        assert!(matches!(chip.fanout(16), Fanout::Host(1)));
        assert!(matches!(chip.fanout(1000), Fanout::Host(1)));
        // Worker count is clamped to the mats actually in range.
        chip.auto_threads = 32;
        assert!(matches!(chip.fanout(17), Fanout::Pool(17)));
        // Single-mat spans short-circuit before the policy is consulted.
        assert!(matches!(chip.fanout(1), Fanout::Host(1)));
        // The measured crossover is always inside the documented clamp
        // (this exercises the real calibration once per process).
        chip.pool_crossover = None;
        let measured = chip.pool_crossover_mats();
        assert!((POOL_CROSSOVER_MIN..=POOL_CROSSOVER_MAX).contains(&measured));
        // ... and it is cached until the pool is rebuilt.
        assert_eq!(chip.pool_crossover, Some(measured));
    }

    #[test]
    fn snapshot_restore_resumes_mid_extraction_bit_identically() {
        // Drain half the keys, snapshot, keep draining on both the
        // original and a restored twin: hits, counters, and wear must be
        // bit-identical (exclusion flags carried the session across).
        let keys = [43u32, 7, 99, 0, 255, 7, 128, 1];
        let mut chip = chip_with(&keys);
        let _ = chip.extract_batch(Direction::Min, 4).unwrap();
        let state = chip.state();
        let mut restored = Chip::new(ChipGeometry::tiny());
        assert!(restored.restore_state(&state));
        assert_eq!(restored.state(), state, "snapshot is a fixed point");
        let a = chip.extract_batch(Direction::Min, 10).unwrap();
        let b = restored.extract_batch(Direction::Min, 10).unwrap();
        assert_eq!(a, b);
        assert_eq!(chip.counters(), restored.counters());
        assert_eq!(chip.wear_by_mat(), restored.wear_by_mat());
        assert_eq!(chip.max_wear(), restored.max_wear());
    }

    #[test]
    fn restore_state_rejects_geometry_mismatch() {
        let chip = Chip::new(ChipGeometry::tiny());
        let state = chip.state();
        let mut other = Chip::new(ChipGeometry::small());
        assert!(!other.restore_state(&state));
        // Unmaterialized mats stay unmaterialized through a roundtrip.
        assert!(state.mats.iter().all(Option::is_none));
    }

    #[test]
    fn remaining_counts_down() {
        let keys = [9u32, 8, 7];
        let mut chip = chip_with(&keys);
        assert_eq!(chip.remaining(), 3);
        let _ = chip.extract(Direction::Min).unwrap();
        assert_eq!(chip.remaining(), 2);
        let _ = chip.extract(Direction::Min).unwrap();
        let _ = chip.extract(Direction::Min).unwrap();
        assert_eq!(chip.remaining(), 0);
        assert_eq!(chip.extract(Direction::Min).unwrap(), None);
    }
}
