//! Observation hooks for extraction phases and the mat-shard pool.
//!
//! The chip model is deliberately free of any metrics dependency: higher
//! layers (rime-core's metrics registry) implement [`ExtractionProbe`] and
//! install it with [`crate::Chip::set_probe`]. When no probe is installed
//! the instrumented paths take a single `Option` branch and perform **no**
//! clock reads, so the functional model stays as fast as before PR 5.
//!
//! Two kinds of payload flow through a probe:
//!
//! - **Modeled quantities** (operation counts, step counts, shard sizes)
//!   are derived from the bit-accurate simulation and are deterministic
//!   for a fixed workload and [`crate::ParallelPolicy`].
//! - **Wall-clock nanoseconds** measure the host simulation and are
//!   inherently non-deterministic; consumers must quarantine them from
//!   differential oracles (rime-core flags the derived metrics as such).
//!
//! Probes never touch [`crate::OpCounters`] — the performance layer's
//! source of truth is unchanged whether or not a probe is installed, which
//! is what keeps counters bit-identical across scheduling policies.

use std::sync::Arc;
use std::time::Instant;

/// Phases of one extraction (Fig. 9 inner loop) plus select-vector rearm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Bit-position sense: wire-OR column search across the active mats.
    Sense,
    /// Exclusion: latch the match vector into the select latches.
    Exclude,
    /// H-tree index reduction locating the first selected slot.
    IndexReduce,
    /// Result readout of the winning row.
    Readout,
    /// Select-vector rearm between batch extractions (`rime_min_k`).
    Rearm,
}

impl Phase {
    /// Stable lowercase label (used as a metric label value).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Sense => "sense",
            Phase::Exclude => "exclude",
            Phase::IndexReduce => "index_reduce",
            Phase::Readout => "readout",
            Phase::Rearm => "rearm",
        }
    }
}

/// Observer for chip extraction phases and mat-pool activity.
///
/// All methods take `&self`: implementations are expected to be cheap,
/// lock-free aggregators (atomics), shared via `Arc` between the chip and
/// its parked pool. Default implementations are no-ops so implementors can
/// subscribe to a subset of the surface.
pub trait ExtractionProbe: Send + Sync {
    /// One completed phase: total wall nanoseconds spent in the phase and
    /// the number of device operations it performed (sense steps,
    /// exclusion latches, reductions, readouts, or rearms).
    fn phase(&self, _phase: Phase, _wall_ns: u64, _ops: u64) {}

    /// One completed extraction and the column-search steps it took
    /// (the paper's fixed per-key step count; 64 for `u64` keys).
    fn extraction(&self, _steps: u16) {}

    /// Rows deselected by a single exclusion step.
    fn excluded_step(&self, _removed: u64) {}

    /// A pool session opened: worker count, mats leased, and the largest /
    /// smallest shard sizes (their difference is the imbalance gauge).
    fn pool_lease(&self, _workers: usize, _mats: usize, _largest: usize, _smallest: usize) {}

    /// A pool session closed (mats restored to the chip).
    fn pool_unlease(&self) {}

    /// One broadcast→fold round trip across all workers (a sense, exclude,
    /// first-selected, or read-slot epoch step), in wall nanoseconds.
    fn pool_step(&self, _wall_ns: u64) {}

    /// Per-worker session report: nanoseconds the worker spent processing
    /// requests (busy) versus the whole session duration; the difference
    /// is time parked on the channel.
    fn pool_worker(&self, _worker: usize, _busy_ns: u64, _session_ns: u64) {}

    /// The measured (or overridden) [`crate::ParallelPolicy::Auto`]
    /// crossover, in mats, as cached when a pool session opens. Derived
    /// from wall-clock calibration, so nondeterministic unless pinned
    /// via `RIME_POOL_CROSSOVER`.
    fn pool_crossover(&self, _mats: usize) {}
}

/// Shared probe handle as stored by [`crate::Chip`] and [`crate::MatPool`].
pub type SharedProbe = Arc<dyn ExtractionProbe>;

/// Runs `f`, adding its wall-clock duration to `acc` only when a probe is
/// installed. The no-probe path performs no clock reads.
#[inline]
pub(crate) fn timed<T>(probe: &Option<SharedProbe>, acc: &mut u64, f: impl FnOnce() -> T) -> T {
    if probe.is_some() {
        let start = Instant::now();
        let out = f();
        *acc += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        out
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingProbe {
        phases: AtomicU64,
        extractions: AtomicU64,
    }

    impl ExtractionProbe for CountingProbe {
        fn phase(&self, _phase: Phase, _wall_ns: u64, ops: u64) {
            self.phases.fetch_add(ops, Ordering::Relaxed);
        }
        fn extraction(&self, _steps: u16) {
            self.extractions.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Phase::Sense.label(), "sense");
        assert_eq!(Phase::Exclude.label(), "exclude");
        assert_eq!(Phase::IndexReduce.label(), "index_reduce");
        assert_eq!(Phase::Readout.label(), "readout");
        assert_eq!(Phase::Rearm.label(), "rearm");
    }

    #[test]
    fn timed_accumulates_only_with_probe() {
        let mut acc = 0u64;
        let none: Option<SharedProbe> = None;
        assert_eq!(timed(&none, &mut acc, || 7), 7);
        assert_eq!(acc, 0);

        let probe: Option<SharedProbe> = Some(Arc::new(CountingProbe::default()));
        let out = timed(&probe, &mut acc, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            42
        });
        assert_eq!(out, 42);
        assert!(acc > 0);
    }

    #[test]
    fn default_methods_are_noops() {
        struct Quiet;
        impl ExtractionProbe for Quiet {}
        let q = Quiet;
        q.phase(Phase::Sense, 1, 1);
        q.extraction(3);
        q.excluded_step(2);
        q.pool_lease(4, 16, 4, 4);
        q.pool_unlease();
        q.pool_step(10);
        q.pool_worker(0, 5, 9);
        q.pool_crossover(16);
    }
}
