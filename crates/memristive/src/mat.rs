//! A mat: four arrays sharing sense/drive circuits (§IV-B.1, Fig. 8).
//!
//! The mat controller sequences row read, row write, and column search
//! commands over its four arrays; all four are active during each command
//! (bit-parallel access). For RIME computation the mat reports the two
//! upstream signals of §IV-B.2 — the *all-0-or-1* outcome and whether a 1
//! was present — and applies select-vector loads when the chip controller
//! orders a global exclusion.
//!
//! Key slots within a mat are numbered `array * rows + row`.

use crate::array::{Array, ArrayState, ColumnSignals};
use crate::bitmap::Bitmap;
use crate::error::Error;

/// A command the chip controller sends to a mat (Fig. 8's three access
/// types plus the RIME-mode select-vector operations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatCommand {
    /// Row read: load the key at `slot`.
    RowRead {
        /// Slot within the mat.
        slot: u32,
    },
    /// Row write: store `raw` into `slot`.
    RowWrite {
        /// Slot within the mat.
        slot: u32,
        /// Raw key pattern.
        raw: u64,
    },
    /// Column search at bit `pos`: sense the column, report the
    /// two-signal outcome upstream (Fig. 9).
    ColumnSearch {
        /// Bit position (0 = LSB).
        pos: u16,
    },
    /// Global exclusion ordered by the controller: latch the match
    /// vector for (`pos`, `keep`) into the select latches.
    LoadSelect {
        /// Bit position searched.
        pos: u16,
        /// Reference bit to keep.
        keep: bool,
    },
    /// Select-vector initialization for `[start, end)` (Fig. 11 leaves).
    SetSelectRange {
        /// First slot (inclusive).
        start: u32,
        /// One past the last slot.
        end: u32,
        /// Latch value for the range.
        value: bool,
    },
}

/// A mat's response to a [`MatCommand`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatResponse {
    /// Data read by `RowRead`.
    Data(u64),
    /// The two upstream signals of a `ColumnSearch`.
    Signals(ColumnSignals),
    /// Rows deselected by a `LoadSelect`.
    Deselected(u32),
    /// Acknowledgement for writes and select-range commands.
    Ack,
}

/// Serializable snapshot of one mat's durable state: its arrays'
/// [`ArrayState`]s in array order. See [`ArrayState`] for what is (and
/// deliberately is not) captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatState {
    /// Per-array snapshots, in array order.
    pub arrays: Vec<ArrayState>,
}

/// Four memristive arrays under one mat controller.
#[derive(Debug, Clone)]
pub struct Mat {
    arrays: Vec<Array>,
    rows_per_array: u32,
}

impl Mat {
    /// Creates a mat of `arrays_per_mat` arrays with `rows` wordlines each.
    pub fn new(arrays_per_mat: u16, rows: u32) -> Mat {
        Mat {
            arrays: (0..arrays_per_mat).map(|_| Array::new(rows)).collect(),
            rows_per_array: rows,
        }
    }

    /// Key-slot capacity of the mat.
    pub fn slots(&self) -> u32 {
        self.arrays.len() as u32 * self.rows_per_array
    }

    fn split(&self, slot: u32) -> (usize, usize) {
        debug_assert!(slot < self.slots());
        (
            (slot / self.rows_per_array) as usize,
            (slot % self.rows_per_array) as usize,
        )
    }

    /// Row-write command: stores a raw key into `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the mat capacity.
    pub fn write_slot(&mut self, slot: u32, raw: u64) {
        let (array, row) = self.split(slot);
        self.arrays[array].write_row(row, raw);
    }

    /// Row-read command: loads the raw key stored in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the mat capacity.
    pub fn read_slot(&self, slot: u32) -> u64 {
        let (array, row) = self.split(slot);
        self.arrays[array].read_row(row)
    }

    /// Sets one select latch.
    pub fn set_select_bit(&mut self, slot: u32, value: bool) {
        let (array, row) = self.split(slot);
        self.arrays[array].set_select_bit(row, value);
    }

    /// Whether the latch for `slot` is set.
    pub fn select_bit(&self, slot: u32) -> bool {
        let (array, row) = self.split(slot);
        self.arrays[array].select().get(row)
    }

    /// Clears every select latch in the mat.
    pub fn clear_select(&mut self) {
        for array in &mut self.arrays {
            array.clear_select();
        }
    }

    /// Replaces the mat's entire select vector with `bits` (one bit per
    /// slot, in mat slot order). This is the word-parallel rearm path the
    /// chip's batched extraction uses: the periphery latches a whole
    /// membership vector at once instead of walking slots individually.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the mat's slot capacity.
    pub fn load_select_bits(&mut self, bits: &Bitmap) {
        assert_eq!(
            bits.len(),
            self.slots() as usize,
            "select vector length mismatch"
        );
        self.load_select_window(bits, 0);
    }

    /// Latches the mat's select vector from the `slots()`-bit window of a
    /// larger (e.g. chip-global membership) bitmap starting at `start`,
    /// without allocating: each array's select vector is assigned its
    /// slice of the window in place.
    ///
    /// # Panics
    ///
    /// Panics if the window runs past `bits.len()`.
    pub fn load_select_window(&mut self, bits: &Bitmap, start: usize) {
        let rows = self.rows_per_array as usize;
        for (ai, array) in self.arrays.iter_mut().enumerate() {
            array.load_select_window(bits, start + ai * rows);
        }
    }

    /// Number of selected slots across the mat's arrays.
    pub fn selected_count(&self) -> usize {
        self.arrays.iter().map(Array::selected_count).sum()
    }

    /// Column-search command: all four arrays sense column `pos`; the mat
    /// wire-ORs their signals upstream (Fig. 9's two-signal protocol).
    pub fn sense_column(&self, pos: u16) -> ColumnSignals {
        let mut signals = ColumnSignals::default();
        for array in &self.arrays {
            signals.merge(array.sense_column(pos));
            if signals.any_one && signals.any_zero {
                break;
            }
        }
        signals
    }

    /// Applies a global exclusion: every array latches its match vector for
    /// (`pos`, `keep`) into its select vector. Returns rows deselected.
    ///
    /// Uses the fused in-place AND/ANDN over the column shadow
    /// ([`Array::apply_exclusion`]) — no match-vector allocation per array
    /// per step.
    pub fn apply_exclusion(&mut self, pos: u16, keep: bool) -> usize {
        let mut removed = 0;
        for array in &mut self.arrays {
            removed += array.apply_exclusion(pos, keep);
        }
        removed
    }

    /// Scalar-oracle column search: wire-ORs the arrays' row-major
    /// [`Array::sense_column_scalar`] results. Differential-test
    /// counterpart of [`Mat::sense_column`].
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn sense_column_scalar(&self, pos: u16) -> ColumnSignals {
        let mut signals = ColumnSignals::default();
        for array in &self.arrays {
            signals.merge(array.sense_column_scalar(pos));
            if signals.any_one && signals.any_zero {
                break;
            }
        }
        signals
    }

    /// Scalar-oracle exclusion: per-array row-major match vector, then a
    /// select-latch load — the pre-shadow two-step path. Differential-test
    /// counterpart of [`Mat::apply_exclusion`].
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn apply_exclusion_scalar(&mut self, pos: u16, keep: bool) -> usize {
        let mut removed = 0;
        for array in &mut self.arrays {
            let matches = array.match_vector_scalar(pos, keep);
            removed += array.load_select(&matches);
        }
        removed
    }

    /// Lowest selected slot in the mat, if any — the mat's initial index
    /// `A` fed into the H-tree (Fig. 10, priority to smaller indices).
    pub fn first_selected(&self) -> Option<u32> {
        for (ai, array) in self.arrays.iter().enumerate() {
            if let Some(row) = array.first_selected() {
                return Some(ai as u32 * self.rows_per_array + row as u32);
            }
        }
        None
    }

    /// Executes one controller command — the explicit protocol form of
    /// the typed methods, useful for command-level tests and traces.
    ///
    /// Unlike the typed methods (which document their panics and are only
    /// reachable through the chip controller's validated paths), the
    /// command protocol faces arbitrary traffic, so a malformed command
    /// degrades into a typed [`Error`] instead of aborting the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] when a `RowRead`/`RowWrite`
    /// slot exceeds the mat capacity, [`Error::KeyTooWide`] when a
    /// `ColumnSearch`/`LoadSelect` bit position exceeds the modelled key
    /// width, and [`Error::EmptyRange`] when a `SetSelectRange` is
    /// inverted (`start > end`).
    pub fn execute(&mut self, command: MatCommand) -> Result<MatResponse, Error> {
        match command {
            MatCommand::RowRead { slot } => {
                self.check_slot(slot)?;
                Ok(MatResponse::Data(self.read_slot(slot)))
            }
            MatCommand::RowWrite { slot, raw } => {
                self.check_slot(slot)?;
                self.write_slot(slot, raw);
                Ok(MatResponse::Ack)
            }
            MatCommand::ColumnSearch { pos } => {
                Self::check_pos(pos)?;
                Ok(MatResponse::Signals(self.sense_column(pos)))
            }
            MatCommand::LoadSelect { pos, keep } => {
                Self::check_pos(pos)?;
                Ok(MatResponse::Deselected(
                    self.apply_exclusion(pos, keep) as u32
                ))
            }
            MatCommand::SetSelectRange { start, end, value } => {
                if start > end {
                    return Err(Error::EmptyRange {
                        begin: u64::from(start),
                        end: u64::from(end),
                    });
                }
                for slot in start..end.min(self.slots()) {
                    self.set_select_bit(slot, value);
                }
                Ok(MatResponse::Ack)
            }
        }
    }

    fn check_pos(pos: u16) -> Result<(), Error> {
        if pos < 64 {
            Ok(())
        } else {
            Err(Error::KeyTooWide {
                bits: pos.saturating_add(1),
                max: 64,
            })
        }
    }

    fn check_slot(&self, slot: u32) -> Result<(), Error> {
        if slot < self.slots() {
            Ok(())
        } else {
            Err(Error::AddressOutOfRange {
                addr: u64::from(slot),
                capacity: u64::from(self.slots()),
            })
        }
    }

    /// Injects a stuck-at fault at `slot`'s cell `bit`.
    pub fn inject_stuck_cell(&mut self, slot: u32, bit: u16, stuck: bool) {
        let (array, row) = self.split(slot);
        self.arrays[array].inject_stuck_cell(row, bit, stuck);
    }

    /// Snapshots the mat's durable state (all arrays, in array order).
    pub fn state(&self) -> MatState {
        MatState {
            arrays: self.arrays.iter().map(Array::state).collect(),
        }
    }

    /// Rebuilds a mat from a snapshot against the expected geometry.
    /// Returns `None` when the snapshot disagrees with `arrays_per_mat` /
    /// `rows` or any array snapshot is internally inconsistent.
    pub fn from_state(state: &MatState, arrays_per_mat: u16, rows: u32) -> Option<Mat> {
        if state.arrays.len() != arrays_per_mat as usize {
            return None;
        }
        let arrays: Vec<Array> = state
            .arrays
            .iter()
            .map(Array::from_state)
            .collect::<Option<_>>()?;
        if arrays.iter().any(|a| a.rows() != rows as usize) {
            return None;
        }
        Some(Mat {
            arrays,
            rows_per_array: rows,
        })
    }

    /// The most-written slot's write count (endurance).
    pub fn max_wear(&self) -> u32 {
        self.arrays.iter().map(Array::max_wear).max().unwrap_or(0)
    }

    /// Total writes absorbed by the mat.
    pub fn total_writes(&self) -> u64 {
        self.arrays.iter().map(Array::total_writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_mat(values: &[u64]) -> Mat {
        let mut mat = Mat::new(4, 4); // 16 slots
        for (slot, &v) in values.iter().enumerate() {
            mat.write_slot(slot as u32, v);
            mat.set_select_bit(slot as u32, true);
        }
        mat
    }

    #[test]
    fn slots_span_arrays() {
        let mut mat = Mat::new(4, 4);
        mat.write_slot(0, 11); // array 0 row 0
        mat.write_slot(5, 22); // array 1 row 1
        mat.write_slot(15, 33); // array 3 row 3
        assert_eq!(mat.read_slot(0), 11);
        assert_eq!(mat.read_slot(5), 22);
        assert_eq!(mat.read_slot(15), 33);
        assert_eq!(mat.slots(), 16);
    }

    #[test]
    fn sense_merges_across_arrays() {
        // slot 0 (array 0) holds a 1-bit, slot 5 (array 1) holds a 0-bit.
        let mat = loaded_mat(&[0b1, 0, 0, 0, 0, 0b0]);
        let s = mat.sense_column(0);
        assert!(s.any_one && s.any_zero);
    }

    #[test]
    fn exclusion_applies_to_all_arrays() {
        let mut mat = loaded_mat(&[0b1, 0b0, 0b1, 0b0, 0b1]);
        let removed = mat.apply_exclusion(0, false);
        assert_eq!(removed, 3);
        assert_eq!(mat.selected_count(), 2);
        assert_eq!(mat.first_selected(), Some(1));
    }

    #[test]
    fn first_selected_prefers_lowest_array() {
        let mut mat = Mat::new(4, 4);
        mat.set_select_bit(9, true); // array 2
        mat.set_select_bit(6, true); // array 1
        assert_eq!(mat.first_selected(), Some(6));
        assert!(mat.select_bit(9));
        assert!(!mat.select_bit(0));
    }

    #[test]
    fn clear_select_resets() {
        let mut mat = loaded_mat(&[1, 2, 3]);
        assert_eq!(mat.selected_count(), 3);
        mat.clear_select();
        assert_eq!(mat.selected_count(), 0);
        assert_eq!(mat.first_selected(), None);
    }

    #[test]
    fn command_protocol_matches_typed_methods() {
        // Drive one full min-search step purely through commands.
        let mut mat = Mat::new(4, 4);
        for (slot, raw) in [(0u32, 0b10u64), (1, 0b01), (2, 0b11)] {
            assert_eq!(
                mat.execute(MatCommand::RowWrite { slot, raw }),
                Ok(MatResponse::Ack)
            );
        }
        assert_eq!(
            mat.execute(MatCommand::SetSelectRange {
                start: 0,
                end: 3,
                value: true
            }),
            Ok(MatResponse::Ack)
        );
        let Ok(MatResponse::Signals(signals)) = mat.execute(MatCommand::ColumnSearch { pos: 1 })
        else {
            panic!("column search returns signals");
        };
        assert!(signals.any_one && signals.any_zero);
        // Controller decides: keep rows with 0 at bit 1 (min search).
        assert_eq!(
            mat.execute(MatCommand::LoadSelect {
                pos: 1,
                keep: false
            }),
            Ok(MatResponse::Deselected(2))
        );
        assert_eq!(mat.first_selected(), Some(1));
        assert_eq!(
            mat.execute(MatCommand::RowRead { slot: 1 }),
            Ok(MatResponse::Data(0b01))
        );
    }

    #[test]
    fn set_select_range_clamps_to_capacity() {
        let mut mat = Mat::new(2, 2);
        mat.execute(MatCommand::SetSelectRange {
            start: 0,
            end: 99,
            value: true,
        })
        .unwrap();
        assert_eq!(mat.selected_count(), 4);
    }

    #[test]
    fn malformed_commands_degrade_to_errors() {
        let mut mat = Mat::new(2, 2); // 4 slots
        mat.write_slot(1, 42);
        assert_eq!(
            mat.execute(MatCommand::RowRead { slot: 4 }),
            Err(Error::AddressOutOfRange {
                addr: 4,
                capacity: 4
            })
        );
        assert_eq!(
            mat.execute(MatCommand::RowWrite { slot: 9, raw: 1 }),
            Err(Error::AddressOutOfRange {
                addr: 9,
                capacity: 4
            })
        );
        assert_eq!(
            mat.execute(MatCommand::SetSelectRange {
                start: 3,
                end: 1,
                value: true
            }),
            Err(Error::EmptyRange { begin: 3, end: 1 })
        );
        // Column positions past the modelled key width degrade too
        // (previously a debug-build shift panic).
        assert_eq!(
            mat.execute(MatCommand::ColumnSearch { pos: 64 }),
            Err(Error::KeyTooWide { bits: 65, max: 64 })
        );
        assert_eq!(
            mat.execute(MatCommand::LoadSelect {
                pos: 200,
                keep: true
            }),
            Err(Error::KeyTooWide { bits: 201, max: 64 })
        );
        // The mat stays usable after rejecting malformed traffic.
        assert_eq!(
            mat.execute(MatCommand::RowRead { slot: 1 }),
            Ok(MatResponse::Data(42))
        );
    }

    #[test]
    fn scalar_oracle_agrees_at_mat_level() {
        let mut bitsliced = loaded_mat(&[0b1010, 0b0110, 0b1111, 0b0001, 0b1000]);
        let mut scalar = bitsliced.clone();
        bitsliced.inject_stuck_cell(2, 0, false);
        scalar.inject_stuck_cell(2, 0, false);
        for pos in 0..4u16 {
            assert_eq!(
                bitsliced.sense_column(pos),
                scalar.sense_column_scalar(pos),
                "sense at {pos}"
            );
        }
        let a = bitsliced.apply_exclusion(1, true);
        let b = scalar.apply_exclusion_scalar(1, true);
        assert_eq!(a, b);
        assert_eq!(bitsliced.selected_count(), scalar.selected_count());
        assert_eq!(bitsliced.first_selected(), scalar.first_selected());
    }

    #[test]
    fn load_select_bits_matches_per_bit_latching() {
        let mut word = Mat::new(4, 4);
        let mut bits = Mat::new(4, 4);
        let pattern: Bitmap = (0..16).map(|slot| slot % 3 == 0 || slot == 13).collect();
        for slot in 0..16 {
            word.set_select_bit(slot, slot % 2 == 0); // stale state to overwrite
            bits.set_select_bit(slot, pattern.get(slot as usize));
        }
        word.load_select_bits(&pattern);
        for slot in 0..16 {
            assert_eq!(word.select_bit(slot), bits.select_bit(slot), "slot {slot}");
        }
        assert_eq!(word.selected_count(), bits.selected_count());
    }

    #[test]
    fn snapshot_restore_roundtrips_and_validates_geometry() {
        let mut mat = loaded_mat(&[9, 1, 4, 7, 2]);
        mat.inject_stuck_cell(2, 3, true);
        let state = mat.state();
        let restored = Mat::from_state(&state, 4, 4).unwrap();
        for slot in 0..16 {
            assert_eq!(restored.read_slot(slot), mat.read_slot(slot), "{slot}");
        }
        assert_eq!(restored.max_wear(), mat.max_wear());
        assert_eq!(restored.total_writes(), mat.total_writes());
        assert_eq!(restored.selected_count(), 0, "latches come up cleared");
        // Geometry disagreements are rejected, not mis-mapped.
        assert!(Mat::from_state(&state, 2, 4).is_none());
        assert!(Mat::from_state(&state, 4, 8).is_none());
    }

    #[test]
    fn wear_aggregates() {
        let mut mat = Mat::new(2, 2);
        mat.write_slot(0, 1);
        mat.write_slot(0, 2);
        mat.write_slot(3, 7);
        assert_eq!(mat.max_wear(), 2);
        assert_eq!(mat.total_writes(), 3);
    }
}
