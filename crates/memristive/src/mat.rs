//! A mat: four arrays sharing sense/drive circuits (§IV-B.1, Fig. 8).
//!
//! The mat controller sequences row read, row write, and column search
//! commands over its four arrays; all four are active during each command
//! (bit-parallel access). For RIME computation the mat reports the two
//! upstream signals of §IV-B.2 — the *all-0-or-1* outcome and whether a 1
//! was present — and applies select-vector loads when the chip controller
//! orders a global exclusion.
//!
//! Key slots within a mat are numbered `array * rows + row`.

use crate::array::{Array, ColumnSignals};

/// A command the chip controller sends to a mat (Fig. 8's three access
/// types plus the RIME-mode select-vector operations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatCommand {
    /// Row read: load the key at `slot`.
    RowRead {
        /// Slot within the mat.
        slot: u32,
    },
    /// Row write: store `raw` into `slot`.
    RowWrite {
        /// Slot within the mat.
        slot: u32,
        /// Raw key pattern.
        raw: u64,
    },
    /// Column search at bit `pos`: sense the column, report the
    /// two-signal outcome upstream (Fig. 9).
    ColumnSearch {
        /// Bit position (0 = LSB).
        pos: u16,
    },
    /// Global exclusion ordered by the controller: latch the match
    /// vector for (`pos`, `keep`) into the select latches.
    LoadSelect {
        /// Bit position searched.
        pos: u16,
        /// Reference bit to keep.
        keep: bool,
    },
    /// Select-vector initialization for `[start, end)` (Fig. 11 leaves).
    SetSelectRange {
        /// First slot (inclusive).
        start: u32,
        /// One past the last slot.
        end: u32,
        /// Latch value for the range.
        value: bool,
    },
}

/// A mat's response to a [`MatCommand`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatResponse {
    /// Data read by `RowRead`.
    Data(u64),
    /// The two upstream signals of a `ColumnSearch`.
    Signals(ColumnSignals),
    /// Rows deselected by a `LoadSelect`.
    Deselected(u32),
    /// Acknowledgement for writes and select-range commands.
    Ack,
}

/// Four memristive arrays under one mat controller.
#[derive(Debug, Clone)]
pub struct Mat {
    arrays: Vec<Array>,
    rows_per_array: u32,
}

impl Mat {
    /// Creates a mat of `arrays_per_mat` arrays with `rows` wordlines each.
    pub fn new(arrays_per_mat: u16, rows: u32) -> Mat {
        Mat {
            arrays: (0..arrays_per_mat).map(|_| Array::new(rows)).collect(),
            rows_per_array: rows,
        }
    }

    /// Key-slot capacity of the mat.
    pub fn slots(&self) -> u32 {
        self.arrays.len() as u32 * self.rows_per_array
    }

    fn split(&self, slot: u32) -> (usize, usize) {
        debug_assert!(slot < self.slots());
        (
            (slot / self.rows_per_array) as usize,
            (slot % self.rows_per_array) as usize,
        )
    }

    /// Row-write command: stores a raw key into `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the mat capacity.
    pub fn write_slot(&mut self, slot: u32, raw: u64) {
        let (array, row) = self.split(slot);
        self.arrays[array].write_row(row, raw);
    }

    /// Row-read command: loads the raw key stored in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the mat capacity.
    pub fn read_slot(&self, slot: u32) -> u64 {
        let (array, row) = self.split(slot);
        self.arrays[array].read_row(row)
    }

    /// Sets one select latch.
    pub fn set_select_bit(&mut self, slot: u32, value: bool) {
        let (array, row) = self.split(slot);
        self.arrays[array].set_select_bit(row, value);
    }

    /// Whether the latch for `slot` is set.
    pub fn select_bit(&self, slot: u32) -> bool {
        let (array, row) = self.split(slot);
        self.arrays[array].select().get(row)
    }

    /// Clears every select latch in the mat.
    pub fn clear_select(&mut self) {
        for array in &mut self.arrays {
            array.clear_select();
        }
    }

    /// Number of selected slots across the mat's arrays.
    pub fn selected_count(&self) -> usize {
        self.arrays.iter().map(Array::selected_count).sum()
    }

    /// Column-search command: all four arrays sense column `pos`; the mat
    /// wire-ORs their signals upstream (Fig. 9's two-signal protocol).
    pub fn sense_column(&self, pos: u16) -> ColumnSignals {
        let mut signals = ColumnSignals::default();
        for array in &self.arrays {
            signals.merge(array.sense_column(pos));
            if signals.any_one && signals.any_zero {
                break;
            }
        }
        signals
    }

    /// Applies a global exclusion: every array latches its match vector for
    /// (`pos`, `keep`) into its select vector. Returns rows deselected.
    pub fn apply_exclusion(&mut self, pos: u16, keep: bool) -> usize {
        let mut removed = 0;
        for array in &mut self.arrays {
            let matches = array.match_vector(pos, keep);
            removed += array.load_select(&matches);
        }
        removed
    }

    /// Lowest selected slot in the mat, if any — the mat's initial index
    /// `A` fed into the H-tree (Fig. 10, priority to smaller indices).
    pub fn first_selected(&self) -> Option<u32> {
        for (ai, array) in self.arrays.iter().enumerate() {
            if let Some(row) = array.first_selected() {
                return Some(ai as u32 * self.rows_per_array + row as u32);
            }
        }
        None
    }

    /// Executes one controller command — the explicit protocol form of
    /// the typed methods, useful for command-level tests and traces.
    ///
    /// # Panics
    ///
    /// Panics if a slot is out of range (as the typed methods do).
    pub fn execute(&mut self, command: MatCommand) -> MatResponse {
        match command {
            MatCommand::RowRead { slot } => MatResponse::Data(self.read_slot(slot)),
            MatCommand::RowWrite { slot, raw } => {
                self.write_slot(slot, raw);
                MatResponse::Ack
            }
            MatCommand::ColumnSearch { pos } => MatResponse::Signals(self.sense_column(pos)),
            MatCommand::LoadSelect { pos, keep } => {
                MatResponse::Deselected(self.apply_exclusion(pos, keep) as u32)
            }
            MatCommand::SetSelectRange { start, end, value } => {
                for slot in start..end.min(self.slots()) {
                    self.set_select_bit(slot, value);
                }
                MatResponse::Ack
            }
        }
    }

    /// Injects a stuck-at fault at `slot`'s cell `bit`.
    pub fn inject_stuck_cell(&mut self, slot: u32, bit: u16, stuck: bool) {
        let (array, row) = self.split(slot);
        self.arrays[array].inject_stuck_cell(row, bit, stuck);
    }

    /// The most-written slot's write count (endurance).
    pub fn max_wear(&self) -> u32 {
        self.arrays.iter().map(Array::max_wear).max().unwrap_or(0)
    }

    /// Total writes absorbed by the mat.
    pub fn total_writes(&self) -> u64 {
        self.arrays.iter().map(Array::total_writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_mat(values: &[u64]) -> Mat {
        let mut mat = Mat::new(4, 4); // 16 slots
        for (slot, &v) in values.iter().enumerate() {
            mat.write_slot(slot as u32, v);
            mat.set_select_bit(slot as u32, true);
        }
        mat
    }

    #[test]
    fn slots_span_arrays() {
        let mut mat = Mat::new(4, 4);
        mat.write_slot(0, 11); // array 0 row 0
        mat.write_slot(5, 22); // array 1 row 1
        mat.write_slot(15, 33); // array 3 row 3
        assert_eq!(mat.read_slot(0), 11);
        assert_eq!(mat.read_slot(5), 22);
        assert_eq!(mat.read_slot(15), 33);
        assert_eq!(mat.slots(), 16);
    }

    #[test]
    fn sense_merges_across_arrays() {
        // slot 0 (array 0) holds a 1-bit, slot 5 (array 1) holds a 0-bit.
        let mat = loaded_mat(&[0b1, 0, 0, 0, 0, 0b0]);
        let s = mat.sense_column(0);
        assert!(s.any_one && s.any_zero);
    }

    #[test]
    fn exclusion_applies_to_all_arrays() {
        let mut mat = loaded_mat(&[0b1, 0b0, 0b1, 0b0, 0b1]);
        let removed = mat.apply_exclusion(0, false);
        assert_eq!(removed, 3);
        assert_eq!(mat.selected_count(), 2);
        assert_eq!(mat.first_selected(), Some(1));
    }

    #[test]
    fn first_selected_prefers_lowest_array() {
        let mut mat = Mat::new(4, 4);
        mat.set_select_bit(9, true); // array 2
        mat.set_select_bit(6, true); // array 1
        assert_eq!(mat.first_selected(), Some(6));
        assert!(mat.select_bit(9));
        assert!(!mat.select_bit(0));
    }

    #[test]
    fn clear_select_resets() {
        let mut mat = loaded_mat(&[1, 2, 3]);
        assert_eq!(mat.selected_count(), 3);
        mat.clear_select();
        assert_eq!(mat.selected_count(), 0);
        assert_eq!(mat.first_selected(), None);
    }

    #[test]
    fn command_protocol_matches_typed_methods() {
        // Drive one full min-search step purely through commands.
        let mut mat = Mat::new(4, 4);
        for (slot, raw) in [(0u32, 0b10u64), (1, 0b01), (2, 0b11)] {
            assert_eq!(
                mat.execute(MatCommand::RowWrite { slot, raw }),
                MatResponse::Ack
            );
        }
        assert_eq!(
            mat.execute(MatCommand::SetSelectRange { start: 0, end: 3, value: true }),
            MatResponse::Ack
        );
        let MatResponse::Signals(signals) = mat.execute(MatCommand::ColumnSearch { pos: 1 })
        else {
            panic!("column search returns signals");
        };
        assert!(signals.any_one && signals.any_zero);
        // Controller decides: keep rows with 0 at bit 1 (min search).
        assert_eq!(
            mat.execute(MatCommand::LoadSelect { pos: 1, keep: false }),
            MatResponse::Deselected(2)
        );
        assert_eq!(mat.first_selected(), Some(1));
        assert_eq!(
            mat.execute(MatCommand::RowRead { slot: 1 }),
            MatResponse::Data(0b01)
        );
    }

    #[test]
    fn set_select_range_clamps_to_capacity() {
        let mut mat = Mat::new(2, 2);
        mat.execute(MatCommand::SetSelectRange { start: 0, end: 99, value: true });
        assert_eq!(mat.selected_count(), 4);
    }

    #[test]
    fn wear_aggregates() {
        let mut mat = Mat::new(2, 2);
        mat.write_slot(0, 1);
        mat.write_slot(0, 2);
        mat.write_slot(3, 7);
        assert_eq!(mat.max_wear(), 2);
        assert_eq!(mat.total_writes(), 3);
    }
}
