//! Golden software model of the bit-serial min/max algorithm (§III-A).
//!
//! Two implementations live here:
//!
//! * [`algorithm1_unsigned_min`] is a literal transcription of the paper's
//!   Algorithm 1 (search for 1s, exclude the matching rows unless all
//!   match), covering the unsigned case exactly as printed.
//! * [`run_plan`] is the generalized keep-matching-rows formulation driven
//!   by a [`SearchPlan`], covering unsigned, signed, and float, min and max.
//!
//! Unit and property tests prove the two agree on unsigned minima and that
//! [`run_plan`] always selects exactly the rows holding the extreme value
//! under [`KeyFormat::compare_bits`]. The hardware model in [`crate::chip`]
//! is in turn cross-checked against this module.

use crate::bitmap::Bitmap;
use crate::encoding::KeyFormat;
use crate::plan::SearchPlan;

/// Literal transcription of the paper's Algorithm 1 for unsigned keys.
///
/// Returns the set of rows (as a [`Bitmap`]) that hold the minimum among
/// the rows selected in `initial`. `keys` are raw `k`-bit patterns.
///
/// # Panics
///
/// Panics if `initial.len() != keys.len()`.
pub fn algorithm1_unsigned_min(keys: &[u64], k: u16, initial: &Bitmap) -> Bitmap {
    assert_eq!(initial.len(), keys.len(), "selection length mismatch");
    let mut set = initial.clone();
    for pos in (0..k).rev() {
        // sel ← rows whose bit at `pos` is 1
        let mut sel = Bitmap::zeros(keys.len());
        for row in set.iter_ones() {
            if keys[row] >> pos & 1 == 1 {
                sel.set(row, true);
            }
        }
        // if sel ≠ set, set ← set − sel
        if sel != set {
            set.and_not_assign(&sel);
        }
    }
    set
}

/// Runs a full [`SearchPlan`] over `keys`, starting from `initial`, and
/// returns the surviving selection: exactly the rows holding the extreme
/// value.
///
/// This mirrors what the chip controller does across mats, with the
/// survivor-sign resolution of §III-A.3 folded in.
///
/// # Panics
///
/// Panics if `initial.len() != keys.len()`.
pub fn run_plan(plan: &SearchPlan, keys: &[u64], initial: &Bitmap) -> Bitmap {
    assert_eq!(initial.len(), keys.len(), "selection length mismatch");
    let mut set = initial.clone();
    let mut survivors_negative = false;
    for step in 0..plan.steps() {
        let pos = plan.position(step);
        let mut any_one = false;
        let mut any_zero = false;
        for row in set.iter_ones() {
            if keys[row] >> pos & 1 == 1 {
                any_one = true;
            } else {
                any_zero = true;
            }
        }
        if plan.is_sign_step(step) {
            survivors_negative = plan.survivors_negative(any_one, any_zero);
        }
        let keep = plan.keep_bit(step, survivors_negative);
        // The all-0-or-1 gate: only load the match vector when the column
        // is non-uniform among selected rows *and* some row matches.
        let some_match = if keep { any_one } else { any_zero };
        let uniform = !(any_one && any_zero);
        if some_match && !uniform {
            let mut matches = Bitmap::zeros(keys.len());
            for row in set.iter_ones() {
                if (keys[row] >> pos & 1 == 1) == keep {
                    matches.set(row, true);
                }
            }
            set = matches;
        }
    }
    set
}

/// Convenience: the lowest row index holding the extreme value (stable
/// tie-break, matching the H-tree priority encoder), or `None` when nothing
/// is selected.
pub fn extreme_row(plan: &SearchPlan, keys: &[u64], initial: &Bitmap) -> Option<usize> {
    run_plan(plan, keys, initial).first_one()
}

/// Ground-truth extreme row computed with a plain comparison loop over
/// [`KeyFormat::compare_bits`]; used only by tests and cross-checks.
pub fn extreme_row_by_compare(
    format: KeyFormat,
    min: bool,
    keys: &[u64],
    initial: &Bitmap,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for row in initial.iter_ones() {
        best = Some(match best {
            None => row,
            Some(b) => {
                let ord = format.compare_bits(keys[row], keys[b]);
                let better = if min { ord.is_lt() } else { ord.is_gt() };
                if better {
                    row
                } else {
                    b
                }
            }
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Direction;

    fn all(n: usize) -> Bitmap {
        Bitmap::ones(n)
    }

    /// The paper's Fig. 4 worked example: five uq3.2 values, min = 1.00.
    #[test]
    fn fig4_example_unsigned_min() {
        // 4.00, 1.75, 1.25, 1.00, 6.50 with α=3, β=2
        let keys = [0b10000u64, 0b00111, 0b00101, 0b00100, 0b11010];
        let set = algorithm1_unsigned_min(&keys, 5, &all(5));
        assert_eq!(set.iter_ones().collect::<Vec<_>>(), vec![3]); // 1.00
    }

    /// Step-by-step removals of Fig. 4: steps 1..5 exclude 2, 0, 0, 1, 1 rows.
    #[test]
    fn fig4_step_removals() {
        let keys = [0b10000u64, 0b00111, 0b00101, 0b00100, 0b11010];
        let plan = SearchPlan::new(KeyFormat::unsigned_fixed(3, 2), Direction::Min);
        let mut set = all(5);
        let mut removed = Vec::new();
        for step in 0..plan.steps() {
            let pos = plan.position(step);
            let before = set.count_ones();
            // replay one step via run_plan on a single-step "plan"
            let mut any_one = false;
            let mut any_zero = false;
            for row in set.iter_ones() {
                if keys[row] >> pos & 1 == 1 {
                    any_one = true;
                } else {
                    any_zero = true;
                }
            }
            if any_one && any_zero {
                let mut keep = Bitmap::zeros(5);
                for row in set.iter_ones() {
                    if keys[row] >> pos & 1 == 0 {
                        keep.set(row, true);
                    }
                }
                set = keep;
            }
            removed.push(before - set.count_ones());
        }
        assert_eq!(removed, vec![2, 0, 0, 1, 1]);
        assert_eq!(set.first_one(), Some(3));
    }

    /// The paper's Fig. 5 worked example: three 8-bit floats (1 sign,
    /// 3 exponent, 4 mantissa bits), min = −1.625. We replay it in f32,
    /// which has the same sign/exponent/mantissa ordering structure.
    #[test]
    fn fig5_example_float_min() {
        let keys: Vec<u64> = [18.0f32, -1.625, -0.75]
            .iter()
            .map(|v| v.to_bits() as u64)
            .collect();
        let plan = SearchPlan::new(KeyFormat::FLOAT32, Direction::Min);
        let set = run_plan(&plan, &keys, &all(3));
        assert_eq!(set.iter_ones().collect::<Vec<_>>(), vec![1]); // −1.625
    }

    #[test]
    fn generalized_matches_literal_algorithm1() {
        let keys = [43u64, 7, 7, 99, 0, 255, 128, 1];
        let lit = algorithm1_unsigned_min(&keys, 8, &all(8));
        let plan = SearchPlan::new(KeyFormat::unsigned_fixed(8, 0), Direction::Min);
        let gen = run_plan(&plan, &keys, &all(8));
        assert_eq!(lit, gen);
        assert_eq!(gen.first_one(), Some(4)); // the 0
    }

    #[test]
    fn duplicates_all_survive() {
        let keys = [5u64, 2, 9, 2, 2];
        let plan = SearchPlan::new(KeyFormat::UNSIGNED32, Direction::Min);
        let set = run_plan(&plan, &keys, &all(5));
        assert_eq!(set.iter_ones().collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(set.first_one(), Some(1), "stable: lowest address wins");
    }

    #[test]
    fn respects_initial_selection() {
        let keys = [1u64, 0, 3, 4];
        let mut initial = Bitmap::zeros(4);
        initial.set(2, true);
        initial.set(3, true);
        let plan = SearchPlan::new(KeyFormat::UNSIGNED32, Direction::Min);
        assert_eq!(extreme_row(&plan, &keys, &initial), Some(2));
    }

    #[test]
    fn empty_selection_yields_none() {
        let keys = [1u64, 2];
        let plan = SearchPlan::new(KeyFormat::UNSIGNED32, Direction::Min);
        assert_eq!(extreme_row(&plan, &keys, &Bitmap::zeros(2)), None);
    }

    #[test]
    fn signed_mixed_min_and_max() {
        let vals = [-5i32, 3, -8, 0, 7, -1];
        let keys: Vec<u64> = vals.iter().map(|v| *v as u32 as u64).collect();
        let min_plan = SearchPlan::new(KeyFormat::SIGNED32, Direction::Min);
        let max_plan = SearchPlan::new(KeyFormat::SIGNED32, Direction::Max);
        assert_eq!(extreme_row(&min_plan, &keys, &all(6)), Some(2)); // −8
        assert_eq!(extreme_row(&max_plan, &keys, &all(6)), Some(4)); // 7
    }

    #[test]
    fn signed_all_positive_min() {
        let vals = [5i32, 3, 8];
        let keys: Vec<u64> = vals.iter().map(|v| *v as u32 as u64).collect();
        let plan = SearchPlan::new(KeyFormat::SIGNED32, Direction::Min);
        assert_eq!(extreme_row(&plan, &keys, &all(3)), Some(1));
    }

    #[test]
    fn signed_all_negative_max() {
        let vals = [-5i64, -3, -8];
        let keys: Vec<u64> = vals.iter().map(|v| *v as u64).collect();
        let plan = SearchPlan::new(KeyFormat::SIGNED64, Direction::Max);
        assert_eq!(extreme_row(&plan, &keys, &all(3)), Some(1)); // −3
    }

    #[test]
    fn float_all_negative_min_is_largest_magnitude() {
        let vals = [-0.5f32, -32.0, -1.0];
        let keys: Vec<u64> = vals.iter().map(|v| v.to_bits() as u64).collect();
        let plan = SearchPlan::new(KeyFormat::FLOAT32, Direction::Min);
        assert_eq!(extreme_row(&plan, &keys, &all(3)), Some(1)); // −32
    }

    #[test]
    fn float_all_negative_max_is_smallest_magnitude() {
        let vals = [-0.5f64, -32.0, -1.0];
        let keys: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        let plan = SearchPlan::new(KeyFormat::FLOAT64, Direction::Max);
        assert_eq!(extreme_row(&plan, &keys, &all(3)), Some(0)); // −0.5
    }

    #[test]
    fn float_signed_zeros_follow_total_order() {
        let vals = [0.0f32, -0.0];
        let keys: Vec<u64> = vals.iter().map(|v| v.to_bits() as u64).collect();
        let plan = SearchPlan::new(KeyFormat::FLOAT32, Direction::Min);
        assert_eq!(extreme_row(&plan, &keys, &all(2)), Some(1), "−0.0 < 0.0");
    }

    #[test]
    fn agrees_with_compare_ground_truth_exhaustively_4bit() {
        // Exhaust every multiset of three 4-bit patterns for all formats.
        for fmt in [
            KeyFormat::unsigned_fixed(4, 0),
            KeyFormat::signed_fixed(4, 0),
        ] {
            for a in 0..16u64 {
                for b in 0..16u64 {
                    for c in 0..16u64 {
                        let keys = [a, b, c];
                        for dir in [Direction::Min, Direction::Max] {
                            let plan = SearchPlan::new(fmt, dir);
                            let got = extreme_row(&plan, &keys, &all(3));
                            let want =
                                extreme_row_by_compare(fmt, dir == Direction::Min, &keys, &all(3));
                            assert_eq!(got, want, "{fmt:?} {dir:?} {keys:?}");
                        }
                    }
                }
            }
        }
    }
}
