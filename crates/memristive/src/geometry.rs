//! Physical organization of a RIME chip (§IV-B, Table I).
//!
//! A chip is banks → subbanks → mats → four 512×512 SLC arrays. One key
//! occupies one array row (the select latches that gate column searches are
//! per-wordline, so a row is the exclusion granularity). Capacity in *key
//! slots* is therefore `banks × subbanks × mats × 4 × rows`.

use std::fmt;

/// Geometry of one memristive chip.
///
/// Table I lists `Channels/Chips/Banks/Subbanks: 1/8/64/64` with 1 Gb
/// DDR4-1600-compatible chips of 512×512 SLC subarrays. Taken literally
/// (64 subbanks per bank) that exceeds 1 Gb, so [`ChipGeometry::table1`]
/// keeps the 64 banks and 512×512 arrays and sizes subbanks so the chip is
/// exactly 1 Gb (1024 mats × 4 arrays × 512 × 512 bits).
///
/// # Example
///
/// ```
/// use rime_memristive::ChipGeometry;
///
/// let g = ChipGeometry::table1();
/// assert_eq!(g.capacity_bits(), 1 << 30); // 1 Gb chip
/// assert_eq!(g.arrays_per_mat, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipGeometry {
    /// Banks per chip.
    pub banks: u16,
    /// Subbanks per bank.
    pub subbanks_per_bank: u16,
    /// Mats per subbank (one mat active per subbank access, §IV-B.2).
    pub mats_per_subbank: u16,
    /// Arrays per mat sharing sense/drive circuits (always 4 in the paper).
    pub arrays_per_mat: u16,
    /// Wordlines (rows) per array; one key slot per row.
    pub rows: u32,
    /// Bitlines (columns) per array; bounds the key width.
    pub cols: u32,
}

impl ChipGeometry {
    /// The Table I configuration: a 1 Gb chip of 512×512 SLC arrays,
    /// 64 banks, 1024 mats.
    pub fn table1() -> ChipGeometry {
        ChipGeometry {
            banks: 64,
            subbanks_per_bank: 16,
            mats_per_subbank: 1,
            arrays_per_mat: 4,
            rows: 512,
            cols: 512,
        }
    }

    /// A reduced geometry for tests and examples: 8192 key slots.
    pub fn small() -> ChipGeometry {
        ChipGeometry {
            banks: 2,
            subbanks_per_bank: 2,
            mats_per_subbank: 2,
            arrays_per_mat: 4,
            rows: 256,
            cols: 64,
        }
    }

    /// A minimal geometry for unit tests: 64 key slots in two mats.
    pub fn tiny() -> ChipGeometry {
        ChipGeometry {
            banks: 1,
            subbanks_per_bank: 1,
            mats_per_subbank: 2,
            arrays_per_mat: 4,
            rows: 8,
            cols: 64,
        }
    }

    /// Total mats in the chip.
    pub fn mats(&self) -> u32 {
        self.banks as u32 * self.subbanks_per_bank as u32 * self.mats_per_subbank as u32
    }

    /// Total arrays in the chip.
    pub fn arrays(&self) -> u32 {
        self.mats() * self.arrays_per_mat as u32
    }

    /// Key slots per mat.
    pub fn slots_per_mat(&self) -> u64 {
        self.arrays_per_mat as u64 * self.rows as u64
    }

    /// Total key slots in the chip (one key per array row).
    pub fn capacity_slots(&self) -> u64 {
        self.mats() as u64 * self.slots_per_mat()
    }

    /// Total cell capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.arrays() as u64 * self.rows as u64 * self.cols as u64
    }

    /// Splits a chip-level slot address into `(mat, slot-within-mat)`.
    pub fn split_slot(&self, slot: u64) -> (u32, u32) {
        let per_mat = self.slots_per_mat();
        ((slot / per_mat) as u32, (slot % per_mat) as u32)
    }

    /// Depth of the data/index H-tree over the chip's mats (Fig. 10):
    /// `ceil(log2(mats))` levels of pairwise reduction nodes.
    pub fn htree_depth(&self) -> u32 {
        let mats = self.mats();
        if mats <= 1 {
            0
        } else {
            (mats as u64).next_power_of_two().trailing_zeros()
        }
    }
}

impl fmt::Display for ChipGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} banks × {} subbanks × {} mats × {} arrays of {}×{} ({} key slots)",
            self.banks,
            self.subbanks_per_bank,
            self.mats_per_subbank,
            self.arrays_per_mat,
            self.rows,
            self.cols,
            self.capacity_slots()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_one_gigabit() {
        let g = ChipGeometry::table1();
        assert_eq!(g.capacity_bits(), 1 << 30);
        assert_eq!(g.mats(), 1024);
        assert_eq!(g.capacity_slots(), 1024 * 4 * 512);
        assert_eq!(g.htree_depth(), 10);
    }

    #[test]
    fn slot_split_roundtrip() {
        let g = ChipGeometry::tiny();
        assert_eq!(g.slots_per_mat(), 32);
        assert_eq!(g.split_slot(0), (0, 0));
        assert_eq!(g.split_slot(31), (0, 31));
        assert_eq!(g.split_slot(32), (1, 0));
        assert_eq!(g.split_slot(63), (1, 31));
    }

    #[test]
    fn htree_depth_degenerate() {
        let mut g = ChipGeometry::tiny();
        g.mats_per_subbank = 1;
        assert_eq!(g.mats(), 1);
        assert_eq!(g.htree_depth(), 0);
    }

    #[test]
    fn display_mentions_slots() {
        let s = ChipGeometry::small().to_string();
        assert!(s.contains("key slots"), "{s}");
    }
}
