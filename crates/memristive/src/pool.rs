//! Persistent mat-shard worker pool — standing concurrency for the
//! column search (§IV-B.2, Fig. 9).
//!
//! In hardware every mat is always powered and listening: the chip
//! controller broadcasts one step descriptor per column search and the
//! per-mat signals meet at fixed wire-OR nodes on the way back up the
//! H-tree. The earlier model approximated that with a fresh
//! `std::thread::scope` per step — up to ~128 spawn/join rounds per
//! 64-bit key. [`MatPool`] replaces the per-step fan-out with the
//! hardware shape: long-lived workers each own a fixed contiguous shard
//! of the range's mats for the duration of an extraction *session*
//! (lease → steps → unlease), and the controller drives them by
//! broadcasting epoch-tagged requests over per-worker channels.
//!
//! # Protocol
//!
//! - **Lease** moves the session's mats into the workers (the crate
//!   forbids `unsafe`, so persistent threads cannot borrow chip state;
//!   moving the ~40-byte `Mat` headers is cheap — the heap storage never
//!   moves). Shards are contiguous and assigned in worker order.
//! - **Sense/Exclude** broadcast one step descriptor (bit position,
//!   keep-bit, phase) to every worker. Each worker walks only its own
//!   shard and replies with its partial [`ColumnSignals`] wire-OR and
//!   active-mat count (or rows-deselected count). The controller
//!   collects replies **in worker index order** — the fixed-order
//!   reduction that stands in for the H-tree's wired OR nodes — so the
//!   merged result is bit-identical to a sequential walk regardless of
//!   which worker finishes first.
//! - **Rearm** re-latches every shard's select windows from a shared
//!   membership bitmap (batch extraction). It is fire-and-forget: the
//!   per-worker channel is FIFO, so the next reply-bearing request
//!   doubles as its barrier.
//! - **Unlease** moves the mats back to the chip at session end.
//!
//! Every reply carries the epoch of the request that triggered it and
//! the controller asserts the match, so a protocol desync (a lost or
//! reordered reply) is loud, never silent corruption.
//!
//! # Why counters are scheduling-invariant
//!
//! Replies are collected in worker order and both reductions (signal OR,
//! active-mat / removed-row sums) are commutative over disjoint shards,
//! so hits *and every [`crate::OpCounters`] field* derived from them are
//! bit-identical to [`crate::ParallelPolicy::Sequential`] at any worker
//! count. The differential suites assert exactly that.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::array::ColumnSignals;
use crate::bitmap::Bitmap;
use crate::mat::Mat;
use crate::probe::SharedProbe;

/// Requests broadcast (or targeted) from the chip controller to workers.
enum Request {
    /// Move a shard of the session's mats into the worker.
    /// Fire-and-forget (like [`Request::Rearm`]): the per-worker channel
    /// is FIFO, so the next reply-bearing request doubles as its
    /// barrier, and only reply-bearing requests carry epochs.
    Lease {
        /// Global mat index of the shard's first mat.
        base: usize,
        /// Key slots per mat (for select-window offsets).
        slots_per_mat: usize,
        /// Route through the row-major scalar oracle.
        scalar: bool,
        /// Accumulate per-request busy time for this session (set only
        /// when a probe is installed — the untimed path reads no clocks).
        timed: bool,
        mats: Vec<Option<Mat>>,
    },
    /// One column-search step: sense bit `pos` on every active mat.
    Sense { epoch: u64, pos: u16 },
    /// One exclusion step: latch the match vector for (`pos`, `keep`).
    Exclude { epoch: u64, pos: u16, keep: bool },
    /// Re-latch the shard's select windows from the membership vector.
    Rearm { membership: Arc<Bitmap> },
    /// Report the first selected row per mat in the shard.
    FirstSelected { epoch: u64 },
    /// Read the raw bits of row `slot` in shard-local mat `mat`.
    ReadSlot { epoch: u64, mat: usize, slot: u32 },
    /// Move the shard's mats back to the chip.
    Unlease { epoch: u64 },
}

/// Replies from a worker; each carries the epoch of its request.
enum Reply {
    Signals {
        epoch: u64,
        signals: ColumnSignals,
        active: u64,
    },
    Removed {
        epoch: u64,
        removed: u64,
    },
    Firsts {
        epoch: u64,
        firsts: Vec<Option<u32>>,
    },
    Raw {
        epoch: u64,
        raw: u64,
    },
    Mats {
        epoch: u64,
        mats: Vec<Option<Mat>>,
        /// Nanoseconds this worker spent processing requests during the
        /// session (0 when the session was untimed).
        busy_ns: u64,
    },
}

/// The mats a worker holds between lease and unlease.
struct Shard {
    base: usize,
    slots_per_mat: usize,
    scalar: bool,
    mats: Vec<Option<Mat>>,
}

fn sense_mat(mat: &Mat, pos: u16, scalar: bool) -> ColumnSignals {
    #[cfg(any(test, feature = "scalar-oracle"))]
    if scalar {
        return mat.sense_column_scalar(pos);
    }
    let _ = scalar;
    mat.sense_column(pos)
}

fn exclude_mat(mat: &mut Mat, pos: u16, keep: bool, scalar: bool) -> u64 {
    #[cfg(any(test, feature = "scalar-oracle"))]
    if scalar {
        return mat.apply_exclusion_scalar(pos, keep) as u64;
    }
    let _ = scalar;
    mat.apply_exclusion(pos, keep) as u64
}

/// Worker body: block on the request channel until the pool drops it.
/// During a timed session the worker accumulates the wall time it spends
/// *processing* requests; the controller subtracts that from the session
/// duration to get the time the worker sat parked on its channel.
fn worker_loop(rx: Receiver<Request>, tx: Sender<Reply>) {
    let mut shard: Option<Shard> = None;
    let mut session_timed = false;
    let mut busy_ns = 0u64;
    while let Ok(req) = rx.recv() {
        let started = if session_timed {
            Some(Instant::now())
        } else {
            None
        };
        // A send failure means the pool is gone; exit quietly.
        let ok = match req {
            Request::Lease {
                base,
                slots_per_mat,
                scalar,
                timed,
                mats,
            } => {
                assert!(shard.is_none(), "pool protocol desync: double lease");
                session_timed = timed;
                busy_ns = 0;
                shard = Some(Shard {
                    base,
                    slots_per_mat,
                    scalar,
                    mats,
                });
                true
            }
            Request::Sense { epoch, pos } => {
                let s = shard.as_ref().expect("pool protocol desync: no lease");
                let mut signals = ColumnSignals::default();
                let mut active = 0u64;
                for mat in s.mats.iter().flatten() {
                    if mat.selected_count() == 0 {
                        continue;
                    }
                    active += 1;
                    signals.merge(sense_mat(mat, pos, s.scalar));
                }
                tx.send(Reply::Signals {
                    epoch,
                    signals,
                    active,
                })
                .is_ok()
            }
            Request::Exclude { epoch, pos, keep } => {
                let s = shard.as_mut().expect("pool protocol desync: no lease");
                let mut removed = 0u64;
                for mat in s.mats.iter_mut().flatten() {
                    if mat.selected_count() == 0 {
                        continue;
                    }
                    removed += exclude_mat(mat, pos, keep, s.scalar);
                }
                tx.send(Reply::Removed { epoch, removed }).is_ok()
            }
            Request::Rearm { membership } => {
                let s = shard.as_mut().expect("pool protocol desync: no lease");
                for (offset, mat) in s.mats.iter_mut().enumerate() {
                    if let Some(mat) = mat {
                        mat.load_select_window(&membership, (s.base + offset) * s.slots_per_mat);
                    }
                }
                // `membership` drops here: the worker keeps no reference,
                // so the controller's `Arc::make_mut` stays in place.
                true
            }
            Request::FirstSelected { epoch } => {
                let s = shard.as_ref().expect("pool protocol desync: no lease");
                let firsts = s
                    .mats
                    .iter()
                    .map(|m| m.as_ref().and_then(Mat::first_selected))
                    .collect();
                tx.send(Reply::Firsts { epoch, firsts }).is_ok()
            }
            Request::ReadSlot { epoch, mat, slot } => {
                let s = shard.as_ref().expect("pool protocol desync: no lease");
                let raw = s.mats[mat]
                    .as_ref()
                    .expect("winning mat is materialized")
                    .read_slot(slot);
                tx.send(Reply::Raw { epoch, raw }).is_ok()
            }
            Request::Unlease { epoch } => {
                let s = shard.take().expect("pool protocol desync: no lease");
                session_timed = false;
                tx.send(Reply::Mats {
                    epoch,
                    mats: s.mats,
                    busy_ns,
                })
                .is_ok()
            }
        };
        if let Some(started) = started {
            busy_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        if !ok {
            return;
        }
    }
}

struct Worker {
    /// `None` only during shutdown (dropping the sender closes the
    /// channel, which is the worker's exit signal).
    tx: Option<Sender<Request>>,
    rx: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn send(&self, req: Request) {
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(req)
            .expect("pool worker exited unexpectedly");
    }

    fn recv(&self) -> Reply {
        self.rx.recv().expect("pool worker exited unexpectedly")
    }
}

/// While leased: how the span is sharded across workers (shard lengths
/// in worker order, used to target `ReadSlot` at the owning worker) and,
/// for timed sessions, when the session opened.
struct LeaseInfo {
    shard_lens: Vec<usize>,
    started: Option<Instant>,
}

/// A persistent pool of mat-shard workers driving one chip's extraction
/// sessions. See the [module docs](self) for the protocol.
///
/// The pool is an execution vehicle only: it holds no chip state between
/// sessions and is deliberately *not* cloned with the chip (a cloned
/// chip lazily builds its own workers on first pooled extraction).
pub struct MatPool {
    workers: Vec<Worker>,
    epoch: u64,
    lease: Option<LeaseInfo>,
    /// Session observer (set by the owning chip before each lease).
    probe: Option<SharedProbe>,
}

impl std::fmt::Debug for MatPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatPool")
            .field("workers", &self.workers.len())
            .field("epoch", &self.epoch)
            .field("leased", &self.lease.is_some())
            .finish()
    }
}

impl MatPool {
    /// Spawns `workers` long-lived worker threads (at least one).
    pub fn new(workers: usize) -> MatPool {
        let workers = workers.max(1);
        let workers = (0..workers)
            .map(|i| {
                let (req_tx, req_rx) = channel::<Request>();
                let (rep_tx, rep_rx) = channel::<Reply>();
                let handle = std::thread::Builder::new()
                    .name(format!("rime-mat-shard-{i}"))
                    .spawn(move || worker_loop(req_rx, rep_tx))
                    .expect("spawn mat-shard worker");
                Worker {
                    tx: Some(req_tx),
                    rx: rep_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        MatPool {
            workers,
            epoch: 0,
            lease: None,
            probe: None,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Installs (or removes) the session observer. Timed sessions read
    /// clocks worker-side; with no probe the pool takes the pre-PR-5
    /// clock-free path.
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    fn next_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Opens a session: shards `span` (the mats of `[first, last]`,
    /// already materialized) contiguously across the workers.
    /// `base` is the global index of the first mat in the span.
    ///
    /// # Panics
    ///
    /// Panics if a session is already open.
    pub fn lease(
        &mut self,
        base: usize,
        span: Vec<Option<Mat>>,
        slots_per_mat: usize,
        scalar: bool,
    ) {
        assert!(self.lease.is_none(), "pool session already open");
        let mats_total = span.len();
        let chunk = span.len().div_ceil(self.workers.len()).max(1);
        let mut rest = span;
        let mut offset = 0usize;
        let mut shard_lens = Vec::with_capacity(self.workers.len());
        let timed = self.probe.is_some();
        for worker in &self.workers {
            let take = chunk.min(rest.len());
            let mats: Vec<Option<Mat>> = rest.drain(..take).collect();
            shard_lens.push(mats.len());
            worker.send(Request::Lease {
                base: base + offset,
                slots_per_mat,
                scalar,
                timed,
                mats,
            });
            offset += take;
        }
        let started = if let Some(p) = &self.probe {
            let largest = shard_lens.iter().copied().max().unwrap_or(0);
            let smallest = shard_lens.iter().copied().min().unwrap_or(0);
            p.pool_lease(self.workers.len(), mats_total, largest, smallest);
            Some(Instant::now())
        } else {
            None
        };
        self.lease = Some(LeaseInfo {
            shard_lens,
            started,
        });
    }

    /// Closes the session and returns the span's mats in order. For timed
    /// sessions, reports each worker's busy time against the session
    /// duration (the difference is time parked on the channel).
    pub fn unlease(&mut self) -> Vec<Option<Mat>> {
        let lease = self.lease.take().expect("no pool session open");
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::Unlease { epoch });
        }
        let mut span = Vec::new();
        let mut busy = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            match worker.recv() {
                Reply::Mats {
                    epoch: e,
                    mats,
                    busy_ns,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    span.extend(mats);
                    busy.push(busy_ns);
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        if let (Some(p), Some(started)) = (&self.probe, lease.started) {
            let session_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for (worker, &busy_ns) in busy.iter().enumerate() {
                p.pool_worker(worker, busy_ns, session_ns);
            }
            p.pool_unlease();
        }
        span
    }

    /// Reports one completed broadcast→fold round trip to the probe.
    fn step_done(&self, started: Option<Instant>) {
        if let (Some(p), Some(t)) = (&self.probe, started) {
            p.pool_step(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts timing a broadcast→fold round trip (probe installed only).
    fn step_start(&self) -> Option<Instant> {
        self.probe.as_ref().map(|_| Instant::now())
    }

    /// Broadcasts one column-search step; wire-ORs the per-shard signals
    /// and sums active mats in worker order (Fig. 9's fixed reduction).
    pub fn sense(&mut self, pos: u16) -> (ColumnSignals, u64) {
        let started = self.step_start();
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::Sense { epoch, pos });
        }
        let mut global = ColumnSignals::default();
        let mut active = 0u64;
        for worker in &self.workers {
            match worker.recv() {
                Reply::Signals {
                    epoch: e,
                    signals,
                    active: a,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    global.merge(signals);
                    active += a;
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        self.step_done(started);
        (global, active)
    }

    /// Broadcasts one exclusion step; returns total rows deselected,
    /// summed in worker order.
    pub fn exclude(&mut self, pos: u16, keep: bool) -> u64 {
        let started = self.step_start();
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::Exclude { epoch, pos, keep });
        }
        let mut removed = 0u64;
        for worker in &self.workers {
            match worker.recv() {
                Reply::Removed {
                    epoch: e,
                    removed: r,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    removed += r;
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        self.step_done(started);
        removed
    }

    /// Broadcasts a select-window rearm from the shared membership
    /// vector. Fire-and-forget: the per-worker channels are FIFO, so the
    /// next reply-bearing request is its barrier.
    pub fn rearm(&mut self, membership: &Arc<Bitmap>) {
        for worker in &self.workers {
            worker.send(Request::Rearm {
                membership: Arc::clone(membership),
            });
        }
    }

    /// First selected row per mat across the whole span, in mat order.
    pub fn first_selected(&mut self) -> Vec<Option<u32>> {
        let started = self.step_start();
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::FirstSelected { epoch });
        }
        let mut firsts = Vec::new();
        for worker in &self.workers {
            match worker.recv() {
                Reply::Firsts {
                    epoch: e,
                    firsts: f,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    firsts.extend(f);
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        self.step_done(started);
        firsts
    }

    /// Reads raw bits of row `slot` in the span's `mat`-th mat
    /// (0 = first mat of the leased span).
    pub fn read_slot(&mut self, mat: usize, slot: u32) -> u64 {
        let started = self.step_start();
        let lease = self.lease.as_ref().expect("no pool session open");
        // Locate the worker owning span-local mat index `mat`.
        let mut local = mat;
        let mut owner = 0usize;
        for (w, &len) in lease.shard_lens.iter().enumerate() {
            if local < len {
                owner = w;
                break;
            }
            local -= len;
        }
        let epoch = self.next_epoch();
        self.workers[owner].send(Request::ReadSlot {
            epoch,
            mat: local,
            slot,
        });
        let raw = match self.workers[owner].recv() {
            Reply::Raw { epoch: e, raw } => {
                assert_eq!(e, epoch, "pool protocol desync");
                raw
            }
            _ => panic!("pool protocol desync: unexpected reply"),
        };
        self.step_done(started);
        raw
    }
}

impl Drop for MatPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Closing the request channel is the exit signal.
            worker.tx.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_with(rows: u32, keys: &[u64]) -> Mat {
        let mut mat = Mat::new(1, rows);
        for (slot, &raw) in keys.iter().enumerate() {
            mat.write_slot(slot as u32, raw);
        }
        mat
    }

    fn select_all(mat: &mut Mat, slots: usize, base: usize, capacity: usize) {
        let mut membership = Bitmap::zeros(capacity);
        membership.set_range(base, base + slots);
        mat.load_select_window(&membership, base);
    }

    #[test]
    fn lease_roundtrip_preserves_mats() {
        let mut pool = MatPool::new(3);
        let span: Vec<Option<Mat>> = vec![
            Some(mat_with(8, &[1, 2, 3])),
            None,
            Some(mat_with(8, &[9])),
            Some(mat_with(8, &[4, 5])),
        ];
        pool.lease(2, span, 8, false);
        let back = pool.unlease();
        assert_eq!(back.len(), 4);
        assert!(back[1].is_none());
        assert_eq!(back[0].as_ref().unwrap().read_slot(2), 3);
        assert_eq!(back[2].as_ref().unwrap().read_slot(0), 9);
        assert_eq!(back[3].as_ref().unwrap().read_slot(1), 5);
    }

    #[test]
    fn sense_matches_sequential_walk_at_any_worker_count() {
        let keys = [0b1010u64, 0b0110, 0b0001, 0b1111, 0b0000];
        for workers in 1..=4 {
            let mut mats: Vec<Option<Mat>> = (0..3)
                .map(|i| {
                    let mut m = mat_with(8, &keys[i..i + 2]);
                    select_all(&mut m, 2, i * 8, 64);
                    Some(m)
                })
                .collect();
            // Sequential reference.
            let mut want = ColumnSignals::default();
            let mut want_active = 0u64;
            for mat in mats.iter().flatten() {
                if mat.selected_count() > 0 {
                    want_active += 1;
                    want.merge(mat.sense_column(1));
                }
            }
            // Pool under test.
            let mut pool = MatPool::new(workers);
            pool.lease(0, std::mem::take(&mut mats), 8, false);
            let (got, active) = pool.sense(1);
            assert_eq!((got.any_one, got.any_zero), (want.any_one, want.any_zero));
            assert_eq!(active, want_active);
            pool.unlease();
        }
    }

    #[test]
    fn read_slot_targets_the_owning_shard() {
        let mut pool = MatPool::new(2);
        let span: Vec<Option<Mat>> = (0..5)
            .map(|i| Some(mat_with(8, &[i as u64 * 100 + 7])))
            .collect();
        pool.lease(0, span, 8, false);
        for mat in 0..5 {
            assert_eq!(pool.read_slot(mat, 0), mat as u64 * 100 + 7);
        }
        pool.unlease();
    }

    #[test]
    fn rearm_updates_selection_through_shared_bitmap() {
        let mut pool = MatPool::new(2);
        let span: Vec<Option<Mat>> = (0..2).map(|_| Some(mat_with(8, &[1, 2, 3]))).collect();
        pool.lease(0, span, 8, false);
        let mut membership = Arc::new({
            let mut b = Bitmap::zeros(16);
            b.set_range(0, 3);
            b.set_range(8, 11);
            b
        });
        pool.rearm(&membership);
        assert_eq!(pool.first_selected(), vec![Some(0), Some(0)]);
        Arc::make_mut(&mut membership).set(0, false);
        pool.rearm(&membership);
        assert_eq!(pool.first_selected(), vec![Some(1), Some(0)]);
        pool.unlease();
    }
}
